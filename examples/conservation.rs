//! The Nature Conservancy scenario: XML schemas, search by example,
//! visualization export, and the scheduled indexer.
//!
//! Small conservation organizations share semi-structured monitoring
//! schemas (XSD). A new partner uploads their draft schema as the query;
//! Schemr finds the community's closest designs, and the partner exports a
//! GraphML + SVG view to explore the best match.
//!
//! ```sh
//! cargo run --example conservation
//! ```

use std::sync::Arc;
use std::time::Duration;

use schemr::{IndexScheduler, SchemrEngine, SearchRequest};
use schemr_repo::{import::import_str, Repository};
use schemr_viz::{radial_layout, render_svg, to_graphml, tree_layout, GraphmlOptions, SvgOptions};

const SURVEY_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="survey">
    <xs:annotation><xs:documentation>A monitoring survey visit</xs:documentation></xs:annotation>
    <xs:complexType><xs:sequence>
      <xs:element name="site" type="xs:string"/>
      <xs:element name="date" type="xs:date"/>
      <xs:element name="observation">
        <xs:complexType><xs:sequence>
          <xs:element name="species" type="xs:string"/>
          <xs:element name="abundance" type="xs:integer"/>
          <xs:element name="latitude" type="xs:double"/>
          <xs:element name="longitude" type="xs:double"/>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

const WATERSHED_XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="watershed">
    <xs:complexType><xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="area" type="xs:double"/>
      <xs:element name="rainfall" type="xs:double"/>
      <xs:element name="salinity" type="xs:double"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

fn main() {
    let repo = Arc::new(Repository::new());
    let survey_id = import_str(
        &repo,
        "community_survey",
        "shared monitoring design",
        SURVEY_XSD,
    )
    .unwrap();
    import_str(
        &repo,
        "watershed_monitoring",
        "hydrology partner",
        WATERSHED_XSD,
    )
    .unwrap();
    import_str(
        &repo,
        "donor_tracking",
        "fundraising, unrelated",
        "CREATE TABLE donor (id INT, name TEXT, amount DECIMAL, pledge_date DATE)",
    )
    .unwrap();

    let engine = Arc::new(SchemrEngine::new(repo.clone()));
    engine.reindex_full();

    // Search by example: the new partner's draft schema (note the
    // abbreviations and different naming style — the name matcher's job).
    let draft = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="FieldObservation">
    <xs:complexType><xs:sequence>
      <xs:element name="SpeciesName" type="xs:string"/>
      <xs:element name="Abund" type="xs:integer"/>
      <xs:element name="Lat" type="xs:double"/>
      <xs:element name="Lon" type="xs:double"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;
    let request = SearchRequest::parse("", &[draft]).unwrap();
    let results = engine.search(&request).unwrap();
    println!("{}", schemr_viz::format_results(&results));
    assert_eq!(results[0].id, survey_id, "the community survey should win");

    // Export the winner for exploration: GraphML (the GUI transport) and
    // SVG in both layouts (the GUI's views), depth-capped at 3.
    let stored = repo.get(results[0].id).unwrap();
    let out_dir = std::env::temp_dir().join("schemr-conservation");
    std::fs::create_dir_all(&out_dir).unwrap();

    let graphml = to_graphml(
        &stored.schema,
        &GraphmlOptions {
            max_depth: Some(3),
            scores: results[0].matches.clone(),
        },
    );
    std::fs::write(out_dir.join("survey.graphml"), &graphml).unwrap();

    let roots = stored.schema.roots();
    for (name, layout) in [
        ("survey_tree.svg", tree_layout(&stored.schema, &roots, 3)),
        (
            "survey_radial.svg",
            radial_layout(&stored.schema, &roots, 3),
        ),
    ] {
        let svg = render_svg(
            &stored.schema,
            &layout,
            &SvgOptions {
                scores: results[0].matches.clone(),
                ..Default::default()
            },
        );
        std::fs::write(out_dir.join(name), svg).unwrap();
    }
    println!(
        "exported GraphML + tree/radial SVG to {}",
        out_dir.display()
    );

    // A partner publishes a new schema; the scheduled indexer picks it up.
    let scheduler = Arc::new(IndexScheduler::new(engine.clone()));
    let handle = scheduler.clone().run_background(Duration::from_millis(20));
    import_str(
        &repo,
        "transect_survey",
        "late-arriving partner schema",
        "CREATE TABLE transect (length REAL, habitat TEXT, canopy REAL, observer TEXT)",
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let hits = engine
            .search(&SearchRequest::keywords(["transect", "habitat"]))
            .unwrap();
        if !hits.is_empty() {
            println!(
                "scheduled indexer picked up `{}` after {} tick(s)",
                hits[0].title,
                scheduler.tick_count()
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline, "indexer never ran");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.stop();
}
