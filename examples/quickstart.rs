//! Quickstart: build a small repository, index it, and search by keyword.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_repo::{import::import_str, Repository};
use schemr_viz::format_results;

fn main() {
    // 1. A repository with a few schemas, imported from plain DDL.
    let repo = Arc::new(Repository::new());
    import_str(
        &repo,
        "clinic",
        "rural health clinic",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT)",
    )
    .unwrap();
    import_str(
        &repo,
        "store",
        "a web shop",
        "CREATE TABLE orders (id INT, total DECIMAL, quantity INT, customer TEXT)",
    )
    .unwrap();
    import_str(
        &repo,
        "observations",
        "field survey records",
        "CREATE TABLE sighting (species TEXT, count INT, latitude REAL, longitude REAL)",
    )
    .unwrap();

    // 2. An engine over the repository; the offline indexer flattens every
    //    schema into the document index.
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();

    // 3. Search by keywords — the designer's "patient, height, gender"
    //    moment from the paper's introduction.
    let results = engine
        .search(&SearchRequest::keywords(["patient", "height", "gender"]))
        .unwrap();

    println!("{}", format_results(&results));
    println!(
        "top hit: {} (score {:.3}) — drill in via its id {}",
        results[0].title, results[0].score, results[0].id
    );
}
