//! Figure 2 as code: the results workspace — tabular view, side-by-side
//! schema visualizations with similarity encodings, and drill-in.
//!
//! ```sh
//! cargo run --example visual_explorer
//! ```

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_repo::{import::import_str, Repository};
use schemr_viz::{
    format_results, radial_layout, ramp_color, render_svg, tree_layout, type_color, SvgOptions,
};

fn main() {
    let repo = Arc::new(Repository::new());
    import_str(
        &repo,
        "clinic_a",
        "district hospital design",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, dob DATE);
         CREATE TABLE encounter (id INT, diagnosis TEXT, patient_id INT REFERENCES patient(id))",
    )
    .unwrap();
    import_str(
        &repo,
        "clinic_b",
        "community health worker design",
        "CREATE TABLE subject (subj_id INT, ht REAL, sex TEXT);
         CREATE TABLE visit (visit_id INT, dx TEXT, subj INT REFERENCES subject(subj_id))",
    )
    .unwrap();
    import_str(
        &repo,
        "logistics",
        "supply chain, unrelated",
        "CREATE TABLE shipment (id INT, weight REAL, origin TEXT, destination TEXT)",
    )
    .unwrap();

    let engine = SchemrEngine::new(repo.clone());
    engine.reindex_full();

    // (1)+(2) of Figure 2: keywords plus a DDL fragment.
    let request = SearchRequest::parse(
        "diagnosis",
        &["CREATE TABLE patient (height REAL, gender TEXT)"],
    )
    .unwrap();
    let results = engine.search(&request).unwrap();

    // (3) Tabular view.
    println!("{}", format_results(&results));

    // (4) Side-by-side schema visualizations for the top two results, with
    // node colors by element type and similarity halos from the match
    // detail.
    let out_dir = std::env::temp_dir().join("schemr-explorer");
    std::fs::create_dir_all(&out_dir).unwrap();
    for (i, result) in results.iter().take(2).enumerate() {
        let stored = repo.get(result.id).unwrap();
        let roots = stored.schema.roots();
        for (view, layout) in [
            ("tree", tree_layout(&stored.schema, &roots, 3)),
            ("radial", radial_layout(&stored.schema, &roots, 3)),
        ] {
            let svg = render_svg(
                &stored.schema,
                &layout,
                &SvgOptions {
                    scores: result.matches.clone(),
                    ..Default::default()
                },
            );
            let path = out_dir.join(format!("result{}_{}_{}.svg", i + 1, result.title, view));
            std::fs::write(&path, svg).unwrap();
            println!("wrote {}", path.display());
        }
    }

    // Drill-in: double-clicking a node re-centers the layout on it. Here:
    // re-root the top result's layout on its second entity.
    let stored = repo.get(results[0].id).unwrap();
    let entities = stored.schema.entities();
    if entities.len() > 1 {
        let drill = tree_layout(&stored.schema, &entities[1..2], 3);
        let svg = render_svg(&stored.schema, &drill, &SvgOptions::default());
        let path = out_dir.join("drill_in.svg");
        std::fs::write(&path, svg).unwrap();
        println!(
            "drill-in on `{}` → {}",
            stored.schema.element(entities[1]).name,
            path.display()
        );
    }

    // The legend the GUI would show.
    println!("\nlegend:");
    for kind in [
        schemr_model::ElementKind::Entity,
        schemr_model::ElementKind::Attribute,
        schemr_model::ElementKind::Group,
    ] {
        println!("  {:<10} {}", kind.label(), type_color(kind).hex());
    }
    println!(
        "  similarity ramp: 0.0 {} → 1.0 {}",
        ramp_color(0.0).hex(),
        ramp_color(1.0).hex()
    );
}
