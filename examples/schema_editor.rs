//! The "new model development process": iterative, search-driven schema
//! design with provenance, community signals, and codebook annotations —
//! the OpenII integrations sketched in the paper's Applications section.
//!
//! ```sh
//! cargo run --example schema_editor
//! ```

use std::sync::Arc;

use schemr::SchemrEngine;
use schemr_codebook::{annotate, standardization_report};
use schemr_collab::{CommunityRanker, CommunityStore};
use schemr_editor::{suggest_for, EditSession};
use schemr_model::DataType;
use schemr_repo::{import::import_str, Repository};

fn main() {
    // A community repository with two clinic designs and a distractor.
    let repo = Arc::new(Repository::new());
    let popular = import_str(
        &repo,
        "community_clinic",
        "widely adopted clinic design",
        "CREATE TABLE patient (id INT, height REAL, weight REAL, gender TEXT, dob DATE, blood_pressure REAL)",
    )
    .unwrap();
    let rough = import_str(
        &repo,
        "rough_clinic",
        "an early draft someone shared",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT)",
    )
    .unwrap();
    import_str(
        &repo,
        "garage",
        "unrelated",
        "CREATE TABLE car (plate TEXT, model TEXT, mileage INT)",
    )
    .unwrap();

    let engine = SchemrEngine::new(repo.clone());
    engine.reindex_full();

    // The community has spoken: the polished design is highly rated.
    let community = CommunityStore::new();
    for _ in 0..12 {
        community.rate(popular, 5);
    }
    community.rate(rough, 2);
    community.comment(popular, "kuang", "units for height are cm", None);

    // 1. The designer sketches a table.
    let mut session = EditSession::new("village_clinic");
    let patient = session.add_entity("patient");
    session.add_attribute(patient, "height", DataType::Real);
    session.add_attribute(patient, "gender", DataType::Text);
    println!("draft v1:\n{}", session.export_ddl());

    // 2. Schemr suggests what comparable schemas also record; community
    //    signals order the sources.
    let mut suggestions = suggest_for(&session, &engine, 6, 0.8);
    // Prefer suggestions from better-rated schemas.
    let ranker = CommunityRanker::new(&community);
    suggestions.sort_by(|a, b| {
        (b.schema_score * ranker.boost(b.source_schema))
            .partial_cmp(&(a.schema_score * ranker.boost(a.source_schema)))
            .unwrap()
    });
    println!("suggestions:");
    for s in &suggestions {
        println!(
            "  adopt `{}` ({}) from {} [schema score {:.2}, community boost {:.2}]",
            s.name,
            s.data_type,
            s.source_title,
            s.schema_score,
            ranker.boost(s.source_schema)
        );
    }

    // 3. Adopt the top suggestions; provenance and implicit mappings are
    //    captured automatically.
    for pick in suggestions.iter().take(3) {
        let stored = repo.get(pick.source_schema).unwrap();
        session.adopt(
            pick.source_schema,
            &stored.schema,
            pick.element,
            Some(patient),
        );
        community.record_adoption(pick.source_schema);
    }
    println!("\ndraft v2:\n{}", session.export_ddl());
    println!("provenance:");
    for p in session.provenance() {
        println!(
            "  {} <- {}:{}",
            session.draft().path(p.draft_element),
            p.source_schema,
            p.source_path
        );
    }

    // 4. Codebook annotations for the finished draft: the standardization
    //    view ("units, date/time, and geographic location").
    println!("\ncodebook annotations:");
    for ann in annotate(session.draft()) {
        println!(
            "  {:<24} -> {}",
            session.draft().path(ann.element),
            ann.semantic_type
        );
    }
    let report = standardization_report(&[session.draft()]);
    println!("semantic types in draft: {}", report.len());

    // 5. Commit to the repository; the provenance trail rides along.
    let id = session
        .commit(&repo, "village_clinic", "drafted via search")
        .unwrap();
    println!(
        "\ncommitted as {} — reuse summary: {:?}",
        id,
        session.reuse_summary()
    );
    assert!(!session.provenance().is_empty());
    assert!(!repo.get(id).unwrap().metadata.description.is_empty());
}
