//! The paper's running scenario, end to end.
//!
//! A database administrator in a rural health system designs a new table.
//! She searches with the keywords *patient, height, gender, diagnosis* and
//! uploads a partially designed DDL fragment. Schemr parses the input into
//! a query graph (Figure 1), extracts candidates, runs the matcher
//! ensemble, and ranks by tightness-of-fit — including the Figure 4
//! anchor-entity walk-through, which this example prints.
//!
//! ```sh
//! cargo run --example health_clinic
//! ```

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_model::DistanceClass;
use schemr_repo::{import::import_str, Repository};
use schemr_viz::format_results;

fn main() {
    let repo = Arc::new(Repository::new());

    // The Figure 4 candidate: case(doctor, patient) with FKs to
    // patient(height, gender) and doctor(gender).
    let clinic = import_str(
        &repo,
        "clinic",
        "HIV/AIDS treatment program",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT);
         CREATE TABLE doctor (id INT, gender TEXT);
         CREATE TABLE clinic_case (id INT, diagnosis TEXT,
             patient INT REFERENCES patient(id),
             doctor INT REFERENCES doctor(id))",
    )
    .unwrap();

    // Distractors: the same vocabulary scattered across unrelated tables,
    // and an unrelated domain.
    import_str(
        &repo,
        "scattered",
        "same columns, unrelated tables",
        "CREATE TABLE person (height REAL);
         CREATE TABLE warehouse (gender TEXT);
         CREATE TABLE notes (diagnosis TEXT)",
    )
    .unwrap();
    import_str(
        &repo,
        "conservancy",
        "environmental monitoring",
        "CREATE TABLE site (latitude REAL, longitude REAL, elevation REAL, name TEXT)",
    )
    .unwrap();

    let engine = SchemrEngine::new(repo.clone());
    engine.reindex_full();

    // Keywords + a partially designed schema fragment — the combined query
    // of Figure 1.
    let request = SearchRequest::parse(
        "patient, height, gender, diagnosis",
        &["CREATE TABLE patient (height REAL, gender TEXT)"],
    )
    .unwrap();

    let results = engine.search(&request).unwrap();
    println!("{}", format_results(&results));

    // Drill into the winner: the tightness-of-fit detail.
    let top = &results[0];
    assert_eq!(top.id, clinic);
    let stored = repo.get(top.id).unwrap();
    println!("tightness-of-fit detail for `{}`:", top.title);
    for m in &top.matches {
        let class = match m.class {
            DistanceClass::SameEntity => "same entity as anchor (no penalty)",
            DistanceClass::Neighborhood => "FK neighborhood (small penalty)",
            DistanceClass::Unrelated => "unrelated entity (large penalty)",
        };
        println!(
            "  {:<24} score {:.2}  — {}",
            stored.schema.path(m.element),
            m.score,
            class
        );
    }
    println!(
        "\nThe co-located clinic schema outranks `scattered`, which holds the same\n\
         columns in unrelated tables — the paper's structural-ranking claim."
    );
    let scattered = results.iter().find(|r| r.title == "scattered").unwrap();
    assert!(top.score > scattered.score);
}
