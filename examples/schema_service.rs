//! The web service from Figure 5, exercised over real HTTP.
//!
//! Starts the search service on a loopback port, then plays the GUI's
//! role: a keyword search (XML response), a search-by-example POST, a
//! GraphML drill-in request, and an SVG render — all over plain sockets.
//!
//! ```sh
//! cargo run --example schema_service
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use schemr::SchemrEngine;
use schemr_repo::{import::import_str, Repository};
use schemr_server::{SchemrServer, ServerConfig};

fn http(addr: std::net::SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    buf
}

fn body(response: &str) -> &str {
    response.split_once("\r\n\r\n").map_or("", |(_, b)| b)
}

fn main() {
    let repo = Arc::new(Repository::new());
    let clinic = import_str(
        &repo,
        "clinic",
        "rural health clinic",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT);
         CREATE TABLE visit (id INT, date DATE, patient_id INT REFERENCES patient(id))",
    )
    .unwrap();
    import_str(
        &repo,
        "store",
        "a web shop",
        "CREATE TABLE orders (id INT, total DECIMAL, quantity INT)",
    )
    .unwrap();

    let engine = Arc::new(SchemrEngine::new(repo));
    engine.reindex_full();
    let server = SchemrServer::start(engine, ServerConfig::default()).unwrap();
    let addr = server.addr();
    println!("search service listening on http://{addr}\n");

    // 1. Keyword search → XML.
    let resp = http(
        addr,
        "GET /search?q=patient+height+gender HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
    );
    println!("GET /search?q=patient+height+gender →\n{}\n", body(&resp));

    // 2. Search by example: POST a DDL fragment.
    let fragment = "CREATE TABLE patient (height REAL, gender TEXT)";
    let resp = http(
        addr,
        &format!(
            "POST /search?limit=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
            fragment.len(),
            fragment
        ),
    );
    println!("POST /search (fragment) →\n{}\n", body(&resp));

    // 3. Drill-in: GraphML for the clinic schema.
    let resp = http(
        addr,
        &format!("GET /schema/{clinic} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    );
    let graphml = body(&resp);
    println!(
        "GET /schema/{clinic} → GraphML with {} nodes",
        graphml.matches("<node ").count()
    );

    // 4. Radial SVG view.
    let resp = http(
        addr,
        &format!("GET /schema/{clinic}/svg?layout=radial&depth=3 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
    );
    println!(
        "GET /schema/{clinic}/svg → {} bytes of SVG",
        body(&resp).len()
    );

    let clean = server.shutdown();
    println!("\nserver drained cleanly: {clean}");
}
