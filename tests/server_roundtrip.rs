//! F5: the architecture round-trip — repository → indexer → search
//! service → XML/GraphML responses parsed back by the client-side XML
//! machinery.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use schemr::SchemrEngine;
use schemr_parse::xml::{Event, XmlParser};
use schemr_repo::{import::import_str, Repository};
use schemr_server::{SchemrServer, ServerConfig};

fn start_server() -> (SchemrServer, schemr_model::SchemaId) {
    let repo = Arc::new(Repository::new());
    let clinic = import_str(
        &repo,
        "clinic",
        "rural health clinic",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, diagnosis TEXT);
         CREATE TABLE visit (id INT, date DATE, patient_id INT REFERENCES patient(id))",
    )
    .unwrap();
    import_str(
        &repo,
        "store",
        "a shop",
        "CREATE TABLE orders (id INT, total DECIMAL, quantity INT, customer TEXT)",
    )
    .unwrap();
    let engine = Arc::new(SchemrEngine::new(repo));
    engine.reindex_full();
    let server = SchemrServer::start(engine, ServerConfig::default()).unwrap();
    (server, clinic)
}

fn get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    buf.split_once("\r\n\r\n").unwrap().1.to_string()
}

#[test]
fn search_response_parses_and_ranks_like_the_engine() {
    let (server, clinic) = start_server();
    let xml = get(server.addr(), "/search?q=patient+height+gender");
    let events = XmlParser::parse_all(&xml).unwrap();
    // Pull (id, score) pairs out of the response.
    let results: Vec<(String, f64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Start { name, attributes } if name == "result" => {
                let id = attributes.iter().find(|a| a.name == "id")?.value.clone();
                let score: f64 = attributes
                    .iter()
                    .find(|a| a.name == "score")?
                    .value
                    .parse()
                    .ok()?;
                Some((id, score))
            }
            _ => None,
        })
        .collect();
    assert!(!results.is_empty());
    assert_eq!(results[0].0, clinic.to_string());
    // Scores are ranked non-increasing.
    for w in results.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    server.shutdown();
}

#[test]
fn graphml_drill_in_reconstructs_the_schema_shape() {
    let (server, clinic) = start_server();
    let xml = get(server.addr(), &format!("/schema/{clinic}"));
    let events = XmlParser::parse_all(&xml).unwrap();
    let nodes = events
        .iter()
        .filter(|e| matches!(e, Event::Start { name, .. } if name == "node"))
        .count();
    let edges = events
        .iter()
        .filter(|e| matches!(e, Event::Start { name, .. } if name == "edge"))
        .count();
    // clinic: 2 entities + 7 attributes = 9 nodes; 7 containment + 1 FK = 8
    // edges.
    assert_eq!(nodes, 9);
    assert_eq!(edges, 8);
    server.shutdown();
}

#[test]
fn healthz_reports_revision_and_indexed_docs() {
    let (server, _) = start_server();
    let body = get(server.addr(), "/healthz");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"revision\":2"), "{body}");
    assert!(body.contains("\"indexed_docs\":2"), "{body}");
    server.shutdown();
}

#[test]
fn metrics_expose_search_phase_and_http_families() {
    let (server, _) = start_server();
    let addr = server.addr();
    // Drive two searches (one explained) so every family has data.
    get(addr, "/search?q=patient+height");
    get(addr, "/search?q=gender&explain=1");
    let body = get(addr, "/metrics");
    assert!(body.contains("# TYPE schemr_search_requests_total counter"));
    assert!(body.contains("schemr_search_requests_total 2"), "{body}");
    for phase in ["candidate_extraction", "matching", "scoring"] {
        assert!(
            body.contains(&format!(
                "schemr_phase_seconds_count{{phase=\"{phase}\"}} 2"
            )),
            "phase {phase}: {body}"
        );
    }
    for matcher in ["name", "context"] {
        assert!(
            body.contains(&format!(
                "schemr_matcher_seconds_count{{matcher=\"{matcher}\"}} 2"
            )),
            "matcher {matcher}: {body}"
        );
    }
    // Phase 2 match-artifact-cache families are exported; two searches of
    // the same two-schema corpus guarantee at least one cache lookup.
    assert!(
        body.contains("# TYPE schemr_match_artifact_cache_hits_total counter"),
        "{body}"
    );
    for family in ["misses", "invalidations", "bytes_inserted"] {
        assert!(
            body.contains(&format!("schemr_match_artifact_cache_{family}_total")),
            "family {family}: {body}"
        );
    }
    assert!(
        body.contains("schemr_http_requests_total{route=\"/search\",status=\"200\"} 2"),
        "{body}"
    );
    assert!(body.contains("schemr_index_terms_looked_up_total"));
    server.shutdown();
}

#[test]
fn explain_trace_round_trips_through_the_xml_parser() {
    let (server, _) = start_server();
    let xml = get(server.addr(), "/search?q=patient+height&explain=1");
    let events = XmlParser::parse_all(&xml).unwrap();
    let trace = events
        .iter()
        .find_map(|e| match e {
            Event::Start { name, attributes } if name == "trace" => Some(attributes.clone()),
            _ => None,
        })
        .expect("trace element present");
    let attr = |n: &str| {
        trace
            .iter()
            .find(|a| a.name == n)
            .map(|a| a.value.clone())
            .unwrap()
    };
    let from_index: usize = attr("candidates-from-index").parse().unwrap();
    let evaluated: usize = attr("candidates-evaluated").parse().unwrap();
    let threads: usize = attr("match-threads").parse().unwrap();
    assert!(from_index >= evaluated);
    assert!(evaluated >= 1);
    assert!(threads >= 1);
    let phases: Vec<String> = events
        .iter()
        .filter_map(|e| match e {
            Event::Start { name, attributes } if name == "phase" => attributes
                .iter()
                .find(|a| a.name == "name")
                .map(|a| a.value.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(phases, ["candidate_extraction", "matching", "scoring"]);
    let matchers: Vec<String> = events
        .iter()
        .filter_map(|e| match e {
            Event::Start { name, attributes } if name == "matcher" => attributes
                .iter()
                .find(|a| a.name == "name")
                .map(|a| a.value.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(matchers, ["name", "context"]);
    // A plain search carries no trace.
    let plain = get(server.addr(), "/search?q=patient");
    assert!(!plain.contains("<trace"));
    server.shutdown();
}

#[test]
fn fragment_post_round_trips_through_the_service() {
    let (server, clinic) = start_server();
    let fragment = "CREATE TABLE patient (height REAL, gender TEXT)";
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(
        stream,
        "POST /search?limit=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        fragment.len(),
        fragment
    )
    .unwrap();
    let mut buf = String::new();
    stream.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 200"));
    assert!(buf.contains(&format!("id=\"{clinic}\"")));
    assert!(buf.contains("count=\"1\""));
    server.shutdown();
}
