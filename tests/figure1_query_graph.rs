//! F1: Figure 1's query graph — "a forest of trees consisting of schema
//! fragments and keywords" — built from raw user input through the real
//! parsers.

use schemr::SearchRequest;
use schemr_model::ElementKind;

const FRAGMENT_DDL: &str = "CREATE TABLE patient (height REAL, gender TEXT)";

const FRAGMENT_XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="patient">
    <xs:complexType><xs:sequence>
      <xs:element name="height" type="xs:double"/>
      <xs:element name="gender" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

#[test]
fn figure1_from_ddl() {
    let request = SearchRequest::parse("diagnosis", &[FRAGMENT_DDL]).unwrap();
    let graph = request.query_graph();
    // The flattened keyword list candidate extraction sees.
    assert_eq!(
        graph.flat_texts(),
        vec!["patient", "height", "gender", "diagnosis"]
    );
    // The structured view Phase 2 sees: fragment terms point back into the
    // fragment; the keyword is a one-node graph.
    let terms = graph.terms();
    assert_eq!(terms.len(), 4);
    assert_eq!(terms[0].kind, ElementKind::Entity);
    assert!(terms[..3].iter().all(|t| !t.is_keyword()));
    assert!(terms[3].is_keyword());
    let frag = &graph.fragments()[0];
    assert_eq!(frag.entities().len(), 1);
    assert_eq!(frag.children(frag.entities()[0]).len(), 2);
}

#[test]
fn figure1_from_xsd_is_equivalent() {
    let ddl = SearchRequest::parse("diagnosis", &[FRAGMENT_DDL]).unwrap();
    let xsd = SearchRequest::parse("diagnosis", &[FRAGMENT_XSD]).unwrap();
    // "The query-graph abstraction can capture multiple query formats,
    // including relational and XML": both inputs flatten identically.
    assert_eq!(
        ddl.query_graph().flat_texts(),
        xsd.query_graph().flat_texts()
    );
    // And both carry the same types on the height attribute.
    let get_height_type = |r: &SearchRequest| {
        let f = &r.fragments[0];
        let attr = f
            .attributes()
            .into_iter()
            .find(|&a| f.element(a).name == "height")
            .unwrap();
        f.element(attr).data_type
    };
    assert_eq!(get_height_type(&ddl), schemr_model::DataType::Real);
    assert_eq!(get_height_type(&xsd), schemr_model::DataType::Real);
}

#[test]
fn multiple_fragments_and_keywords_form_a_forest() {
    let request = SearchRequest::parse(
        "diagnosis, medication",
        &[FRAGMENT_DDL, "CREATE TABLE visit (date DATE)"],
    )
    .unwrap();
    let graph = request.query_graph();
    assert_eq!(graph.fragments().len(), 2);
    assert_eq!(graph.keywords().len(), 2);
    assert_eq!(graph.terms().len(), 3 + 2 + 2);
}
