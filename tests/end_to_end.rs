//! Whole-system integration: corpus → repository → index → search →
//! metrics, plus cold-restart persistence of both repository and index.

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_corpus::{Corpus, CorpusConfig, RankingMetrics, Workload, WorkloadConfig};
use schemr_repo::{persist, Repository};

fn load_corpus(corpus: &Corpus) -> (Arc<Repository>, Vec<schemr_model::SchemaId>) {
    let repo = Arc::new(Repository::new());
    let ids = corpus
        .schemas
        .iter()
        .map(|s| {
            repo.insert(s.title.clone(), s.summary.clone(), s.schema.clone())
                .unwrap()
        })
        .collect();
    (repo, ids)
}

#[test]
fn retrieval_quality_clears_a_sanity_bar() {
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: 300,
        seed: 5,
        ..CorpusConfig::default()
    });
    let (repo, ids) = load_corpus(&corpus);
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();

    let workload = Workload::generate(
        &corpus,
        &WorkloadConfig {
            queries: 30,
            seed: 6,
            ..Default::default()
        },
    );
    let runs: Vec<(Vec<usize>, std::collections::HashSet<usize>)> = workload
        .queries
        .iter()
        .map(|q| {
            let mut request = SearchRequest {
                keywords: q.keywords.clone(),
                limit: Some(10),
                ..Default::default()
            };
            if let Some(f) = &q.fragment {
                request.fragments.push(f.clone());
            }
            let ranked: Vec<usize> = engine
                .search(&request)
                .unwrap()
                .iter()
                .filter_map(|r| ids.iter().position(|&x| x == r.id))
                .collect();
            (ranked, q.relevant.iter().copied().collect())
        })
        .collect();
    let metrics = RankingMetrics::aggregate(runs.iter().map(|(r, rel)| (r.as_slice(), rel)));
    // Random MRR over 300 schemas with ≤6 relevant would be ≈0.1.
    assert!(metrics.mrr > 0.5, "MRR too low: {metrics}");
    assert!(metrics.ndcg_at_10 > 0.3, "NDCG too low: {metrics}");
}

#[test]
fn cold_restart_preserves_search_results() {
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: 100,
        seed: 9,
        ..CorpusConfig::default()
    });
    let (repo, _) = load_corpus(&corpus);
    let engine = SchemrEngine::new(repo.clone());
    engine.reindex_full();

    let dir = std::env::temp_dir().join("schemr-e2e-restart");
    std::fs::create_dir_all(&dir).unwrap();
    let repo_path = dir.join("repo.json");
    let index_path = dir.join("segment.idx");
    persist::save(&repo, &repo_path).unwrap();
    engine.save_index(&index_path).unwrap();

    // Cold start: everything reloaded from disk.
    let repo2 = Arc::new(persist::load(&repo_path).unwrap());
    let engine2 = SchemrEngine::new(repo2);
    engine2.load_index(&index_path).unwrap();

    let request = SearchRequest::keywords(["patient", "height", "gender"]).with_limit(10);
    let warm = engine.search(&request).unwrap();
    let cold = engine2.search(&request).unwrap();
    assert_eq!(warm.len(), cold.len());
    for (a, b) in warm.iter().zip(&cold) {
        assert_eq!(a.id, b.id);
        assert!((a.score - b.score).abs() < 1e-12);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn paper_scale_corpus_indexes_and_searches() {
    // A scaled-down version of the 30k run that stays test-suite friendly;
    // e1_scalability exercises the full 30k.
    let corpus = Corpus::generate(&CorpusConfig {
        target_size: 2_000,
        seed: 10,
        ..CorpusConfig::default()
    });
    let (repo, _) = load_corpus(&corpus);
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    assert_eq!(engine.index_stats().live_docs, 2_000);
    let results = engine
        .search(&SearchRequest::keywords(["patient", "height", "gender"]))
        .unwrap();
    assert!(!results.is_empty());
    assert!(results[0].score > 0.0);
}
