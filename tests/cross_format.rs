//! Cross-format integration: the same concept published as DDL, XSD, and a
//! WebTables header row must be mutually discoverable — "the query-graph
//! abstraction can capture multiple query formats, including relational
//! and XML".

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_repo::{import::import_str, Repository};

const DDL: &str = "CREATE TABLE patient (height REAL, gender TEXT, diagnosis TEXT, dob DATE)";

const XSD: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="patient">
    <xs:complexType><xs:sequence>
      <xs:element name="height" type="xs:double"/>
      <xs:element name="gender" type="xs:string"/>
      <xs:element name="diagnosis" type="xs:string"/>
      <xs:element name="dob" type="xs:date"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>"#;

const HEADER: &str = "patient, height, gender, diagnosis, dob";

fn engine_with_all_formats() -> SchemrEngine {
    let repo = Arc::new(Repository::new());
    import_str(&repo, "ddl_patient", "relational publication", DDL).unwrap();
    import_str(&repo, "xsd_patient", "xml publication", XSD).unwrap();
    import_str(&repo, "web_table", "webtables publication", HEADER).unwrap();
    import_str(
        &repo,
        "distractor",
        "unrelated",
        "CREATE TABLE invoice (total DECIMAL, tax DECIMAL, currency TEXT, issued DATE)",
    )
    .unwrap();
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    engine
}

/// All three publications of the concept rank above the distractor, for a
/// query in any format.
fn assert_concept_beats_distractor(results: &[schemr::SearchResult]) {
    let pos = |title: &str| {
        results
            .iter()
            .position(|r| r.title == title)
            .unwrap_or(usize::MAX)
    };
    let distractor = pos("distractor");
    for title in ["ddl_patient", "xsd_patient", "web_table"] {
        assert!(
            pos(title) < distractor,
            "{title} (rank {}) should beat distractor (rank {distractor})",
            pos(title)
        );
    }
}

#[test]
fn keyword_query_finds_all_publications() {
    let engine = engine_with_all_formats();
    let results = engine
        .search(&SearchRequest::keywords(["patient", "height", "diagnosis"]))
        .unwrap();
    assert_concept_beats_distractor(&results);
}

#[test]
fn ddl_fragment_finds_the_xsd_publication() {
    let engine = engine_with_all_formats();
    let results = engine
        .search(
            &SearchRequest::parse("", &["CREATE TABLE patient (height REAL, gender TEXT)"])
                .unwrap(),
        )
        .unwrap();
    assert_concept_beats_distractor(&results);
}

#[test]
fn xsd_fragment_finds_the_ddl_publication() {
    let engine = engine_with_all_formats();
    let fragment = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="patient"><xs:complexType><xs:sequence>
        <xs:element name="height" type="xs:double"/>
      </xs:sequence></xs:complexType></xs:element>
    </xs:schema>"#;
    let results = engine
        .search(&SearchRequest::parse("gender", &[fragment]).unwrap())
        .unwrap();
    assert_concept_beats_distractor(&results);
}

#[test]
fn header_row_fragment_works_too() {
    let engine = engine_with_all_formats();
    let results = engine
        .search(&SearchRequest::parse("", &["patient, height, gender"]).unwrap())
        .unwrap();
    assert_concept_beats_distractor(&results);
}
