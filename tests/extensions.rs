//! Integration of the Applications-section extensions: editor loop with
//! provenance, community signals, codebook annotations, and summarization
//! — all working against one engine.

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_codebook::{annotate, SemanticType};
use schemr_collab::{CommunityRanker, CommunityStore};
use schemr_editor::{suggest_for, EditSession};
use schemr_model::DataType;
use schemr_repo::{import::import_str, Repository};
use schemr_viz::summarize;

fn engine() -> (Arc<Repository>, Arc<SchemrEngine>) {
    let repo = Arc::new(Repository::new());
    import_str(
        &repo,
        "reference_clinic",
        "the community's reference design",
        "CREATE TABLE patient (id INT, height REAL, weight REAL, gender TEXT, dob DATE, latitude REAL, longitude REAL)",
    )
    .unwrap();
    import_str(
        &repo,
        "minimal_clinic",
        "",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, notes TEXT)",
    )
    .unwrap();
    let engine = Arc::new(SchemrEngine::new(repo.clone()));
    engine.reindex_full();
    (repo, engine)
}

#[test]
fn editor_loop_drafts_commits_and_reindexes() {
    let (repo, engine) = engine();
    let mut session = EditSession::new("new_clinic");
    let patient = session.add_entity("patient");
    session.add_attribute(patient, "height", DataType::Real);

    // Suggestions come from the repository and exclude what's covered.
    let suggestions = suggest_for(&session, &engine, 4, 0.8);
    assert!(!suggestions.is_empty());
    assert!(suggestions.iter().all(|s| s.name != "height"));

    // Adopt one suggestion; provenance is captured.
    let pick = suggestions[0].clone();
    let stored = repo.get(pick.source_schema).unwrap();
    session.adopt(
        pick.source_schema,
        &stored.schema,
        pick.element,
        Some(patient),
    );
    assert_eq!(session.provenance().len(), 1);

    // Commit → visible to search after incremental reindex.
    let id = session
        .commit(&repo, "new_clinic", "from the editor")
        .unwrap();
    engine.reindex_incremental();
    let results = engine
        .search(&SearchRequest::keywords(["height", &pick.name]))
        .unwrap();
    assert!(results.iter().any(|r| r.id == id));
}

#[test]
fn community_signals_rerank_and_persist() {
    let (repo, engine) = engine();
    let ids = repo.ids();
    let (reference, minimal) = (ids[0], ids[1]);

    let store = CommunityStore::new();
    for _ in 0..15 {
        store.rate(reference, 5);
        store.rate(minimal, 2);
    }
    store.comment(reference, "mork", "solid field coverage", None);

    let mut results = engine
        .search(&SearchRequest::keywords(["patient", "height", "gender"]))
        .unwrap();
    CommunityRanker::new(&store).rerank(&mut results);
    assert_eq!(results[0].id, reference);

    // Persistence round trip keeps everything.
    let restored = CommunityStore::from_json(&store.to_json()).unwrap();
    assert_eq!(restored.signals(reference), store.signals(reference));
    assert_eq!(restored.signals(reference).usage.impressions, 1);
}

#[test]
fn codebook_annotates_search_results() {
    let (repo, engine) = engine();
    let results = engine
        .search(&SearchRequest::keywords(["latitude", "longitude"]))
        .unwrap();
    let top = repo.get(results[0].id).unwrap();
    let annotations = annotate(&top.schema);
    let types: Vec<SemanticType> = annotations.iter().map(|a| a.semantic_type).collect();
    assert!(types.contains(&SemanticType::Latitude));
    assert!(types.contains(&SemanticType::Longitude));
    assert!(types.contains(&SemanticType::Gender));
    assert!(types.contains(&SemanticType::BirthDate));
}

#[test]
fn summaries_of_results_stay_searchable_objects() {
    let (repo, engine) = engine();
    let results = engine
        .search(&SearchRequest::keywords(["patient"]))
        .unwrap();
    let top = repo.get(results[0].id).unwrap();
    let summary = summarize(&top.schema, 1, 3);
    assert_eq!(summary.entities().len(), 1);
    assert!(summary.attributes().len() <= 3);
    assert!(schemr_model::validate(&summary).is_empty());
}
