//! F4: the Figure 4 worked example through the *full engine* — the anchor
//! walk-through the paper narrates, driven by a real query instead of a
//! hand-built matrix.

use std::sync::Arc;

use schemr::{SchemrEngine, SearchRequest};
use schemr_model::DistanceClass;
use schemr_repo::{import::import_str, Repository};

/// Figure 4's schema: case(doctor, patient) → patient(height, gender),
/// doctor(gender).
const FIGURE4_DDL: &str = "
    CREATE TABLE patient (id INT, height REAL, gender TEXT);
    CREATE TABLE doctor (id INT, gender TEXT);
    CREATE TABLE clinic_case (id INT,
        patient INT REFERENCES patient(id),
        doctor INT REFERENCES doctor(id))";

fn engine_with_figure4() -> (Arc<Repository>, SchemrEngine) {
    let repo = Arc::new(Repository::new());
    import_str(&repo, "clinic", "figure 4", FIGURE4_DDL).unwrap();
    let engine = SchemrEngine::new(repo.clone());
    engine.reindex_full();
    (repo, engine)
}

#[test]
fn matched_elements_carry_figure4_distance_classes() {
    let (repo, engine) = engine_with_figure4();
    let results = engine
        .search(&SearchRequest::keywords([
            "patient", "doctor", "height", "gender",
        ]))
        .unwrap();
    let top = &results[0];
    let schema = repo.get(top.id).unwrap().schema;

    // Elements matched in several entities; the best anchor puts some in
    // SameEntity and the rest (reachable through case's FKs) in
    // Neighborhood. Nothing is Unrelated — the FK transitive closure
    // connects all three entities, exactly the paper's walk-through.
    assert!(
        top.matches.len() >= 4,
        "matched {} elements",
        top.matches.len()
    );
    let classes: Vec<DistanceClass> = top.matches.iter().map(|m| m.class).collect();
    assert!(classes.contains(&DistanceClass::SameEntity));
    assert!(classes.contains(&DistanceClass::Neighborhood));
    assert!(!classes.contains(&DistanceClass::Unrelated));

    // Each matched element resolves to a real path.
    for m in &top.matches {
        let path = schema.path(m.element);
        assert!(!path.is_empty());
        assert!(m.score > 0.0 && m.score <= 1.0);
    }
}

#[test]
fn adding_an_unrelated_entity_introduces_the_larger_penalty_class() {
    let repo = Arc::new(Repository::new());
    import_str(
        &repo,
        "clinic_plus_supply",
        "",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT);
         CREATE TABLE supply (id INT, item TEXT, quantity INT)",
    )
    .unwrap();
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    let results = engine
        .search(&SearchRequest::keywords(["height", "gender", "item"]))
        .unwrap();
    let top = &results[0];
    let classes: Vec<DistanceClass> = top.matches.iter().map(|m| m.class).collect();
    // patient and supply share no FK path: whichever anchors, the other's
    // matches are Unrelated.
    assert!(classes.contains(&DistanceClass::Unrelated), "{classes:?}");
}

#[test]
fn colocated_beats_neighborhood_beats_scattered_end_to_end() {
    let repo = Arc::new(Repository::new());
    import_str(
        &repo,
        "colocated",
        "",
        "CREATE TABLE patient (id INT, height REAL, gender TEXT, dob DATE)",
    )
    .unwrap();
    import_str(
        &repo,
        "neighborhood",
        "",
        "CREATE TABLE patient (id INT, height REAL);
         CREATE TABLE visit (id INT, gender TEXT, patient_id INT REFERENCES patient(id))",
    )
    .unwrap();
    import_str(
        &repo,
        "scattered",
        "",
        "CREATE TABLE patient (id INT, height REAL);
         CREATE TABLE warehouse (id INT, gender TEXT)",
    )
    .unwrap();
    let engine = SchemrEngine::new(repo);
    engine.reindex_full();
    let results = engine
        .search(&SearchRequest::keywords(["patient", "height", "gender"]))
        .unwrap();
    let titles: Vec<&str> = results.iter().map(|r| r.title.as_str()).collect();
    assert_eq!(titles, ["colocated", "neighborhood", "scattered"]);
    assert!(results[0].score > results[1].score);
    assert!(results[1].score > results[2].score);
}
