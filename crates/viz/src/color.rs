//! Color encodings: "node color corresponds to schema element types (e.g.
//! entity or attribute)" plus a similarity ramp for match strength.

use schemr_model::ElementKind;

/// An sRGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rgb(pub u8, pub u8, pub u8);

impl Rgb {
    /// CSS hex form, `#rrggbb`.
    pub fn hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.0, self.1, self.2)
    }

    /// Linear interpolation toward `other` by `t ∈ [0,1]`.
    pub fn lerp(self, other: Rgb, t: f64) -> Rgb {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 {
            (f64::from(a) + (f64::from(b) - f64::from(a)) * t).round() as u8
        };
        Rgb(
            mix(self.0, other.0),
            mix(self.1, other.1),
            mix(self.2, other.2),
        )
    }
}

/// Base color per element kind: entities blue, attributes amber, groups
/// gray — distinct hues, as in the paper's screenshots.
pub fn type_color(kind: ElementKind) -> Rgb {
    match kind {
        ElementKind::Entity => Rgb(0x4a, 0x7e, 0xc7),
        ElementKind::Attribute => Rgb(0xe8, 0xa8, 0x3a),
        ElementKind::Group => Rgb(0x9a, 0x9a, 0x9a),
    }
}

/// Similarity ramp: score 0 → near-white, score 1 → saturated green.
pub fn ramp_color(score: f64) -> Rgb {
    Rgb(0xf2, 0xf2, 0xf2).lerp(Rgb(0x2e, 0x8b, 0x2e), score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formatting() {
        assert_eq!(Rgb(0, 0, 0).hex(), "#000000");
        assert_eq!(Rgb(255, 255, 255).hex(), "#ffffff");
        assert_eq!(Rgb(0x4a, 0x7e, 0xc7).hex(), "#4a7ec7");
    }

    #[test]
    fn kinds_get_distinct_colors() {
        let colors = [
            type_color(ElementKind::Entity),
            type_color(ElementKind::Attribute),
            type_color(ElementKind::Group),
        ];
        assert_ne!(colors[0], colors[1]);
        assert_ne!(colors[1], colors[2]);
        assert_ne!(colors[0], colors[2]);
    }

    #[test]
    fn ramp_endpoints_and_monotonicity() {
        assert_eq!(ramp_color(0.0), Rgb(0xf2, 0xf2, 0xf2));
        assert_eq!(ramp_color(1.0), Rgb(0x2e, 0x8b, 0x2e));
        // Green dominance grows with score; red channel shrinks.
        let lo = ramp_color(0.2);
        let hi = ramp_color(0.8);
        assert!(hi.0 < lo.0);
    }

    #[test]
    fn ramp_clamps_out_of_range_scores() {
        assert_eq!(ramp_color(-2.0), ramp_color(0.0));
        assert_eq!(ramp_color(7.0), ramp_color(1.0));
    }

    #[test]
    fn lerp_midpoint() {
        let mid = Rgb(0, 0, 0).lerp(Rgb(200, 100, 50), 0.5);
        assert_eq!(mid, Rgb(100, 50, 25));
    }
}
