//! GraphML serialization — the transport format between the search service
//! and the GUI ("returns a graphical representation of the schema to the
//! client as a GraphML response").
//!
//! Nodes carry label, kind, data type, and (optionally) the match score
//! from Phase 3 so the client can apply the similarity encodings. Edges
//! carry their kind: `contains` or `fk`.

use schemr::MatchedElement;
use schemr_model::{ElementId, Schema};
use schemr_parse::xml::escape;

/// GraphML output options.
#[derive(Debug, Clone, Default)]
pub struct GraphmlOptions {
    /// Cap the serialized containment depth (the paper's display cap);
    /// `None` serializes the whole schema.
    pub max_depth: Option<usize>,
    /// Per-element match scores to embed (from a search result).
    pub scores: Vec<MatchedElement>,
}

/// Serialize `schema` to GraphML.
pub fn to_graphml(schema: &Schema, options: &GraphmlOptions) -> String {
    let visible: Vec<ElementId> = match options.max_depth {
        Some(d) => schema
            .roots()
            .into_iter()
            .flat_map(|r| schema.subtree(r, d))
            .collect(),
        None => schema.ids().collect(),
    };
    let visible_set: std::collections::HashSet<ElementId> = visible.iter().copied().collect();
    let score_of = |id: ElementId| -> Option<f64> {
        options
            .scores
            .iter()
            .find(|m| m.element == id)
            .map(|m| m.score)
    };

    let mut out = String::with_capacity(1024);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n");
    out.push_str("  <key id=\"label\" for=\"node\" attr.name=\"label\" attr.type=\"string\"/>\n");
    out.push_str("  <key id=\"kind\" for=\"node\" attr.name=\"kind\" attr.type=\"string\"/>\n");
    out.push_str("  <key id=\"type\" for=\"node\" attr.name=\"type\" attr.type=\"string\"/>\n");
    out.push_str("  <key id=\"score\" for=\"node\" attr.name=\"score\" attr.type=\"double\"/>\n");
    out.push_str("  <key id=\"ekind\" for=\"edge\" attr.name=\"kind\" attr.type=\"string\"/>\n");
    out.push_str(&format!(
        "  <graph id=\"{}\" edgedefault=\"directed\">\n",
        escape(&schema.name)
    ));
    for &id in &visible {
        let el = schema.element(id);
        out.push_str(&format!("    <node id=\"{id}\">\n"));
        out.push_str(&format!(
            "      <data key=\"label\">{}</data>\n",
            escape(&el.name)
        ));
        out.push_str(&format!("      <data key=\"kind\">{}</data>\n", el.kind));
        out.push_str(&format!(
            "      <data key=\"type\">{}</data>\n",
            el.data_type
        ));
        if let Some(score) = score_of(id) {
            out.push_str(&format!("      <data key=\"score\">{score:.4}</data>\n"));
        }
        out.push_str("    </node>\n");
    }
    let mut edge_ix = 0usize;
    for &id in &visible {
        if let Some(parent) = schema.element(id).parent {
            if visible_set.contains(&parent) {
                out.push_str(&format!(
                    "    <edge id=\"e{edge_ix}\" source=\"{parent}\" target=\"{id}\"><data key=\"ekind\">contains</data></edge>\n"
                ));
                edge_ix += 1;
            }
        }
    }
    for fk in schema.foreign_keys() {
        if visible_set.contains(&fk.from_entity) && visible_set.contains(&fk.to_entity) {
            out.push_str(&format!(
                "    <edge id=\"e{edge_ix}\" source=\"{}\" target=\"{}\"><data key=\"ekind\">fk</data></edge>\n",
                fk.from_entity, fk.to_entity
            ));
            edge_ix += 1;
        }
    }
    out.push_str("  </graph>\n</graphml>\n");
    out
}

/// Errors from [`from_graphml`].
#[derive(Debug)]
pub enum GraphmlError {
    /// The input is not well-formed XML.
    Xml(schemr_parse::ParseError),
    /// The document parses but is not a usable GraphML schema graph.
    Shape(String),
}

impl std::fmt::Display for GraphmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphmlError::Xml(e) => write!(f, "graphml: {e}"),
            GraphmlError::Shape(msg) => write!(f, "graphml: {msg}"),
        }
    }
}

impl std::error::Error for GraphmlError {}

/// Parse GraphML (as produced by [`to_graphml`]) back into a schema plus
/// any embedded per-element match scores — the client side of the
/// paper's transport format.
pub fn from_graphml(xml: &str) -> Result<(Schema, Vec<(ElementId, f64)>), GraphmlError> {
    use schemr_parse::xml::{Event, XmlParser};

    #[derive(Default, Clone)]
    struct NodeData {
        label: String,
        kind: String,
        data_type: String,
        score: Option<f64>,
    }

    let mut parser = XmlParser::new(xml);
    let mut graph_name = String::from("graphml");
    let mut nodes: Vec<(String, NodeData)> = Vec::new();
    let mut contains: Vec<(String, String)> = Vec::new();
    let mut fks: Vec<(String, String)> = Vec::new();

    let mut current_node: Option<(String, NodeData)> = None;
    let mut current_edge: Option<(String, String, String)> = None; // source, target, kind
    let mut current_data_key: Option<String> = None;

    while let Some(ev) = parser.next_event().map_err(GraphmlError::Xml)? {
        match ev {
            Event::Start { name, attributes } => {
                let local = name.rsplit(':').next().unwrap_or(&name);
                let attr = |k: &str| {
                    attributes
                        .iter()
                        .find(|a| a.name == k)
                        .map(|a| a.value.clone())
                };
                match local {
                    "graph" => {
                        if let Some(id) = attr("id") {
                            graph_name = id;
                        }
                    }
                    "node" => {
                        let id = attr("id")
                            .ok_or_else(|| GraphmlError::Shape("node without id".into()))?;
                        current_node = Some((id, NodeData::default()));
                    }
                    "edge" => {
                        let source = attr("source")
                            .ok_or_else(|| GraphmlError::Shape("edge without source".into()))?;
                        let target = attr("target")
                            .ok_or_else(|| GraphmlError::Shape("edge without target".into()))?;
                        current_edge = Some((source, target, "contains".into()));
                    }
                    "data" => current_data_key = attr("key"),
                    _ => {}
                }
            }
            Event::Text(text) => {
                if let Some(key) = &current_data_key {
                    if let Some((_, data)) = current_node.as_mut() {
                        match key.as_str() {
                            "label" => data.label = text,
                            "kind" => data.kind = text,
                            "type" => data.data_type = text,
                            "score" => data.score = text.parse().ok(),
                            _ => {}
                        }
                    } else if let Some((_, _, kind)) = current_edge.as_mut() {
                        if key == "ekind" {
                            *kind = text;
                        }
                    }
                }
            }
            Event::End { name } => {
                let local = name.rsplit(':').next().unwrap_or(&name);
                match local {
                    "node" => {
                        if let Some(n) = current_node.take() {
                            nodes.push(n);
                        }
                    }
                    "edge" => {
                        if let Some((s, t, kind)) = current_edge.take() {
                            if kind == "fk" {
                                fks.push((s, t));
                            } else {
                                contains.push((s, t));
                            }
                        }
                    }
                    "data" => current_data_key = None,
                    _ => {}
                }
            }
            Event::Comment(_) => {}
        }
    }

    // Assemble: BFS from roots so parents exist before children.
    let index_of: std::collections::HashMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, (id, _))| (id.as_str(), i))
        .collect();
    let mut parent_of: Vec<Option<usize>> = vec![None; nodes.len()];
    for (s, t) in &contains {
        let (Some(&p), Some(&c)) = (index_of.get(s.as_str()), index_of.get(t.as_str())) else {
            return Err(GraphmlError::Shape(format!(
                "edge references unknown node {s}→{t}"
            )));
        };
        if parent_of[c].is_some() {
            return Err(GraphmlError::Shape(format!("node {t} has two parents")));
        }
        parent_of[c] = Some(p);
    }

    // Insert in document order (our writer emits parents before children,
    // so this preserves the original element layout); repeated passes
    // handle foreign documents with children listed first.
    let mut schema = Schema::new(graph_name);
    let mut new_ids: Vec<Option<ElementId>> = vec![None; nodes.len()];
    let mut placed = 0usize;
    loop {
        let before = placed;
        for i in 0..nodes.len() {
            if new_ids[i].is_some() {
                continue;
            }
            let parent_id = match parent_of[i] {
                Some(p) => match new_ids[p] {
                    Some(id) => Some(id),
                    None => continue, // parent not placed yet; next pass
                },
                None => None,
            };
            let data = &nodes[i].1;
            let kind_el = match data.kind.as_str() {
                "entity" => schemr_model::Element::entity(data.label.clone()),
                "group" => schemr_model::Element::group(data.label.clone()),
                _ => {
                    let ty = schemr_model::DataType::ALL
                        .into_iter()
                        .find(|t| t.label() == data.data_type)
                        .unwrap_or_default();
                    schemr_model::Element::attribute(data.label.clone(), ty)
                }
            };
            new_ids[i] = Some(match parent_id {
                Some(p) => schema.add_child(p, kind_el),
                None => schema.add_root(kind_el),
            });
            placed += 1;
        }
        if placed == nodes.len() {
            break;
        }
        if placed == before {
            return Err(GraphmlError::Shape("containment cycle".into()));
        }
    }
    for (s, t) in &fks {
        let (Some(&si), Some(&ti)) = (index_of.get(s.as_str()), index_of.get(t.as_str())) else {
            return Err(GraphmlError::Shape(format!(
                "fk references unknown node {s}→{t}"
            )));
        };
        schema.add_foreign_key(schemr_model::ForeignKey {
            from_entity: new_ids[si].expect("placed"),
            from_attrs: vec![],
            to_entity: new_ids[ti].expect("placed"),
            to_attrs: vec![],
        });
    }
    let scores = nodes
        .iter()
        .enumerate()
        .filter_map(|(i, (_, d))| d.score.map(|s| (new_ids[i].expect("placed"), s)))
        .collect();
    Ok((schema, scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, DistanceClass, SchemaBuilder};
    use schemr_parse::xml::{Event, XmlParser};

    fn clinic() -> Schema {
        SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("case", |e| e.attr("patient_id", DataType::Integer))
            .foreign_key("case", &["patient_id"], "patient", &[])
            .build_unchecked()
    }

    fn count_events(xml: &str) -> (usize, usize) {
        let events = XmlParser::parse_all(xml).unwrap();
        let nodes = events
            .iter()
            .filter(|e| matches!(e, Event::Start { name, .. } if name == "node"))
            .count();
        let edges = events
            .iter()
            .filter(|e| matches!(e, Event::Start { name, .. } if name == "edge"))
            .count();
        (nodes, edges)
    }

    #[test]
    fn graphml_is_well_formed_with_all_nodes_and_edges() {
        let s = clinic();
        let xml = to_graphml(&s, &GraphmlOptions::default());
        let (nodes, edges) = count_events(&xml);
        assert_eq!(nodes, s.len());
        // 3 containment edges + 1 FK edge.
        assert_eq!(edges, 4);
        assert!(xml.contains("<data key=\"ekind\">fk</data>"));
    }

    #[test]
    fn depth_cap_limits_nodes() {
        let mut s = schemr_model::Schema::new("deep");
        let a = s.add_root(schemr_model::Element::entity("a"));
        let b = s.add_child(a, schemr_model::Element::group("b"));
        let c = s.add_child(b, schemr_model::Element::group("c"));
        s.add_child(c, schemr_model::Element::attribute("x", DataType::Text));
        let xml = to_graphml(
            &s,
            &GraphmlOptions {
                max_depth: Some(2),
                scores: vec![],
            },
        );
        let (nodes, edges) = count_events(&xml);
        assert_eq!(nodes, 3);
        assert_eq!(edges, 2);
    }

    #[test]
    fn scores_embed_for_matched_elements_only() {
        let s = clinic();
        let height = s.attributes()[0];
        let xml = to_graphml(
            &s,
            &GraphmlOptions {
                max_depth: None,
                scores: vec![MatchedElement {
                    element: height,
                    term: 0,
                    score: 0.87,
                    class: DistanceClass::SameEntity,
                }],
            },
        );
        assert_eq!(xml.matches("<data key=\"score\">").count(), 1);
        assert!(xml.contains("0.8700"));
    }

    #[test]
    fn names_are_escaped() {
        let mut s = schemr_model::Schema::new("x<&>y");
        let e = s.add_root(schemr_model::Element::entity("a&b"));
        s.add_child(e, schemr_model::Element::attribute("c<d", DataType::Text));
        let xml = to_graphml(&s, &GraphmlOptions::default());
        // Must parse back cleanly.
        assert!(XmlParser::parse_all(&xml).is_ok());
        assert!(xml.contains("a&amp;b"));
        assert!(xml.contains("c&lt;d"));
    }

    #[test]
    fn from_graphml_round_trips_structure_and_scores() {
        let s = clinic();
        let height = s.attributes()[0];
        let xml = to_graphml(
            &s,
            &GraphmlOptions {
                max_depth: None,
                scores: vec![MatchedElement {
                    element: height,
                    term: 0,
                    score: 0.87,
                    class: DistanceClass::SameEntity,
                }],
            },
        );
        let (back, scores) = from_graphml(&xml).unwrap();
        assert_eq!(back.name, "clinic");
        assert_eq!(back.len(), s.len());
        assert_eq!(back.entities().len(), s.entities().len());
        assert_eq!(back.foreign_keys().len(), s.foreign_keys().len());
        for (a, b) in s.ids().zip(back.ids()) {
            assert_eq!(s.element(a).name, back.element(b).name);
            assert_eq!(s.element(a).kind, back.element(b).kind);
            assert_eq!(s.element(a).data_type, back.element(b).data_type);
            assert_eq!(s.path(a), back.path(b));
        }
        assert_eq!(scores.len(), 1);
        assert!((scores[0].1 - 0.87).abs() < 1e-6);
        assert!(schemr_model::validate(&back).is_empty());
    }

    #[test]
    fn from_graphml_rejects_malformed_documents() {
        assert!(from_graphml("<graphml><graph><node/></graph></graphml>").is_err()); // node w/o id
        assert!(from_graphml("not xml").is_err());
        // Two parents.
        let bad = r#"<graphml><graph id="g">
            <node id="a"><data key="label">a</data><data key="kind">entity</data></node>
            <node id="b"><data key="label">b</data><data key="kind">entity</data></node>
            <node id="c"><data key="label">c</data><data key="kind">attribute</data></node>
            <edge source="a" target="c"/><edge source="b" target="c"/>
        </graph></graphml>"#;
        assert!(matches!(from_graphml(bad), Err(GraphmlError::Shape(_))));
    }

    #[test]
    fn labels_round_trip_through_the_xml_parser() {
        let s = clinic();
        let xml = to_graphml(&s, &GraphmlOptions::default());
        let events = XmlParser::parse_all(&xml).unwrap();
        let labels: Vec<&String> = events
            .windows(2)
            .filter_map(|w| match (&w[0], &w[1]) {
                (Event::Start { name, attributes }, Event::Text(t))
                    if name == "data"
                        && attributes
                            .iter()
                            .any(|a| a.name == "key" && a.value == "label") =>
                {
                    Some(t)
                }
                _ => None,
            })
            .collect();
        assert_eq!(labels.len(), s.len());
        assert!(labels.iter().any(|l| *l == "patient"));
    }
}
