//! Schema summarization for very large schemas.
//!
//! "To ensure Schemr scales to very large schemas, we plan to employ schema
//! visualization and summarization techniques, such as those proposed in
//! [Yu & Jagadish, Schema summarization, VLDB 2006]."
//!
//! This module implements an importance-based summarizer in that spirit:
//! entities are scored by how much of the schema they carry (attribute
//! count), how central they are (foreign-key degree), and how close to the
//! root they sit; the summary keeps the top-*k* entities with their most
//! important attributes and every foreign key between kept entities.

use std::collections::HashMap;

use schemr_model::{Element, ElementId, ElementKind, ForeignKey, Schema};

/// An entity's importance breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntityImportance {
    /// The entity.
    pub entity: ElementId,
    /// Combined importance (higher = keep first).
    pub score: f64,
    /// Attribute count component.
    pub attributes: usize,
    /// FK degree component.
    pub fk_degree: usize,
}

/// Rank entities by importance, descending.
pub fn rank_entities(schema: &Schema) -> Vec<EntityImportance> {
    let mut fk_degree: HashMap<ElementId, usize> = HashMap::new();
    for fk in schema.foreign_keys() {
        *fk_degree.entry(fk.from_entity).or_insert(0) += 1;
        *fk_degree.entry(fk.to_entity).or_insert(0) += 1;
    }
    let mut ranked: Vec<EntityImportance> = schema
        .entities()
        .into_iter()
        .map(|entity| {
            let attributes = schema
                .children(entity)
                .into_iter()
                .filter(|&c| schema.element(c).kind == ElementKind::Attribute)
                .count();
            let degree = fk_degree.get(&entity).copied().unwrap_or(0);
            let depth = schema.depth(entity);
            // Attribute mass + 2× connectivity, discounted by nesting depth.
            let score = (attributes as f64 + 2.0 * degree as f64) / (1.0 + depth as f64);
            EntityImportance {
                entity,
                score,
                attributes,
                fk_degree: degree,
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.entity.cmp(&b.entity))
    });
    ranked
}

/// Produce a summary schema with at most `max_entities` entities and at
/// most `max_attrs_per_entity` attributes each. Foreign keys between kept
/// entities survive (attribute detail dropped when the attribute was
/// pruned).
pub fn summarize(schema: &Schema, max_entities: usize, max_attrs_per_entity: usize) -> Schema {
    let keep: Vec<ElementId> = rank_entities(schema)
        .into_iter()
        .take(max_entities)
        .map(|e| e.entity)
        .collect();
    let mut out = Schema::new(format!("{} (summary)", schema.name));
    let mut id_map: HashMap<ElementId, ElementId> = HashMap::new();
    for &entity in &keep {
        let new_entity = out.add_root(Element::entity(schema.element(entity).name.clone()));
        id_map.insert(entity, new_entity);
        // Attributes in insertion order; FK attributes first so surviving
        // FKs keep their column detail.
        let mut attrs: Vec<ElementId> = schema
            .children(entity)
            .into_iter()
            .filter(|&c| schema.element(c).kind == ElementKind::Attribute)
            .collect();
        let is_fk_attr = |id: ElementId| {
            schema
                .foreign_keys()
                .iter()
                .any(|fk| fk.from_attrs.contains(&id) || fk.to_attrs.contains(&id))
        };
        attrs.sort_by_key(|&a| (!is_fk_attr(a), a));
        for attr in attrs.into_iter().take(max_attrs_per_entity) {
            let el = schema.element(attr);
            let new_attr = out.add_child(
                new_entity,
                Element::attribute(el.name.clone(), el.data_type),
            );
            id_map.insert(attr, new_attr);
        }
    }
    for fk in schema.foreign_keys() {
        let (Some(&from_entity), Some(&to_entity)) =
            (id_map.get(&fk.from_entity), id_map.get(&fk.to_entity))
        else {
            continue;
        };
        let map_attrs = |attrs: &[ElementId]| -> Vec<ElementId> {
            attrs
                .iter()
                .filter_map(|a| id_map.get(a).copied())
                .collect()
        };
        let from_attrs = map_attrs(&fk.from_attrs);
        // Only keep column detail when every column survived.
        let from_attrs = if from_attrs.len() == fk.from_attrs.len() {
            from_attrs
        } else {
            vec![]
        };
        let to_attrs = map_attrs(&fk.to_attrs);
        let to_attrs = if to_attrs.len() == fk.to_attrs.len() {
            to_attrs
        } else {
            vec![]
        };
        out.add_foreign_key(ForeignKey {
            from_entity,
            from_attrs,
            to_entity,
            to_attrs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{validate, DataType, SchemaBuilder};

    /// A star schema: `fact` joined to three dimensions plus an isolated
    /// junk table.
    fn star() -> Schema {
        SchemaBuilder::new("warehouse")
            .entity("fact_sales", |e| {
                e.attr("amount", DataType::Decimal)
                    .attr("quantity", DataType::Integer)
                    .attr("store_id", DataType::Integer)
                    .attr("product_id", DataType::Integer)
                    .attr("date_id", DataType::Integer)
            })
            .entity("dim_store", |e| {
                e.attr("id", DataType::Integer).attr("city", DataType::Text)
            })
            .entity("dim_product", |e| {
                e.attr("id", DataType::Integer)
                    .attr("brand", DataType::Text)
            })
            .entity("dim_date", |e| {
                e.attr("id", DataType::Integer)
                    .attr("month", DataType::Integer)
            })
            .entity("scratch", |e| e.attr("junk", DataType::Text))
            .foreign_key("fact_sales", &["store_id"], "dim_store", &["id"])
            .foreign_key("fact_sales", &["product_id"], "dim_product", &["id"])
            .foreign_key("fact_sales", &["date_id"], "dim_date", &["id"])
            .build_unchecked()
    }

    #[test]
    fn the_fact_table_ranks_first() {
        let s = star();
        let ranked = rank_entities(&s);
        assert_eq!(s.element(ranked[0].entity).name, "fact_sales");
        assert_eq!(ranked[0].fk_degree, 3);
        // The isolated junk table ranks last.
        assert_eq!(s.element(ranked.last().unwrap().entity).name, "scratch");
    }

    #[test]
    fn summary_keeps_top_entities_and_their_fks() {
        let s = star();
        let summary = summarize(&s, 3, 3);
        assert!(validate(&summary).is_empty());
        assert_eq!(summary.entities().len(), 3);
        let names: Vec<String> = summary
            .entities()
            .into_iter()
            .map(|e| summary.element(e).name.clone())
            .collect();
        assert!(names.contains(&"fact_sales".to_string()));
        assert!(!names.contains(&"scratch".to_string()));
        // FKs between kept entities survive.
        assert_eq!(summary.foreign_keys().len(), 2);
        for e in summary.entities() {
            assert!(summary.children(e).len() <= 3);
        }
    }

    #[test]
    fn fk_attributes_survive_attribute_pruning_first() {
        let s = star();
        let summary = summarize(&s, 5, 2);
        // Even with only 2 attributes kept per entity, every surviving FK
        // either keeps full column detail or drops to entity-level.
        for fk in summary.foreign_keys() {
            for &a in fk.from_attrs.iter().chain(&fk.to_attrs) {
                assert!(summary.get(a).is_some());
            }
        }
        assert!(validate(&summary).is_empty());
    }

    #[test]
    fn summary_of_small_schema_is_lossless_in_entity_count() {
        let s = star();
        let summary = summarize(&s, 100, 100);
        assert_eq!(summary.entities().len(), s.entities().len());
        assert_eq!(summary.foreign_keys().len(), s.foreign_keys().len());
    }

    #[test]
    fn summary_name_is_marked() {
        let summary = summarize(&star(), 2, 2);
        assert!(summary.name.ends_with("(summary)"));
    }
}
