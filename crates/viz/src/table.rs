//! The tabular result view — "a ranked list of n results, presented in a
//! tabular format, including columns for name, score, matches, entities,
//! attributes, and description".

use schemr::SearchResult;

/// Format results as a fixed-width text table.
pub fn format_results(results: &[SearchResult]) -> String {
    let mut rows: Vec<[String; 7]> = vec![[
        "#".into(),
        "name".into(),
        "score".into(),
        "matches".into(),
        "entities".into(),
        "attributes".into(),
        "description".into(),
    ]];
    for (i, r) in results.iter().enumerate() {
        rows.push([
            (i + 1).to_string(),
            r.title.clone(),
            format!("{:.3}", r.score),
            r.matches.len().to_string(),
            r.stats.entities.to_string(),
            r.stats.attributes.to_string(),
            r.summary.clone(),
        ]);
    }
    let mut widths = [0usize; 7];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{cell:<w$}"))
            .collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{SchemaId, SchemaStats};

    fn result(title: &str, score: f64) -> SearchResult {
        SearchResult {
            id: SchemaId(1),
            title: title.to_string(),
            summary: "a schema".to_string(),
            score,
            coarse_score: score * 2.0,
            matched_terms: 2,
            stats: SchemaStats {
                entities: 2,
                attributes: 5,
                groups: 0,
                foreign_keys: 1,
                max_depth: 1,
            },
            matches: vec![],
        }
    }

    #[test]
    fn table_has_header_rule_and_rows() {
        let t = format_results(&[result("clinic", 0.74), result("store", 0.31)]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].contains("clinic"));
        assert!(lines[2].contains("0.740"));
        assert!(lines[3].contains("store"));
    }

    #[test]
    fn empty_results_still_render_the_header() {
        let t = format_results(&[]);
        assert!(t.lines().count() == 2);
    }

    #[test]
    fn columns_align() {
        let t = format_results(&[result("a", 0.1), result("much_longer_name", 0.2)]);
        let lines: Vec<&str> = t.lines().collect();
        // Score column starts at the same offset in both data rows.
        let off2 = lines[2].find("0.100").unwrap();
        let off3 = lines[3].find("0.200").unwrap();
        assert_eq!(off2, off3);
    }
}
