//! SVG rendering of a layout — the inspectable stand-in for the Flash GUI.

use schemr::MatchedElement;
use schemr_model::Schema;
use schemr_parse::xml::escape;

use crate::color::{ramp_color, type_color};
use crate::layout::Layout;

/// SVG rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Node circle radius.
    pub node_radius: f64,
    /// Canvas padding around the layout bounds.
    pub padding: f64,
    /// Per-element match scores; matched nodes get a similarity halo.
    pub scores: Vec<MatchedElement>,
    /// Draw element labels.
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            node_radius: 14.0,
            padding: 60.0,
            scores: Vec::new(),
            labels: true,
        }
    }
}

/// Render a layout of `schema` to an SVG document string.
pub fn render_svg(schema: &Schema, layout: &Layout, options: &SvgOptions) -> String {
    let (minx, miny, maxx, maxy) = layout.bounds();
    let pad = options.padding;
    let width = (maxx - minx) + 2.0 * pad;
    let height = (maxy - miny) + 2.0 * pad;
    let tx = |x: f64| x - minx + pad;
    let ty = |y: f64| y - miny + pad;

    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" viewBox=\"0 0 {width:.0} {height:.0}\">\n"
    ));
    out.push_str(&format!(
        "  <rect width=\"{width:.0}\" height=\"{height:.0}\" fill=\"#ffffff\"/>\n"
    ));

    // Containment edges.
    for &(p, c) in &layout.edges {
        let (Some(pp), Some(pc)) = (layout.position(p), layout.position(c)) else {
            continue;
        };
        out.push_str(&format!(
            "  <line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#b5b5b5\" stroke-width=\"1.5\"/>\n",
            tx(pp.x), ty(pp.y), tx(pc.x), ty(pc.y)
        ));
    }
    // FK edges, dashed.
    for &(a, b) in &layout.fk_edges {
        let (Some(pa), Some(pb)) = (layout.position(a), layout.position(b)) else {
            continue;
        };
        out.push_str(&format!(
            "  <line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#7a7adb\" stroke-width=\"1.5\" stroke-dasharray=\"6 4\"/>\n",
            tx(pa.x), ty(pa.y), tx(pb.x), ty(pb.y)
        ));
    }
    // Nodes.
    for n in &layout.nodes {
        let el = schema.element(n.id);
        let score = options
            .scores
            .iter()
            .find(|m| m.element == n.id)
            .map(|m| m.score);
        if let Some(s) = score {
            // Similarity halo behind the node.
            out.push_str(&format!(
                "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"{}\"/>\n",
                tx(n.x),
                ty(n.y),
                options.node_radius + 6.0,
                ramp_color(s).hex()
            ));
        }
        out.push_str(&format!(
            "  <circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"{}\" stroke=\"#555555\"/>\n",
            tx(n.x),
            ty(n.y),
            options.node_radius,
            type_color(el.kind).hex()
        ));
        if options.labels {
            out.push_str(&format!(
                "  <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"middle\" font-family=\"sans-serif\">{}</text>\n",
                tx(n.x),
                ty(n.y) + options.node_radius + 12.0,
                escape(&el.name)
            ));
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::tree_layout;
    use schemr_model::{DataType, DistanceClass, SchemaBuilder};

    fn clinic() -> Schema {
        SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked()
    }

    #[test]
    fn svg_contains_a_circle_per_node_and_line_per_edge() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let svg = render_svg(&s, &layout, &SvgOptions::default());
        assert_eq!(svg.matches("<circle").count(), s.len());
        assert_eq!(svg.matches("<line").count(), layout.edges.len());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn matched_nodes_get_halos() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let svg = render_svg(
            &s,
            &layout,
            &SvgOptions {
                scores: vec![MatchedElement {
                    element: s.attributes()[0],
                    term: 0,
                    score: 0.9,
                    class: DistanceClass::SameEntity,
                }],
                ..Default::default()
            },
        );
        // One extra circle: the halo.
        assert_eq!(svg.matches("<circle").count(), s.len() + 1);
    }

    #[test]
    fn svg_parses_as_xml() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let svg = render_svg(&s, &layout, &SvgOptions::default());
        assert!(schemr_parse::xml::XmlParser::parse_all(&svg).is_ok());
    }

    #[test]
    fn labels_can_be_disabled() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let svg = render_svg(
            &s,
            &layout,
            &SvgOptions {
                labels: false,
                ..Default::default()
            },
        );
        assert!(!svg.contains("<text"));
    }

    #[test]
    fn coordinates_are_shifted_into_the_canvas() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let svg = render_svg(&s, &layout, &SvgOptions::default());
        // No negative coordinates.
        assert!(!svg.contains("=\"-"));
    }
}
