//! Layout engines: hierarchical tree and radial.
//!
//! "We allow for multiple graph layouts, including a hierarchical tree
//! layout and a radial layout. To ensure Schemr scales to very large
//! schemas, we cap the displayed graph depth to 3" — both engines take a
//! `max_depth` and lay out only the visible subtree; drill-in is re-layout
//! with a different root.

use schemr_model::{ElementId, Schema};

/// A positioned node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePos {
    /// The element.
    pub id: ElementId,
    /// X coordinate (abstract units; the renderer scales).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// A computed layout: node positions plus the edges between *visible*
/// nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Node positions.
    pub nodes: Vec<NodePos>,
    /// Containment edges between visible nodes, as (parent, child).
    pub edges: Vec<(ElementId, ElementId)>,
    /// Foreign-key edges between visible entities.
    pub fk_edges: Vec<(ElementId, ElementId)>,
}

impl Layout {
    /// Look up a node's position.
    pub fn position(&self, id: ElementId) -> Option<NodePos> {
        self.nodes.iter().copied().find(|n| n.id == id)
    }

    /// Bounding box (min_x, min_y, max_x, max_y).
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        let mut b = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for n in &self.nodes {
            b.0 = b.0.min(n.x);
            b.1 = b.1.min(n.y);
            b.2 = b.2.max(n.x);
            b.3 = b.3.max(n.y);
        }
        if self.nodes.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            b
        }
    }
}

/// Count leaves of the depth-capped subtree (nodes with no visible
/// children count as leaves).
fn leaf_count(schema: &Schema, id: ElementId, depth_left: usize) -> usize {
    if depth_left == 0 {
        return 1;
    }
    let children = schema.children(id);
    if children.is_empty() {
        1
    } else {
        children
            .into_iter()
            .map(|c| leaf_count(schema, c, depth_left - 1))
            .sum()
    }
}

/// Visible edges of the capped subtree rooted at `root`.
fn visible_edges(
    schema: &Schema,
    root: ElementId,
    max_depth: usize,
) -> Vec<(ElementId, ElementId)> {
    let visible = schema.subtree(root, max_depth);
    let set: std::collections::HashSet<ElementId> = visible.iter().copied().collect();
    let mut edges = Vec::new();
    for &id in &visible {
        if let Some(p) = schema.element(id).parent {
            if set.contains(&p) {
                edges.push((p, id));
            }
        }
    }
    edges
}

/// Foreign-key edges with both endpoints visible.
fn visible_fk_edges(schema: &Schema, visible: &[ElementId]) -> Vec<(ElementId, ElementId)> {
    let set: std::collections::HashSet<ElementId> = visible.iter().copied().collect();
    schema
        .foreign_keys()
        .iter()
        .filter(|fk| set.contains(&fk.from_entity) && set.contains(&fk.to_entity))
        .map(|fk| (fk.from_entity, fk.to_entity))
        .collect()
}

/// Hierarchical tree layout: depth maps to Y (top-down), leaves occupy
/// consecutive X slots, inner nodes center over their children. Multiple
/// roots lay out side by side.
pub fn tree_layout(schema: &Schema, roots: &[ElementId], max_depth: usize) -> Layout {
    const X_STEP: f64 = 80.0;
    const Y_STEP: f64 = 70.0;
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut next_leaf_x = 0.0f64;

    #[allow(clippy::too_many_arguments)]
    fn place(
        schema: &Schema,
        id: ElementId,
        depth: usize,
        depth_left: usize,
        next_leaf_x: &mut f64,
        nodes: &mut Vec<NodePos>,
        x_step: f64,
        y_step: f64,
    ) -> f64 {
        let children = if depth_left > 0 {
            schema.children(id)
        } else {
            Vec::new()
        };
        let x = if children.is_empty() {
            let x = *next_leaf_x;
            *next_leaf_x += x_step;
            x
        } else {
            let child_xs: Vec<f64> = children
                .iter()
                .map(|&c| {
                    place(
                        schema,
                        c,
                        depth + 1,
                        depth_left - 1,
                        next_leaf_x,
                        nodes,
                        x_step,
                        y_step,
                    )
                })
                .collect();
            child_xs.iter().sum::<f64>() / child_xs.len() as f64
        };
        nodes.push(NodePos {
            id,
            x,
            y: depth as f64 * y_step,
        });
        x
    }

    let mut all_visible = Vec::new();
    for &root in roots {
        place(
            schema,
            root,
            0,
            max_depth,
            &mut next_leaf_x,
            &mut nodes,
            X_STEP,
            Y_STEP,
        );
        edges.extend(visible_edges(schema, root, max_depth));
        all_visible.extend(schema.subtree(root, max_depth));
    }
    let fk_edges = visible_fk_edges(schema, &all_visible);
    Layout {
        nodes,
        edges,
        fk_edges,
    }
}

/// Radial layout: the (single) root sits at the origin; depth maps to
/// radius; each subtree gets an angular wedge proportional to its leaf
/// count. Multiple roots get equal wedges of the full circle.
pub fn radial_layout(schema: &Schema, roots: &[ElementId], max_depth: usize) -> Layout {
    const R_STEP: f64 = 90.0;
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    let mut all_visible = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn place(
        schema: &Schema,
        id: ElementId,
        depth: usize,
        depth_left: usize,
        angle_start: f64,
        angle_end: f64,
        nodes: &mut Vec<NodePos>,
        r_step: f64,
    ) {
        let angle = (angle_start + angle_end) / 2.0;
        let r = depth as f64 * r_step;
        nodes.push(NodePos {
            id,
            x: r * angle.cos(),
            y: r * angle.sin(),
        });
        if depth_left == 0 {
            return;
        }
        let children = schema.children(id);
        if children.is_empty() {
            return;
        }
        let weights: Vec<usize> = children
            .iter()
            .map(|&c| leaf_count(schema, c, depth_left - 1))
            .collect();
        let total: usize = weights.iter().sum();
        let span = angle_end - angle_start;
        let mut at = angle_start;
        for (&c, &w) in children.iter().zip(&weights) {
            let slice = span * w as f64 / total as f64;
            place(
                schema,
                c,
                depth + 1,
                depth_left - 1,
                at,
                at + slice,
                nodes,
                r_step,
            );
            at += slice;
        }
    }

    let tau = std::f64::consts::TAU;
    let wedge = if roots.is_empty() {
        tau
    } else {
        tau / roots.len() as f64
    };
    for (i, &root) in roots.iter().enumerate() {
        // Offset multi-root layouts so roots don't all sit at the origin:
        // each root becomes the center of its own wedge ring at radius 0 —
        // for a single root this is the classic radial view.
        let start = i as f64 * wedge;
        place(
            schema,
            root,
            0,
            max_depth,
            start,
            start + wedge,
            &mut nodes,
            R_STEP,
        );
        edges.extend(visible_edges(schema, root, max_depth));
        all_visible.extend(schema.subtree(root, max_depth));
    }
    // Multi-root radial: push each root out so they don't overlap at the
    // origin.
    if roots.len() > 1 {
        for (i, &root) in roots.iter().enumerate() {
            let angle = (i as f64 + 0.5) * wedge;
            let shift = (40.0 * roots.len() as f64, angle);
            for n in nodes.iter_mut() {
                if n.id == root {
                    n.x += shift.0 * shift.1.cos();
                    n.y += shift.0 * shift.1.sin();
                }
            }
        }
    }
    let fk_edges = visible_fk_edges(schema, &all_visible);
    Layout {
        nodes,
        edges,
        fk_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn clinic() -> Schema {
        SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
                    .attr("dob", DataType::Date)
            })
            .entity("case", |e| e.attr("patient_id", DataType::Integer))
            .foreign_key("case", &["patient_id"], "patient", &[])
            .build_unchecked()
    }

    #[test]
    fn tree_layout_places_every_visible_node_once() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        assert_eq!(layout.nodes.len(), s.len());
        let ids: std::collections::HashSet<_> = layout.nodes.iter().map(|n| n.id).collect();
        assert_eq!(ids.len(), s.len());
    }

    #[test]
    fn tree_depth_maps_to_y() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        for n in &layout.nodes {
            let expected = s.depth(n.id) as f64 * 70.0;
            assert_eq!(n.y, expected, "node {}", s.path(n.id));
        }
    }

    #[test]
    fn tree_parents_center_over_children() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let patient = s.entities()[0];
        let kids = s.children(patient);
        let mean: f64 = kids
            .iter()
            .map(|&k| layout.position(k).unwrap().x)
            .sum::<f64>()
            / kids.len() as f64;
        assert!((layout.position(patient).unwrap().x - mean).abs() < 1e-9);
    }

    #[test]
    fn depth_cap_hides_deep_nodes() {
        let mut s = schemr_model::Schema::new("deep");
        let a = s.add_root(schemr_model::Element::entity("a"));
        let b = s.add_child(a, schemr_model::Element::group("b"));
        let c = s.add_child(b, schemr_model::Element::group("c"));
        let d = s.add_child(c, schemr_model::Element::group("d"));
        let deep = s.add_child(d, schemr_model::Element::attribute("x", DataType::Text));
        let layout = tree_layout(&s, &[a], 3);
        assert!(layout.position(d).is_some());
        assert!(layout.position(deep).is_none());
        // Drill-in: re-root at c and the deep node appears.
        let drilled = tree_layout(&s, &[c], 3);
        assert!(drilled.position(deep).is_some());
    }

    #[test]
    fn edges_connect_only_visible_nodes() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 1);
        for &(p, c) in &layout.edges {
            assert!(layout.position(p).is_some());
            assert!(layout.position(c).is_some());
        }
        assert_eq!(layout.edges.len(), 4); // 3 patient attrs + 1 case attr
    }

    #[test]
    fn fk_edges_surface_when_both_entities_visible() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        assert_eq!(layout.fk_edges.len(), 1);
        let (from, to) = layout.fk_edges[0];
        assert_eq!(s.element(from).name, "case");
        assert_eq!(s.element(to).name, "patient");
    }

    #[test]
    fn radial_root_sits_at_origin() {
        let s = clinic();
        let patient = s.entities()[0];
        let layout = radial_layout(&s, &[patient], 3);
        let origin = layout.position(patient).unwrap();
        assert!(origin.x.abs() < 1e-9 && origin.y.abs() < 1e-9);
    }

    #[test]
    fn radial_children_sit_on_the_first_ring() {
        let s = clinic();
        let patient = s.entities()[0];
        let layout = radial_layout(&s, &[patient], 3);
        for k in s.children(patient) {
            let p = layout.position(k).unwrap();
            let r = (p.x * p.x + p.y * p.y).sqrt();
            assert!((r - 90.0).abs() < 1e-9, "radius {r}");
        }
    }

    #[test]
    fn radial_children_angles_are_distinct() {
        let s = clinic();
        let patient = s.entities()[0];
        let layout = radial_layout(&s, &[patient], 3);
        let mut angles: Vec<f64> = s
            .children(patient)
            .iter()
            .map(|&k| {
                let p = layout.position(k).unwrap();
                p.y.atan2(p.x)
            })
            .collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in angles.windows(2) {
            assert!((w[1] - w[0]).abs() > 1e-6);
        }
    }

    #[test]
    fn bounds_cover_all_nodes() {
        let s = clinic();
        let layout = tree_layout(&s, &s.roots(), 3);
        let (minx, miny, maxx, maxy) = layout.bounds();
        for n in &layout.nodes {
            assert!(n.x >= minx && n.x <= maxx);
            assert!(n.y >= miny && n.y <= maxy);
        }
    }

    #[test]
    fn empty_roots_produce_empty_layout() {
        let s = clinic();
        let layout = tree_layout(&s, &[], 3);
        assert!(layout.nodes.is_empty());
        assert_eq!(layout.bounds(), (0.0, 0.0, 0.0, 0.0));
    }
}
