//! # schemr-viz
//!
//! Headless visualization for Schemr — the computational half of the
//! paper's Flex/Flare GUI.
//!
//! The paper's client renders schemas as interactive graphs: "element nodes
//! are encoded by color", layouts include "a hierarchical tree layout and a
//! radial layout", displayed depth is capped at 3 with drill-in, and the
//! server ships schemas to the client as GraphML. Everything about that
//! pipeline except the Flash event loop is reproduced here:
//!
//! * [`graphml`] — GraphML serialization of schemas, with match scores as
//!   node attributes (the transport format of Figure 5),
//! * [`layout`] — hierarchical tree and radial layout engines producing
//!   concrete coordinates,
//! * [`color`] — node color encodings: element type → hue, similarity →
//!   green ramp,
//! * [`svg`] — an SVG renderer over a layout (what a human inspects in
//!   place of the Flash GUI),
//! * [`table`] — the tabular result view ("columns for name, score,
//!   matches, entities, attributes, and description").

pub mod color;
pub mod graphml;
pub mod layout;
pub mod summary;
pub mod svg;
pub mod table;

pub use color::{ramp_color, type_color, Rgb};
pub use graphml::{from_graphml, to_graphml, GraphmlError, GraphmlOptions};
pub use layout::{radial_layout, tree_layout, Layout, NodePos};
pub use summary::{rank_entities, summarize, EntityImportance};
pub use svg::{render_svg, SvgOptions};
pub use table::format_results;
