//! Edit-distance matcher: Levenshtein similarity over normalized names.
//!
//! A second independent ensemble member ("other matchers may be used as
//! well"). Complements the n-gram matcher: edit distance is position-aware,
//! so transposed words score lower while single-character typos score
//! higher than under set-based n-gram overlap.

use schemr_model::{QueryGraph, QueryTerm, Schema};
use schemr_text::normalize::fold_case;
use schemr_text::tokenize::words;

use crate::matrix::SimilarityMatrix;
use crate::Matcher;

/// Levenshtein distance between two strings (character-wise), O(|a|·|b|)
/// time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Edit-distance matcher.
#[derive(Debug, Default)]
pub struct EditDistanceMatcher;

impl EditDistanceMatcher {
    /// New matcher.
    pub fn new() -> Self {
        EditDistanceMatcher
    }

    /// Normalized-name similarity: `1 − dist/max_len` on the joined,
    /// case-folded, delimiter-stripped forms.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let na = words(a).join(" ");
        let nb = words(b).join(" ");
        let na = fold_case(&na);
        let nb = fold_case(&nb);
        if na.is_empty() || nb.is_empty() {
            return 0.0;
        }
        let dist = levenshtein(&na, &nb);
        let max_len = na.chars().count().max(nb.chars().count());
        1.0 - dist as f64 / max_len as f64
    }
}

impl Matcher for EditDistanceMatcher {
    fn name(&self) -> &'static str {
        "edit"
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        _query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        for (col, id) in candidate.ids().enumerate() {
            let el_name = &candidate.element(id).name;
            for (row, term) in terms.iter().enumerate() {
                let s = self.similarity(&term.text, el_name);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn distance_is_symmetric() {
        for (a, b) in [("patient", "patent"), ("height", "hight"), ("a", "zzz")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn typos_score_high() {
        let m = EditDistanceMatcher::new();
        assert!(m.similarity("height", "hieght") > 0.6);
        assert!(m.similarity("patient", "patiant") > 0.8);
    }

    #[test]
    fn case_and_delimiters_are_normalized_away() {
        let m = EditDistanceMatcher::new();
        assert!((m.similarity("FirstName", "first_name") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unrelated_names_score_low() {
        let m = EditDistanceMatcher::new();
        assert!(m.similarity("patient", "invoice") < 0.4);
    }

    #[test]
    fn empty_scores_zero() {
        let m = EditDistanceMatcher::new();
        assert_eq!(m.similarity("", "x"), 0.0);
        assert_eq!(m.similarity("_-_", "x"), 0.0);
    }
}
