//! Learning the matcher weighting scheme.
//!
//! "As Schemr is utilized in practice, we can record search histories to
//! create a training set of search-term to schema-fragment matches. With
//! such a training set, we may then determine an appropriate weighting
//! scheme. For instance, Madhavan et al use a meta-learner to compute a
//! logistic regression over a training set of schemas."
//!
//! This module is that meta-learner: a from-scratch logistic regression
//! over per-matcher similarity features. Each training example is one
//! (query term, schema element) pair with one feature per matcher (its
//! similarity score) and a binary relevance label. The fitted positive
//! coefficients become ensemble weights.

/// One labeled (query term, schema element) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingExample {
    /// Per-matcher similarity scores, in ensemble registration order.
    pub features: Vec<f64>,
    /// Whether the pair is a true match.
    pub label: bool,
}

/// Fitted model: `P(match) = σ(bias + w·x)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedModel {
    /// Intercept.
    pub bias: f64,
    /// Per-matcher coefficients.
    pub weights: Vec<f64>,
}

impl LearnedModel {
    /// Predicted match probability for a feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.weights.len());
        let z: f64 = self.bias
            + self
                .weights
                .iter()
                .zip(features)
                .map(|(w, x)| w * x)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Convert coefficients into ensemble weights: negatives clamp to
    /// zero; an all-nonpositive fit degrades to uniform weights (the
    /// paper's starting point).
    pub fn ensemble_weights(&self) -> Vec<f64> {
        let clamped: Vec<f64> = self.weights.iter().map(|w| w.max(0.0)).collect();
        if clamped.iter().all(|&w| w == 0.0) {
            vec![1.0; self.weights.len()]
        } else {
            clamped
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Batch-gradient-descent logistic regression trainer.
#[derive(Debug, Clone)]
pub struct WeightLearner {
    /// Gradient step size.
    pub learning_rate: f64,
    /// Full passes over the training set.
    pub epochs: usize,
    /// L2 regularization strength (applied to weights, not the bias).
    pub l2: f64,
}

impl Default for WeightLearner {
    fn default() -> Self {
        WeightLearner {
            learning_rate: 0.5,
            epochs: 500,
            l2: 1e-3,
        }
    }
}

impl WeightLearner {
    /// Fit a model. Returns `None` on an empty or degenerate training set
    /// (no features, or single-class labels — nothing to learn from).
    pub fn fit(&self, examples: &[TrainingExample]) -> Option<LearnedModel> {
        let n_features = examples.first()?.features.len();
        if n_features == 0 {
            return None;
        }
        debug_assert!(examples.iter().all(|e| e.features.len() == n_features));
        let positives = examples.iter().filter(|e| e.label).count();
        if positives == 0 || positives == examples.len() {
            return None;
        }
        let n = examples.len() as f64;
        let mut bias = 0.0f64;
        let mut weights = vec![0.0f64; n_features];
        for _ in 0..self.epochs {
            let mut grad_bias = 0.0f64;
            let mut grad = vec![0.0f64; n_features];
            for ex in examples {
                let z: f64 = bias
                    + weights
                        .iter()
                        .zip(&ex.features)
                        .map(|(w, x)| w * x)
                        .sum::<f64>();
                let err = f64::from(ex.label as u8) - sigmoid(z);
                grad_bias += err;
                for (g, x) in grad.iter_mut().zip(&ex.features) {
                    *g += err * x;
                }
            }
            bias += self.learning_rate * grad_bias / n;
            for (w, g) in weights.iter_mut().zip(&grad) {
                *w += self.learning_rate * (g / n - self.l2 * *w);
            }
        }
        Some(LearnedModel { bias, weights })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Training set where feature 0 is perfectly informative and feature 1
    /// is noise.
    fn informative_vs_noise() -> Vec<TrainingExample> {
        let mut out = Vec::new();
        for i in 0..40 {
            let label = i % 2 == 0;
            let informative = if label { 0.9 } else { 0.1 };
            let noise = [0.3, 0.8, 0.5, 0.6][i % 4];
            out.push(TrainingExample {
                features: vec![informative, noise],
                label,
            });
        }
        out
    }

    #[test]
    fn learns_to_favor_the_informative_matcher() {
        let model = WeightLearner::default()
            .fit(&informative_vs_noise())
            .unwrap();
        assert!(
            model.weights[0] > model.weights[1] + 1.0,
            "weights: {:?}",
            model.weights
        );
        let ew = model.ensemble_weights();
        assert!(ew[0] > ew[1]);
    }

    #[test]
    fn predictions_separate_the_classes() {
        let data = informative_vs_noise();
        let model = WeightLearner::default().fit(&data).unwrap();
        let pos = model.predict(&[0.9, 0.5]);
        let neg = model.predict(&[0.1, 0.5]);
        assert!(pos > 0.8, "positive prediction {pos}");
        assert!(neg < 0.2, "negative prediction {neg}");
    }

    #[test]
    fn degenerate_training_sets_return_none() {
        let learner = WeightLearner::default();
        assert!(learner.fit(&[]).is_none());
        let all_pos: Vec<_> = (0..5)
            .map(|_| TrainingExample {
                features: vec![0.5],
                label: true,
            })
            .collect();
        assert!(learner.fit(&all_pos).is_none());
        let no_features = vec![TrainingExample {
            features: vec![],
            label: true,
        }];
        assert!(learner.fit(&no_features).is_none());
    }

    #[test]
    fn ensemble_weights_clamp_negative_coefficients() {
        let model = LearnedModel {
            bias: 0.0,
            weights: vec![2.0, -1.0],
        };
        assert_eq!(model.ensemble_weights(), vec![2.0, 0.0]);
        let all_neg = LearnedModel {
            bias: 0.0,
            weights: vec![-2.0, -1.0],
        };
        assert_eq!(all_neg.ensemble_weights(), vec![1.0, 1.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_centered() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(50.0) > 0.999);
        assert!(sigmoid(-50.0) < 0.001);
    }
}
