//! The name matcher: normalization + all-n-gram overlap.
//!
//! "A name matcher normalizes terms and computes n-gram overlap between
//! query terms and terms in the indexed schemas. Each schema element in the
//! query is parsed into a set of all possible n-grams, ranging in length
//! from one character to the length of the word. … We found this matcher to
//! be particularly helpful for properly ranking schemas containing
//! abbreviated terms, alternate grammatical forms, and delimiter characters
//! not in the original query."

use std::collections::HashSet;

use schemr_model::{QueryGraph, QueryTerm, Schema};
use schemr_text::ngram::{dice, overlap};
use schemr_text::{Analyzer, GramSet};

use crate::matrix::SimilarityMatrix;
use crate::prepare::{PreparedQuery, PreparedSchema};
use crate::Matcher;

/// Name matcher configuration.
#[derive(Debug, Clone)]
pub struct NameMatcherConfig {
    /// Mix between Dice (structure-balanced) and overlap (containment-
    /// friendly) coefficients: `score = (1-α)·dice + α·overlap`.
    /// α > 0 is what makes abbreviations (`pat` ⊂ `patient`) score well.
    pub overlap_alpha: f64,
    /// Names are multi-word after tokenization; word-level best-alignment
    /// scores are averaged over the side with fewer words when true
    /// (`max`-style), over the query side when false.
    pub symmetric: bool,
}

impl Default for NameMatcherConfig {
    fn default() -> Self {
        NameMatcherConfig {
            overlap_alpha: 0.4,
            symmetric: true,
        }
    }
}

/// The all-n-gram name matcher.
pub struct NameMatcher {
    analyzer: Analyzer,
    config: NameMatcherConfig,
}

impl Default for NameMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl NameMatcher {
    /// Name matcher with the standard name-analysis pipeline.
    pub fn new() -> Self {
        NameMatcher {
            analyzer: Analyzer::for_names(),
            config: NameMatcherConfig::default(),
        }
    }

    /// Custom analyzer/config (ablations use [`Analyzer::plain`]).
    pub fn with(analyzer: Analyzer, config: NameMatcherConfig) -> Self {
        NameMatcher { analyzer, config }
    }

    /// Decompose a raw name into per-word all-n-gram sets.
    fn gram_sets(&self, name: &str) -> Vec<HashSet<String>> {
        self.analyzer
            .analyze(name)
            .iter()
            .map(|w| schemr_text::ngram::all_ngrams(w))
            .collect()
    }

    /// Similarity of two word-gram-set lists: greedy best alignment, each
    /// word paired with its best counterpart, averaged.
    fn name_similarity(&self, a: &[HashSet<String>], b: &[HashSet<String>]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let word_pair = |x: &HashSet<String>, y: &HashSet<String>| -> f64 {
            let alpha = self.config.overlap_alpha;
            (1.0 - alpha) * dice(x, y) + alpha * overlap(x, y)
        };
        let side = |from: &[HashSet<String>], to: &[HashSet<String>]| -> f64 {
            let total: f64 = from
                .iter()
                .map(|x| to.iter().map(|y| word_pair(x, y)).fold(0.0, f64::max))
                .sum();
            total / from.len() as f64
        };
        if self.config.symmetric {
            // Average the two directions so extra words on either side
            // dilute equally.
            (side(a, b) + side(b, a)) / 2.0
        } else {
            side(a, b)
        }
    }

    /// Public scalar entry point: similarity of two raw names in `[0,1]`.
    /// Used directly by experiment E3 and by the context matcher's
    /// neighbor comparison.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.name_similarity(&self.gram_sets(a), &self.gram_sets(b))
    }

    /// Decompose a raw name into per-word hashed gram signatures — the
    /// prepared counterpart of [`NameMatcher::gram_sets`].
    fn signatures(&self, name: &str) -> Vec<GramSet> {
        self.analyzer
            .analyze(name)
            .iter()
            .map(|w| GramSet::all_grams(w))
            .collect()
    }

    /// `(1-α)·dice + α·overlap` over hashed signatures — arithmetic-
    /// identical to the string-set `word_pair` in
    /// [`NameMatcher::name_similarity`].
    fn word_pair_prepared(&self, x: &GramSet, y: &GramSet) -> f64 {
        let alpha = self.config.overlap_alpha;
        (1.0 - alpha) * x.dice(y) + alpha * x.overlap(y)
    }

    /// An upper bound on [`NameMatcher::word_pair_prepared`] from set
    /// sizes alone: the intersection can be at most `min(|x|, |y|)`, so
    /// `dice ≤ 2·min/(|x|+|y|)` and `overlap ≤ 1`. Every operation is
    /// monotone under IEEE rounding, so the bound is safe — a pair whose
    /// bound does not exceed the current best cannot change the maximum.
    fn word_pair_upper_bound(&self, x: &GramSet, y: &GramSet) -> f64 {
        if x.is_empty() || y.is_empty() {
            return 0.0; // both coefficients are 0 for an empty side
        }
        let alpha = self.config.overlap_alpha;
        let min = x.len().min(y.len());
        let dice_bound = 2.0 * min as f64 / (x.len() + y.len()) as f64;
        (1.0 - alpha) * dice_bound + alpha
    }

    /// Prepared name similarity: greedy best word alignment over hashed
    /// signatures, with size-ratio pruning of word pairs that cannot beat
    /// the running best. Bitwise-identical to
    /// [`NameMatcher::name_similarity`] on the same analyzed words.
    fn name_similarity_prepared(&self, a: &[GramSet], b: &[GramSet]) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let side = |from: &[GramSet], to: &[GramSet]| -> f64 {
            let mut total = 0.0;
            for x in from {
                let mut best = 0.0f64;
                for y in to {
                    if self.word_pair_upper_bound(x, y) <= best {
                        continue;
                    }
                    best = best.max(self.word_pair_prepared(x, y));
                }
                total += best;
            }
            total / from.len() as f64
        };
        if self.config.symmetric {
            (side(a, b) + side(b, a)) / 2.0
        } else {
            side(a, b)
        }
    }
}

impl Matcher for NameMatcher {
    fn name(&self) -> &'static str {
        "name"
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        _query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        // Query-side gram sets are built once per call; the per-search
        // hoist lives in `prepare_query`, which the engine's prepared
        // path uses so this runs once per search instead of once per
        // candidate.
        let term_grams: Vec<Vec<HashSet<String>>> =
            terms.iter().map(|t| self.gram_sets(&t.text)).collect();
        for (col, id) in candidate.ids().enumerate() {
            let el_grams = self.gram_sets(&candidate.element(id).name);
            for (row, tg) in term_grams.iter().enumerate() {
                let s = self.name_similarity(tg, &el_grams);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        m
    }

    fn prepare(&self, schema: &Schema) -> PreparedSchema {
        PreparedSchema {
            name_grams: Some(
                schema
                    .ids()
                    .map(|id| self.signatures(&schema.element(id).name))
                    .collect(),
            ),
            ..PreparedSchema::default()
        }
    }

    fn prepare_query(&self, terms: &[QueryTerm], _query: &QueryGraph) -> PreparedQuery {
        PreparedQuery {
            term_grams: Some(terms.iter().map(|t| self.signatures(&t.text)).collect()),
            ..PreparedQuery::default()
        }
    }

    fn score_prepared(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        _query: &QueryGraph,
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        // Query grams: from the per-search artifact when present, else
        // built here — still once per candidate at worst, and hashed.
        let built_terms: Vec<Vec<GramSet>>;
        let term_grams: &[Vec<GramSet>] = match &prepared_query.term_grams {
            Some(tg) if tg.len() == terms.len() => tg,
            _ => {
                built_terms = terms.iter().map(|t| self.signatures(&t.text)).collect();
                &built_terms
            }
        };
        // Element grams: from the cached candidate artifact when present
        // (the warm path — zero analysis, zero allocation), else built
        // on the fly (the non-prepared fallback, which still benefits
        // from the hoisted query side).
        let built_elements: Vec<Vec<GramSet>>;
        let el_grams: &[Vec<GramSet>] = match &prepared.name_grams {
            Some(eg) if eg.len() == candidate.len() => eg,
            _ => {
                built_elements = candidate
                    .ids()
                    .map(|id| self.signatures(&candidate.element(id).name))
                    .collect();
                &built_elements
            }
        };
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        for (col, eg) in el_grams.iter().enumerate() {
            for (row, tg) in term_grams.iter().enumerate() {
                let s = self.name_similarity_prepared(tg, eg);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        m
    }

    /// Matcher-level bound: every matrix cell is an average of per-word
    /// bests, so no cell exceeds the largest
    /// [`NameMatcher::word_pair_upper_bound`] over all (term word,
    /// element word) pairs — O(1) per pair, set sizes only. Falls back to
    /// the trivial `1.0` when either artifact side is missing (bounds
    /// must stay cheap; they never build artifacts).
    fn score_upper_bound(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> f64 {
        let (Some(term_grams), Some(el_grams)) = (&prepared_query.term_grams, &prepared.name_grams)
        else {
            return 1.0;
        };
        if term_grams.len() != terms.len() || el_grams.len() != candidate.len() {
            return 1.0;
        }
        let mut best = 0.0f64;
        for tg in term_grams {
            for eg in el_grams {
                for x in tg {
                    for y in eg {
                        best = best.max(self.word_pair_upper_bound(x, y));
                        if best >= 1.0 {
                            return best;
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, ElementKind, SchemaBuilder};

    fn terms(words: &[&str]) -> Vec<QueryTerm> {
        words
            .iter()
            .map(|w| QueryTerm {
                text: w.to_string(),
                fragment: None,
                element: None,
                kind: ElementKind::Attribute,
            })
            .collect()
    }

    #[test]
    fn identical_names_score_one() {
        let m = NameMatcher::new();
        assert!((m.similarity("patient", "patient") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_names_score_near_zero() {
        let m = NameMatcher::new();
        assert!(m.similarity("patient", "xyzzy") < 0.2);
    }

    #[test]
    fn abbreviations_score_high() {
        let m = NameMatcher::new();
        // Dictionary expansion makes pat_ht ≈ patient height …
        assert!(m.similarity("pat_ht", "patient_height") > 0.9);
        // … and raw truncations still score well through n-gram overlap.
        let plain = NameMatcher::with(Analyzer::plain(), NameMatcherConfig::default());
        let s = plain.similarity("descr", "description");
        assert!(s > 0.5, "truncation should score well, got {s}");
    }

    #[test]
    fn delimiters_do_not_matter() {
        let m = NameMatcher::new();
        let a = m.similarity("first_name", "FirstName");
        let b = m.similarity("first-name", "first name");
        assert!((a - 1.0).abs() < 1e-9, "{a}");
        assert!((b - 1.0).abs() < 1e-9, "{b}");
    }

    #[test]
    fn grammatical_forms_conflate_via_stemming() {
        let m = NameMatcher::new();
        assert!(m.similarity("diagnoses", "diagnosis") > 0.8);
        assert!(m.similarity("medications", "medication") > 0.9);
    }

    #[test]
    fn similarity_is_symmetric() {
        let m = NameMatcher::new();
        for (a, b) in [("patient", "pat"), ("first_name", "fname"), ("x", "xyz")] {
            assert!((m.similarity(a, b) - m.similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_rows_are_terms_and_cols_are_elements() {
        let schema = SchemaBuilder::new("s")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .build_unchecked();
        let matcher = NameMatcher::new();
        let q = QueryGraph::new();
        let m = matcher.score(&terms(&["height", "nonsense"]), &q, &schema);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        // Row 0 = "height" matches element 1 (patient.height) strongly.
        assert!(m.get(0, 1) > 0.9);
        assert!(m.get(0, 0) < 0.5);
        assert!(m.row_max(1) < 0.35);
    }

    #[test]
    fn multiword_names_align_per_word() {
        let m = NameMatcher::new();
        let s = m.similarity("patient_height_cm", "height");
        // One of three words matches perfectly; symmetric averaging keeps a
        // meaningful but diluted score.
        assert!(s > 0.3 && s < 0.9, "{s}");
    }

    #[test]
    fn empty_names_score_zero() {
        let m = NameMatcher::new();
        assert_eq!(m.similarity("", "patient"), 0.0);
        assert_eq!(m.similarity("__", "--"), 0.0);
    }

    #[test]
    fn prepared_matrix_is_bitwise_equal_to_naive() {
        let schema = SchemaBuilder::new("s")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("patient_height_cm", DataType::Real)
                    .attr("descr", DataType::Text)
            })
            .entity("doctor", |e| e.attr("specialty", DataType::Text))
            .build_unchecked();
        let matcher = NameMatcher::new();
        let q = QueryGraph::new();
        let ts = terms(&["pat_ht", "height", "description", "xyzzy"]);
        let naive = matcher.score(&ts, &q, &schema);
        let pq = matcher.prepare_query(&ts, &q);
        let ps = matcher.prepare(&schema);
        let prepared = matcher.score_prepared(&pq, &ts, &q, &ps, &schema);
        for r in 0..naive.rows() {
            for c in 0..naive.cols() {
                assert_eq!(
                    prepared.get(r, c).to_bits(),
                    naive.get(r, c).to_bits(),
                    "cell ({r},{c}): prepared {} vs naive {}",
                    prepared.get(r, c),
                    naive.get(r, c)
                );
            }
        }
    }

    #[test]
    fn score_prepared_falls_back_without_artifacts() {
        let schema = SchemaBuilder::new("s")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .build_unchecked();
        let matcher = NameMatcher::new();
        let q = QueryGraph::new();
        let ts = terms(&["height"]);
        let naive = matcher.score(&ts, &q, &schema);
        // Empty artifacts on both sides: the hashed fallback must still
        // agree bitwise.
        let prepared = matcher.score_prepared(
            &crate::prepare::PreparedQuery::default(),
            &ts,
            &q,
            &crate::prepare::PreparedSchema::default(),
            &schema,
        );
        for r in 0..naive.rows() {
            for c in 0..naive.cols() {
                assert_eq!(prepared.get(r, c).to_bits(), naive.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn matcher_bound_dominates_matrix_max() {
        let schema = SchemaBuilder::new("s")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("patient_height_cm", DataType::Real)
            })
            .entity("doctor", |e| e.attr("specialty", DataType::Text))
            .build_unchecked();
        let matcher = NameMatcher::new();
        let q = QueryGraph::new();
        let ts = terms(&["pat_ht", "height", "xyzzy"]);
        let pq = matcher.prepare_query(&ts, &q);
        let ps = matcher.prepare(&schema);
        let bound = matcher.score_upper_bound(&pq, &ts, &ps, &schema);
        let max = matcher
            .score_prepared(&pq, &ts, &q, &ps, &schema)
            .max_value();
        assert!(max <= bound, "matrix max {max} exceeds bound {bound}");
        // Missing artifacts degrade to the trivially safe bound.
        let trivial = matcher.score_upper_bound(
            &crate::prepare::PreparedQuery::default(),
            &ts,
            &crate::prepare::PreparedSchema::default(),
            &schema,
        );
        assert_eq!(trivial, 1.0);
    }

    #[test]
    fn upper_bound_dominates_word_pair_score() {
        let m = NameMatcher::new();
        let words = ["patient", "pat", "height", "ht", "x", "patient_height"];
        for a in words {
            for b in words {
                let (ga, gb) = (GramSet::all_grams(a), GramSet::all_grams(b));
                let score = m.word_pair_prepared(&ga, &gb);
                let bound = m.word_pair_upper_bound(&ga, &gb);
                assert!(score <= bound, "{a}×{b}: score {score} > bound {bound}");
            }
        }
    }
}
