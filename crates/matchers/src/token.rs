//! Exact-token matcher: the baseline the n-gram name matcher beats.
//!
//! Tokenizes and case-folds both names, then scores the Jaccard overlap of
//! the *exact* token sets. No n-grams, no stemming, no abbreviation
//! expansion — `pat_ht` and `patient_height` score 0 here. Experiment E3
//! contrasts this baseline with [`crate::NameMatcher`] under the paper's
//! three perturbation classes.

use std::collections::HashSet;

use schemr_model::{QueryGraph, QueryTerm, Schema};
use schemr_text::{Analyzer, GramSet};

use crate::matrix::SimilarityMatrix;
use crate::prepare::{PreparedQuery, PreparedSchema};
use crate::Matcher;

/// Exact normalized-token Jaccard matcher.
pub struct TokenMatcher {
    analyzer: Analyzer,
}

impl Default for TokenMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenMatcher {
    /// Baseline matcher: tokenize + case-fold only.
    pub fn new() -> Self {
        TokenMatcher {
            analyzer: Analyzer::plain(),
        }
    }

    fn tokens(&self, name: &str) -> HashSet<String> {
        self.analyzer.analyze(name).into_iter().collect()
    }

    /// Hashed exact-token signature: one 64-bit id per distinct analyzed
    /// token. Set cardinalities and intersection counts match the string
    /// sets (absent 64-bit hash collisions), so the Jaccard score is
    /// bitwise-identical to the unprepared path.
    fn signature(&self, name: &str) -> GramSet {
        let tokens = self.analyzer.analyze(name);
        GramSet::of_terms(tokens.iter().map(String::as_str))
    }

    /// Jaccard similarity of exact token sets.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = self.tokens(a);
        let tb = self.tokens(b);
        if ta.is_empty() && tb.is_empty() {
            return 0.0;
        }
        let inter = ta.intersection(&tb).count();
        let union = ta.len() + tb.len() - inter;
        inter as f64 / union as f64
    }
}

impl Matcher for TokenMatcher {
    fn name(&self) -> &'static str {
        "token"
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        _query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        let term_tokens: Vec<HashSet<String>> =
            terms.iter().map(|t| self.tokens(&t.text)).collect();
        for (col, id) in candidate.ids().enumerate() {
            let el = self.tokens(&candidate.element(id).name);
            for (row, tt) in term_tokens.iter().enumerate() {
                if tt.is_empty() || el.is_empty() {
                    continue;
                }
                let inter = tt.intersection(&el).count();
                if inter > 0 {
                    let union = tt.len() + el.len() - inter;
                    m.set(row, col, inter as f64 / union as f64);
                }
            }
        }
        m
    }

    fn prepare(&self, schema: &Schema) -> PreparedSchema {
        PreparedSchema {
            tokens: Some(
                schema
                    .ids()
                    .map(|id| self.signature(&schema.element(id).name))
                    .collect(),
            ),
            ..PreparedSchema::default()
        }
    }

    fn prepare_query(&self, terms: &[QueryTerm], _query: &QueryGraph) -> PreparedQuery {
        PreparedQuery {
            term_tokens: Some(terms.iter().map(|t| self.signature(&t.text)).collect()),
            ..PreparedQuery::default()
        }
    }

    fn score_prepared(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        _query: &QueryGraph,
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        let local_terms;
        let term_tokens: &[GramSet] = match &prepared_query.term_tokens {
            Some(tt) if tt.len() == terms.len() => tt,
            _ => {
                local_terms = terms
                    .iter()
                    .map(|t| self.signature(&t.text))
                    .collect::<Vec<_>>();
                &local_terms
            }
        };
        let local_elements;
        let element_tokens: &[GramSet] = match &prepared.tokens {
            Some(et) if et.len() == candidate.len() => et,
            _ => {
                local_elements = candidate
                    .ids()
                    .map(|id| self.signature(&candidate.element(id).name))
                    .collect::<Vec<_>>();
                &local_elements
            }
        };
        for (col, el) in element_tokens.iter().enumerate() {
            for (row, tt) in term_tokens.iter().enumerate() {
                if tt.is_empty() || el.is_empty() {
                    continue;
                }
                let inter = tt.intersection_size(el);
                if inter > 0 {
                    let union = tt.len() + el.len() - inter;
                    m.set(row, col, inter as f64 / union as f64);
                }
            }
        }
        m
    }

    /// Matcher-level bound: Jaccard with `inter = min(|a|, |b|)` is
    /// `min/max`, the largest value any cell can reach for its pair of
    /// token-set sizes — maximized over all pairs. Missing artifacts fall
    /// back to the trivial `1.0`.
    fn score_upper_bound(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> f64 {
        let (Some(term_tokens), Some(element_tokens)) =
            (&prepared_query.term_tokens, &prepared.tokens)
        else {
            return 1.0;
        };
        if term_tokens.len() != terms.len() || element_tokens.len() != candidate.len() {
            return 1.0;
        }
        let mut best = 0.0f64;
        for tt in term_tokens {
            if tt.is_empty() {
                continue;
            }
            for el in element_tokens {
                if el.is_empty() {
                    continue;
                }
                let min = tt.len().min(el.len());
                // Same ops as the cell with the largest possible
                // intersection, so the domination is exact under IEEE
                // rounding.
                let bound = min as f64 / (tt.len() + el.len() - min) as f64;
                best = best.max(bound);
                if best >= 1.0 {
                    return best;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_score_one_regardless_of_delimiters() {
        let m = TokenMatcher::new();
        assert!((m.similarity("first_name", "FirstName") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn abbreviations_score_zero_here() {
        let m = TokenMatcher::new();
        assert_eq!(m.similarity("pat", "patient"), 0.0);
        assert_eq!(m.similarity("descr", "description"), 0.0);
    }

    #[test]
    fn grammatical_variants_score_zero_here() {
        let m = TokenMatcher::new();
        assert_eq!(m.similarity("diagnoses", "diagnosis"), 0.0);
    }

    #[test]
    fn partial_token_overlap_is_jaccard() {
        let m = TokenMatcher::new();
        // {patient, height} vs {patient, gender}: 1 / 3.
        assert!((m.similarity("patient_height", "patient_gender") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn matcher_bound_dominates_matrix_max() {
        use schemr_model::{DataType, QueryGraph, SchemaBuilder};
        let mut q = QueryGraph::new();
        q.add_keyword("patient height");
        q.add_keyword("visit date");
        let terms = q.terms();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| {
                e.attr("patient_height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let matcher = TokenMatcher::new();
        let pq = matcher.prepare_query(&terms, &q);
        let ps = matcher.prepare(&candidate);
        let bound = matcher.score_upper_bound(&pq, &terms, &ps, &candidate);
        let max = matcher
            .score_prepared(&pq, &terms, &q, &ps, &candidate)
            .max_value();
        assert!(max <= bound, "matrix max {max} exceeds bound {bound}");
        let trivial = matcher.score_upper_bound(
            &crate::prepare::PreparedQuery::default(),
            &terms,
            &crate::prepare::PreparedSchema::default(),
            &candidate,
        );
        assert_eq!(trivial, 1.0);
    }

    #[test]
    fn prepared_matrix_is_bitwise_equal_to_naive() {
        use schemr_model::{DataType, QueryGraph, SchemaBuilder};
        let mut q = QueryGraph::new();
        q.add_keyword("patient height");
        q.add_keyword("visit");
        let terms = q.terms();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| {
                e.attr("patient_height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("visit", |e| e.attr("visit_date", DataType::Date))
            .build_unchecked();
        let matcher = TokenMatcher::new();
        let naive = matcher.score(&terms, &q, &candidate);
        let pq = matcher.prepare_query(&terms, &q);
        let ps = matcher.prepare(&candidate);
        let prepared = matcher.score_prepared(&pq, &terms, &q, &ps, &candidate);
        // And the fallback build (empty artifacts) must agree too.
        let fallback = matcher.score_prepared(
            &crate::prepare::PreparedQuery::default(),
            &terms,
            &q,
            &crate::prepare::PreparedSchema::default(),
            &candidate,
        );
        for r in 0..naive.rows() {
            for c in 0..naive.cols() {
                assert_eq!(prepared.get(r, c).to_bits(), naive.get(r, c).to_bits());
                assert_eq!(fallback.get(r, c).to_bits(), naive.get(r, c).to_bits());
            }
        }
    }
}
