//! The matcher ensemble: weighted combination of similarity matrices.
//!
//! "For every candidate schema, the similarity matrices of the different
//! matchers are combined into a single matrix containing total similarity
//! scores. We combine the scores from each matcher with a weighting scheme,
//! which is initially uniform."

use std::time::{Duration, Instant};

use schemr_model::{QueryGraph, QueryTerm, Schema};

use crate::context::ContextMatcher;
use crate::matrix::SimilarityMatrix;
use crate::name::NameMatcher;
use crate::prepare::{EnsembleQuery, PreparedCandidate};
use crate::Matcher;

/// A weighted set of matchers producing one combined similarity matrix per
/// candidate.
pub struct Ensemble {
    matchers: Vec<(Box<dyn Matcher>, f64)>,
}

/// The output of one ensemble pass over a candidate.
pub struct EnsembleRun {
    /// The weighted combined similarity matrix.
    pub matrix: SimilarityMatrix,
    /// Per-matcher wall time, in registration order.
    pub timings: Vec<Duration>,
    /// Per-matcher strength ([`SimilarityMatrix::mean_row_max`] of each
    /// matcher's individual matrix), in registration order. Empty unless
    /// requested — computing it costs one extra matrix scan per matcher,
    /// so callers without an event log skip it.
    pub strengths: Vec<f64>,
}

/// The output of a bounded ensemble pass
/// ([`Ensemble::run_prepared_bounded`]): either a full scored run, or
/// proof that the candidate's combined matrix cannot contain a cell
/// reaching the caller's floor, with the remaining matchers skipped.
pub enum BoundedRun {
    /// All matchers ran; identical to [`Ensemble::run_prepared`] output.
    Scored(EnsembleRun),
    /// The candidate was proven unable to reach the floor. No combined
    /// matrix exists; every cell it would contain is `< theta`, so the
    /// tightness score would have no matched elements.
    Pruned {
        /// Per-matcher wall time in registration order — skipped
        /// matchers report [`Duration::ZERO`], so the engine's
        /// per-matcher wall aggregation stays meaningful.
        timings: Vec<Duration>,
        /// How many trailing matchers were never evaluated.
        skipped: usize,
    },
}

/// Relative slack applied to upper bounds before comparing against the
/// floor: per-cell bounds dominate exactly, but the averaging inside the
/// name matcher and the weighted combination accumulate a few ulps of
/// IEEE rounding. 1e-9 is ~10⁶ × that accumulation and far below any
/// score gap that matters for pruning effectiveness.
const BOUND_SLACK: f64 = 1e-9;

impl Ensemble {
    /// An empty ensemble. Add matchers with [`Ensemble::push`].
    pub fn empty() -> Self {
        Ensemble {
            matchers: Vec::new(),
        }
    }

    /// The paper's default ensemble: name + context matchers, uniform
    /// weights.
    pub fn standard() -> Self {
        let mut e = Ensemble::empty();
        e.push(Box::new(NameMatcher::new()), 1.0);
        e.push(Box::new(ContextMatcher::new()), 1.0);
        e
    }

    /// Add a matcher with a weight (negative weights are treated as zero at
    /// combination time).
    pub fn push(&mut self, matcher: Box<dyn Matcher>, weight: f64) {
        self.matchers.push((matcher, weight));
    }

    /// Number of matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// True when no matchers are registered.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }

    /// Matcher names in registration order.
    pub fn matcher_names(&self) -> Vec<&'static str> {
        self.matchers.iter().map(|(m, _)| m.name()).collect()
    }

    /// Current weights in registration order.
    pub fn weights(&self) -> Vec<f64> {
        self.matchers.iter().map(|(_, w)| *w).collect()
    }

    /// Replace the weights (e.g. with learned ones).
    ///
    /// # Panics
    /// Panics if `weights.len()` differs from the matcher count.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.matchers.len(), "one weight per matcher");
        for ((_, w), &nw) in self.matchers.iter_mut().zip(weights) {
            *w = nw;
        }
    }

    /// Run every matcher and combine the matrices with the current
    /// weights. Matchers whose [`Matcher::abstains`] is true only
    /// participate in cells where they produced a nonzero score.
    pub fn combined(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        self.combined_traced(terms, query, candidate).0
    }

    /// Like [`Ensemble::combined`], but also returns each matcher's wall
    /// time (in registration order — align with
    /// [`Ensemble::matcher_names`]). The engine aggregates these per
    /// search to expose the name-vs-context cost split.
    pub fn combined_traced(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> (SimilarityMatrix, Vec<Duration>) {
        let run = self.run(terms, query, candidate, false);
        (run.matrix, run.timings)
    }

    /// The full instrumented pass: combined matrix, per-matcher wall
    /// times, and (when `with_strengths`) each matcher's
    /// [`SimilarityMatrix::mean_row_max`] strength for the event log.
    pub fn run(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
        with_strengths: bool,
    ) -> EnsembleRun {
        let mut timings = Vec::with_capacity(self.matchers.len());
        let matrices: Vec<(SimilarityMatrix, f64, bool)> = self
            .matchers
            .iter()
            .map(|(m, w)| {
                let start = Instant::now();
                let scored = m.score(terms, query, candidate);
                timings.push(start.elapsed());
                (scored, *w, m.abstains())
            })
            .collect();
        let strengths = if with_strengths {
            matrices.iter().map(|(m, _, _)| m.mean_row_max()).collect()
        } else {
            Vec::new()
        };
        if matrices.is_empty() {
            return EnsembleRun {
                matrix: SimilarityMatrix::zeros(terms.len(), candidate.len()),
                timings,
                strengths,
            };
        }
        let refs: Vec<(&SimilarityMatrix, f64, bool)> =
            matrices.iter().map(|(m, w, a)| (m, *w, *a)).collect();
        EnsembleRun {
            matrix: SimilarityMatrix::combine_with_abstention(&refs),
            timings,
            strengths,
        }
    }

    /// Build the query-side prepared artifacts for every matcher, once
    /// per search.
    pub fn prepare_query(&self, terms: &[QueryTerm], query: &QueryGraph) -> EnsembleQuery {
        let refs: Vec<&dyn Matcher> = self.matchers.iter().map(|(m, _)| m.as_ref()).collect();
        EnsembleQuery::build(&refs, terms, query)
    }

    /// Build the candidate-side prepared artifacts for every matcher.
    /// The engine caches the result per (schema id, repository revision).
    pub fn prepare(&self, schema: &Schema) -> PreparedCandidate {
        let refs: Vec<&dyn Matcher> = self.matchers.iter().map(|(m, _)| m.as_ref()).collect();
        PreparedCandidate::build(&refs, schema)
    }

    /// Like [`Ensemble::run`], but scoring through each matcher's
    /// prepared path. The combined matrix is bitwise-identical to the
    /// unprepared [`Ensemble::run`]. If either artifact bundle was built
    /// for a different matcher set (length mismatch), the whole pass
    /// falls back to the unprepared path.
    pub fn run_prepared(
        &self,
        equery: &EnsembleQuery,
        terms: &[QueryTerm],
        query: &QueryGraph,
        pcand: &PreparedCandidate,
        candidate: &Schema,
        with_strengths: bool,
    ) -> EnsembleRun {
        if equery.per_matcher.len() != self.matchers.len()
            || pcand.per_matcher.len() != self.matchers.len()
        {
            return self.run(terms, query, candidate, with_strengths);
        }
        let mut timings = Vec::with_capacity(self.matchers.len());
        let matrices: Vec<(SimilarityMatrix, f64, bool)> = self
            .matchers
            .iter()
            .zip(equery.per_matcher.iter().zip(pcand.per_matcher.iter()))
            .map(|((m, w), (pq, ps))| {
                let start = Instant::now();
                let scored = m.score_prepared(pq, terms, query, ps, candidate);
                timings.push(start.elapsed());
                (scored, *w, m.abstains())
            })
            .collect();
        let strengths = if with_strengths {
            matrices.iter().map(|(m, _, _)| m.mean_row_max()).collect()
        } else {
            Vec::new()
        };
        if matrices.is_empty() {
            return EnsembleRun {
                matrix: SimilarityMatrix::zeros(terms.len(), candidate.len()),
                timings,
                strengths,
            };
        }
        let refs: Vec<(&SimilarityMatrix, f64, bool)> =
            matrices.iter().map(|(m, w, a)| (m, *w, *a)).collect();
        EnsembleRun {
            matrix: SimilarityMatrix::combine_with_abstention(&refs),
            timings,
            strengths,
        }
    }

    /// Like [`Ensemble::run_prepared`], but with ensemble-level early
    /// exit against `theta`, the caller's current score floor (the
    /// engine's running top-k admission threshold, already clamped to at
    /// least the tightness scorer's `min_element_score`).
    ///
    /// Matchers are evaluated in registration order. Before each, the
    /// best possible combined-matrix cell is bounded by the max of (a)
    /// the actual matrix maxima of matchers already scored and (b) the
    /// cheap [`Matcher::score_upper_bound`] of matchers not yet scored —
    /// the weighted combination is a convex blend of participating
    /// values, so no combined cell can exceed that max. When the bound
    /// (plus rounding slack) drops below `theta`, no element of this
    /// candidate can reach `theta`, the tightness score is exactly zero,
    /// and the remaining matchers are skipped.
    ///
    /// With `theta <= 0` the pass is exactly [`Ensemble::run_prepared`];
    /// survivors always score every matcher in registration order, so
    /// their output is bitwise-identical to the unbounded pass.
    #[allow(clippy::too_many_arguments)]
    pub fn run_prepared_bounded(
        &self,
        equery: &EnsembleQuery,
        terms: &[QueryTerm],
        query: &QueryGraph,
        pcand: &PreparedCandidate,
        candidate: &Schema,
        with_strengths: bool,
        theta: f64,
    ) -> BoundedRun {
        if theta.is_nan()
            || theta <= 0.0
            || self.matchers.is_empty()
            || equery.per_matcher.len() != self.matchers.len()
            || pcand.per_matcher.len() != self.matchers.len()
        {
            return BoundedRun::Scored(self.run_prepared(
                equery,
                terms,
                query,
                pcand,
                candidate,
                with_strengths,
            ));
        }
        let n = self.matchers.len();
        // Per-matcher cheap bounds, zero for weightless matchers (they
        // never participate in a combined cell).
        let bounds: Vec<f64> = self
            .matchers
            .iter()
            .zip(equery.per_matcher.iter().zip(pcand.per_matcher.iter()))
            .map(|((m, w), (pq, ps))| {
                if *w > 0.0 {
                    m.score_upper_bound(pq, terms, ps, candidate)
                        .clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect();
        // suffix_max[i] = max bound over matchers i.. (0.0 past the end).
        let mut suffix_max = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            suffix_max[i] = suffix_max[i + 1].max(bounds[i]);
        }
        let mut timings = vec![Duration::ZERO; n];
        let mut scored: Vec<(SimilarityMatrix, f64, bool)> = Vec::with_capacity(n);
        let mut done_max = 0.0f64;
        for (i, ((m, w), (pq, ps))) in self
            .matchers
            .iter()
            .zip(equery.per_matcher.iter().zip(pcand.per_matcher.iter()))
            .enumerate()
        {
            let cell_cap = done_max.max(suffix_max[i]);
            if cell_cap + cell_cap * BOUND_SLACK < theta {
                return BoundedRun::Pruned {
                    timings,
                    skipped: n - i,
                };
            }
            let start = Instant::now();
            let matrix = m.score_prepared(pq, terms, query, ps, candidate);
            timings[i] = start.elapsed();
            if *w > 0.0 {
                done_max = done_max.max(matrix.max_value());
            }
            scored.push((matrix, *w, m.abstains()));
        }
        // All matchers ran, but the actual maxima may still prove the
        // candidate floor-bound — skip the combine + downstream scoring.
        if done_max + done_max * BOUND_SLACK < theta {
            return BoundedRun::Pruned {
                timings,
                skipped: 0,
            };
        }
        let strengths = if with_strengths {
            scored.iter().map(|(m, _, _)| m.mean_row_max()).collect()
        } else {
            Vec::new()
        };
        let refs: Vec<(&SimilarityMatrix, f64, bool)> =
            scored.iter().map(|(m, w, a)| (m, *w, *a)).collect();
        BoundedRun::Scored(EnsembleRun {
            matrix: SimilarityMatrix::combine_with_abstention(&refs),
            timings,
            strengths,
        })
    }

    /// Run every matcher and return the individual matrices (the learner's
    /// feature extraction path).
    pub fn individual(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> Vec<(&'static str, SimilarityMatrix)> {
        self.matchers
            .iter()
            .map(|(m, _)| (m.name(), m.score(terms, query, candidate)))
            .collect()
    }
}

impl Default for Ensemble {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::EditDistanceMatcher;
    use crate::token::TokenMatcher;
    use schemr_model::{DataType, SchemaBuilder};

    fn query_and_candidate() -> (QueryGraph, Vec<QueryTerm>, Schema) {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("f")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked(),
        );
        let terms = q.terms();
        let candidate = SchemaBuilder::new("c")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        (q, terms, candidate)
    }

    #[test]
    fn standard_ensemble_has_name_and_context() {
        let e = Ensemble::standard();
        assert_eq!(e.matcher_names(), ["name", "context"]);
        assert_eq!(e.weights(), [1.0, 1.0]);
        assert!(!e.is_empty());
    }

    #[test]
    fn combined_matrix_blends_matchers() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let m = e.combined(&terms, &q, &candidate);
        assert_eq!((m.rows(), m.cols()), (terms.len(), candidate.len()));
        // Perfect name + strong context → high combined diagonal.
        assert!(m.get(1, 1) > 0.7, "height×height = {}", m.get(1, 1));
    }

    #[test]
    fn weights_shift_the_blend() {
        let (q, terms, candidate) = query_and_candidate();
        let mut name_only = Ensemble::empty();
        name_only.push(Box::new(NameMatcher::new()), 1.0);
        name_only.push(Box::new(ContextMatcher::new()), 0.0);
        let m_name = name_only.combined(&terms, &q, &candidate);

        let mut ctx_heavy = Ensemble::empty();
        ctx_heavy.push(Box::new(NameMatcher::new()), 0.0);
        ctx_heavy.push(Box::new(ContextMatcher::new()), 1.0);
        let m_ctx = ctx_heavy.combined(&terms, &q, &candidate);

        // Query "height" (row 1) vs candidate "gender" (col 2): the names
        // differ (low name score) but the neighborhoods are identical
        // ({patient, height} vs {patient, height}) — so the context-heavy
        // blend scores this cell far higher than the name-only blend.
        assert!(
            m_ctx.get(1, 2) > m_name.get(1, 2) + 0.3,
            "ctx {} vs name {}",
            m_ctx.get(1, 2),
            m_name.get(1, 2)
        );
        // And on the diagonal the name-only blend is exact.
        assert!((m_name.get(1, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn set_weights_replaces_in_order() {
        let mut e = Ensemble::standard();
        e.set_weights(&[0.7, 0.3]);
        assert_eq!(e.weights(), [0.7, 0.3]);
    }

    #[test]
    #[should_panic(expected = "one weight per matcher")]
    fn set_weights_length_mismatch_panics() {
        Ensemble::standard().set_weights(&[1.0]);
    }

    #[test]
    fn individual_returns_one_matrix_per_matcher() {
        let (q, terms, candidate) = query_and_candidate();
        let mut e = Ensemble::standard();
        e.push(Box::new(TokenMatcher::new()), 1.0);
        e.push(Box::new(EditDistanceMatcher::new()), 1.0);
        let per = e.individual(&terms, &q, &candidate);
        assert_eq!(per.len(), 4);
        let names: Vec<_> = per.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["name", "context", "token", "edit"]);
    }

    #[test]
    fn combined_traced_times_every_matcher_and_matches_combined() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let (traced, timings) = e.combined_traced(&terms, &q, &candidate);
        assert_eq!(timings.len(), e.len());
        let plain = e.combined(&terms, &q, &candidate);
        for r in 0..plain.rows() {
            for c in 0..plain.cols() {
                assert!((traced.get(r, c) - plain.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn run_collects_strengths_only_on_request() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let bare = e.run(&terms, &q, &candidate, false);
        assert!(bare.strengths.is_empty());
        let full = e.run(&terms, &q, &candidate, true);
        assert_eq!(full.strengths.len(), e.len());
        // Identical query and candidate → the name matcher's rows all max
        // at 1.0.
        assert!(
            full.strengths[0] > 0.99,
            "name strength {}",
            full.strengths[0]
        );
        assert!(full.strengths.iter().all(|s| (0.0..=1.0).contains(s)));
        // The combined matrix is unaffected by strength collection.
        for r in 0..bare.matrix.rows() {
            for c in 0..bare.matrix.cols() {
                assert!((bare.matrix.get(r, c) - full.matrix.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn run_prepared_is_bitwise_equal_to_run() {
        let (q, terms, candidate) = query_and_candidate();
        let mut e = Ensemble::standard();
        // Include a matcher with a prepared port (token) and one without
        // (edit — exercises the default fall-through inside the prepared
        // pass).
        e.push(Box::new(TokenMatcher::new()), 0.5);
        e.push(Box::new(EditDistanceMatcher::new()), 0.25);
        let naive = e.run(&terms, &q, &candidate, true);
        let equery = e.prepare_query(&terms, &q);
        let pcand = e.prepare(&candidate);
        assert_eq!(equery.per_matcher.len(), e.len());
        assert_eq!(pcand.per_matcher.len(), e.len());
        assert!(pcand.bytes > 0, "prepared artifacts report a footprint");
        let prepared = e.run_prepared(&equery, &terms, &q, &pcand, &candidate, true);
        assert_eq!(prepared.timings.len(), e.len());
        assert_eq!(prepared.strengths.len(), e.len());
        for r in 0..naive.matrix.rows() {
            for c in 0..naive.matrix.cols() {
                assert_eq!(
                    prepared.matrix.get(r, c).to_bits(),
                    naive.matrix.get(r, c).to_bits(),
                    "cell ({r},{c})"
                );
            }
        }
        for (s, n) in prepared.strengths.iter().zip(naive.strengths.iter()) {
            assert_eq!(s.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn run_prepared_falls_back_on_artifact_shape_mismatch() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let naive = e.run(&terms, &q, &candidate, false);
        // Artifacts built for a different matcher count must not be
        // zipped positionally — the pass reverts to the unprepared path.
        let stale_query = crate::prepare::EnsembleQuery::default();
        let stale_cand = crate::prepare::PreparedCandidate::default();
        let out = e.run_prepared(&stale_query, &terms, &q, &stale_cand, &candidate, false);
        for r in 0..naive.matrix.rows() {
            for c in 0..naive.matrix.cols() {
                assert_eq!(
                    out.matrix.get(r, c).to_bits(),
                    naive.matrix.get(r, c).to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_ensemble_yields_zero_matrix() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::empty();
        let m = e.combined(&terms, &q, &candidate);
        assert_eq!(m.element_scores().iter().sum::<f64>(), 0.0);
    }

    fn four_matcher_ensemble() -> Ensemble {
        let mut e = Ensemble::standard();
        e.push(Box::new(TokenMatcher::new()), 0.5);
        e.push(Box::new(EditDistanceMatcher::new()), 0.25);
        e
    }

    #[test]
    fn bounded_run_with_zero_theta_is_bitwise_equal_to_run_prepared() {
        let (q, terms, candidate) = query_and_candidate();
        let e = four_matcher_ensemble();
        let equery = e.prepare_query(&terms, &q);
        let pcand = e.prepare(&candidate);
        let plain = e.run_prepared(&equery, &terms, &q, &pcand, &candidate, true);
        let BoundedRun::Scored(bounded) =
            e.run_prepared_bounded(&equery, &terms, &q, &pcand, &candidate, true, 0.0)
        else {
            panic!("theta 0 must never prune");
        };
        for r in 0..plain.matrix.rows() {
            for c in 0..plain.matrix.cols() {
                assert_eq!(
                    bounded.matrix.get(r, c).to_bits(),
                    plain.matrix.get(r, c).to_bits(),
                    "cell ({r},{c})"
                );
            }
        }
        for (b, p) in bounded.strengths.iter().zip(plain.strengths.iter()) {
            assert_eq!(b.to_bits(), p.to_bits());
        }
        assert_eq!(bounded.timings.len(), e.len());
    }

    #[test]
    fn bounded_run_survivors_match_run_prepared_for_any_theta() {
        let (q, terms, candidate) = query_and_candidate();
        let e = four_matcher_ensemble();
        let equery = e.prepare_query(&terms, &q);
        let pcand = e.prepare(&candidate);
        let plain = e.run_prepared(&equery, &terms, &q, &pcand, &candidate, false);
        let plain_max = plain.matrix.max_value();
        for theta in [0.1, 0.45, 0.7, 0.9, 0.999, 2.0] {
            match e.run_prepared_bounded(&equery, &terms, &q, &pcand, &candidate, false, theta) {
                BoundedRun::Scored(run) => {
                    for r in 0..plain.matrix.rows() {
                        for c in 0..plain.matrix.cols() {
                            assert_eq!(
                                run.matrix.get(r, c).to_bits(),
                                plain.matrix.get(r, c).to_bits(),
                                "theta {theta}, cell ({r},{c})"
                            );
                        }
                    }
                }
                BoundedRun::Pruned { timings, skipped } => {
                    // Pruning is only sound when no cell reaches theta.
                    assert!(
                        plain_max < theta,
                        "theta {theta} pruned but max cell is {plain_max}"
                    );
                    assert_eq!(timings.len(), e.len());
                    assert!(skipped <= e.len());
                }
            }
        }
    }

    #[test]
    fn bounded_run_prunes_hopeless_candidates_before_scoring() {
        let (q, terms, _) = query_and_candidate();
        // A candidate with long, alien names: every name-matcher size
        // bound is far below the floor, and the context bound collapses
        // because the neighborhoods share no plausible size advantage.
        let candidate = SchemaBuilder::new("junk")
            .entity("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", |e| {
                e.attr("yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy", DataType::Text)
            })
            .build_unchecked();
        let e = Ensemble::standard();
        let equery = e.prepare_query(&terms, &q);
        let pcand = e.prepare(&candidate);
        let run = e.run_prepared_bounded(&equery, &terms, &q, &pcand, &candidate, false, 0.95);
        match run {
            BoundedRun::Pruned { skipped, .. } => {
                assert!(skipped >= 1, "expected at least one matcher skipped");
            }
            BoundedRun::Scored(run) => {
                panic!("junk candidate scored: max {}", run.matrix.max_value());
            }
        }
    }

    #[test]
    fn bounded_run_falls_back_on_artifact_shape_mismatch() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let naive = e.run(&terms, &q, &candidate, false);
        let stale_query = crate::prepare::EnsembleQuery::default();
        let stale_cand = crate::prepare::PreparedCandidate::default();
        // Even with a high theta, mismatched artifacts must score fully.
        let BoundedRun::Scored(out) = e.run_prepared_bounded(
            &stale_query,
            &terms,
            &q,
            &stale_cand,
            &candidate,
            false,
            0.99,
        ) else {
            panic!("shape mismatch must fall back to a full scored run");
        };
        for r in 0..naive.matrix.rows() {
            for c in 0..naive.matrix.cols() {
                assert_eq!(
                    out.matrix.get(r, c).to_bits(),
                    naive.matrix.get(r, c).to_bits()
                );
            }
        }
    }

    /// Across a small corpus of candidates and a sweep of floors, the
    /// bounded pass must never prune a candidate whose true combined
    /// matrix has a cell ≥ theta — the soundness invariant the engine's
    /// bitwise top-k oracle rests on.
    #[test]
    fn bounded_run_never_prunes_a_candidate_that_could_reach_theta() {
        let (q, terms, _) = query_and_candidate();
        let candidates = [
            ("exact", vec![("patient", vec!["height", "gender"])]),
            ("close", vec![("patients", vec!["heights", "sex"])]),
            ("partial", vec![("person", vec!["height", "age"])]),
            ("far", vec![("invoice", vec!["total", "currency"])]),
            (
                "alien",
                vec![("zzzzzzzzzzzzzzzz", vec!["qqqqqqqqqqqqqqqq"])],
            ),
        ];
        let e = four_matcher_ensemble();
        let equery = e.prepare_query(&terms, &q);
        for (name, entities) in &candidates {
            let mut b = SchemaBuilder::new(*name);
            for (ent, attrs) in entities {
                b = b.entity(*ent, |mut eb| {
                    for a in attrs {
                        eb = eb.attr(*a, DataType::Text);
                    }
                    eb
                });
            }
            let candidate = b.build_unchecked();
            let pcand = e.prepare(&candidate);
            let truth = e
                .run_prepared(&equery, &terms, &q, &pcand, &candidate, false)
                .matrix
                .max_value();
            for theta in [0.2, 0.45, 0.6, 0.8, 0.95] {
                if let BoundedRun::Pruned { .. } =
                    e.run_prepared_bounded(&equery, &terms, &q, &pcand, &candidate, false, theta)
                {
                    assert!(
                        truth < theta,
                        "candidate {name} pruned at theta {theta} but max cell {truth}"
                    );
                }
            }
        }
    }
}
