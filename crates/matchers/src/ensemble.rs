//! The matcher ensemble: weighted combination of similarity matrices.
//!
//! "For every candidate schema, the similarity matrices of the different
//! matchers are combined into a single matrix containing total similarity
//! scores. We combine the scores from each matcher with a weighting scheme,
//! which is initially uniform."

use std::time::{Duration, Instant};

use schemr_model::{QueryGraph, QueryTerm, Schema};

use crate::context::ContextMatcher;
use crate::matrix::SimilarityMatrix;
use crate::name::NameMatcher;
use crate::prepare::{EnsembleQuery, PreparedCandidate};
use crate::Matcher;

/// A weighted set of matchers producing one combined similarity matrix per
/// candidate.
pub struct Ensemble {
    matchers: Vec<(Box<dyn Matcher>, f64)>,
}

/// The output of one ensemble pass over a candidate.
pub struct EnsembleRun {
    /// The weighted combined similarity matrix.
    pub matrix: SimilarityMatrix,
    /// Per-matcher wall time, in registration order.
    pub timings: Vec<Duration>,
    /// Per-matcher strength ([`SimilarityMatrix::mean_row_max`] of each
    /// matcher's individual matrix), in registration order. Empty unless
    /// requested — computing it costs one extra matrix scan per matcher,
    /// so callers without an event log skip it.
    pub strengths: Vec<f64>,
}

impl Ensemble {
    /// An empty ensemble. Add matchers with [`Ensemble::push`].
    pub fn empty() -> Self {
        Ensemble {
            matchers: Vec::new(),
        }
    }

    /// The paper's default ensemble: name + context matchers, uniform
    /// weights.
    pub fn standard() -> Self {
        let mut e = Ensemble::empty();
        e.push(Box::new(NameMatcher::new()), 1.0);
        e.push(Box::new(ContextMatcher::new()), 1.0);
        e
    }

    /// Add a matcher with a weight (negative weights are treated as zero at
    /// combination time).
    pub fn push(&mut self, matcher: Box<dyn Matcher>, weight: f64) {
        self.matchers.push((matcher, weight));
    }

    /// Number of matchers.
    pub fn len(&self) -> usize {
        self.matchers.len()
    }

    /// True when no matchers are registered.
    pub fn is_empty(&self) -> bool {
        self.matchers.is_empty()
    }

    /// Matcher names in registration order.
    pub fn matcher_names(&self) -> Vec<&'static str> {
        self.matchers.iter().map(|(m, _)| m.name()).collect()
    }

    /// Current weights in registration order.
    pub fn weights(&self) -> Vec<f64> {
        self.matchers.iter().map(|(_, w)| *w).collect()
    }

    /// Replace the weights (e.g. with learned ones).
    ///
    /// # Panics
    /// Panics if `weights.len()` differs from the matcher count.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.matchers.len(), "one weight per matcher");
        for ((_, w), &nw) in self.matchers.iter_mut().zip(weights) {
            *w = nw;
        }
    }

    /// Run every matcher and combine the matrices with the current
    /// weights. Matchers whose [`Matcher::abstains`] is true only
    /// participate in cells where they produced a nonzero score.
    pub fn combined(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        self.combined_traced(terms, query, candidate).0
    }

    /// Like [`Ensemble::combined`], but also returns each matcher's wall
    /// time (in registration order — align with
    /// [`Ensemble::matcher_names`]). The engine aggregates these per
    /// search to expose the name-vs-context cost split.
    pub fn combined_traced(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> (SimilarityMatrix, Vec<Duration>) {
        let run = self.run(terms, query, candidate, false);
        (run.matrix, run.timings)
    }

    /// The full instrumented pass: combined matrix, per-matcher wall
    /// times, and (when `with_strengths`) each matcher's
    /// [`SimilarityMatrix::mean_row_max`] strength for the event log.
    pub fn run(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
        with_strengths: bool,
    ) -> EnsembleRun {
        let mut timings = Vec::with_capacity(self.matchers.len());
        let matrices: Vec<(SimilarityMatrix, f64, bool)> = self
            .matchers
            .iter()
            .map(|(m, w)| {
                let start = Instant::now();
                let scored = m.score(terms, query, candidate);
                timings.push(start.elapsed());
                (scored, *w, m.abstains())
            })
            .collect();
        let strengths = if with_strengths {
            matrices.iter().map(|(m, _, _)| m.mean_row_max()).collect()
        } else {
            Vec::new()
        };
        if matrices.is_empty() {
            return EnsembleRun {
                matrix: SimilarityMatrix::zeros(terms.len(), candidate.len()),
                timings,
                strengths,
            };
        }
        let refs: Vec<(&SimilarityMatrix, f64, bool)> =
            matrices.iter().map(|(m, w, a)| (m, *w, *a)).collect();
        EnsembleRun {
            matrix: SimilarityMatrix::combine_with_abstention(&refs),
            timings,
            strengths,
        }
    }

    /// Build the query-side prepared artifacts for every matcher, once
    /// per search.
    pub fn prepare_query(&self, terms: &[QueryTerm], query: &QueryGraph) -> EnsembleQuery {
        let refs: Vec<&dyn Matcher> = self.matchers.iter().map(|(m, _)| m.as_ref()).collect();
        EnsembleQuery::build(&refs, terms, query)
    }

    /// Build the candidate-side prepared artifacts for every matcher.
    /// The engine caches the result per (schema id, repository revision).
    pub fn prepare(&self, schema: &Schema) -> PreparedCandidate {
        let refs: Vec<&dyn Matcher> = self.matchers.iter().map(|(m, _)| m.as_ref()).collect();
        PreparedCandidate::build(&refs, schema)
    }

    /// Like [`Ensemble::run`], but scoring through each matcher's
    /// prepared path. The combined matrix is bitwise-identical to the
    /// unprepared [`Ensemble::run`]. If either artifact bundle was built
    /// for a different matcher set (length mismatch), the whole pass
    /// falls back to the unprepared path.
    pub fn run_prepared(
        &self,
        equery: &EnsembleQuery,
        terms: &[QueryTerm],
        query: &QueryGraph,
        pcand: &PreparedCandidate,
        candidate: &Schema,
        with_strengths: bool,
    ) -> EnsembleRun {
        if equery.per_matcher.len() != self.matchers.len()
            || pcand.per_matcher.len() != self.matchers.len()
        {
            return self.run(terms, query, candidate, with_strengths);
        }
        let mut timings = Vec::with_capacity(self.matchers.len());
        let matrices: Vec<(SimilarityMatrix, f64, bool)> = self
            .matchers
            .iter()
            .zip(equery.per_matcher.iter().zip(pcand.per_matcher.iter()))
            .map(|((m, w), (pq, ps))| {
                let start = Instant::now();
                let scored = m.score_prepared(pq, terms, query, ps, candidate);
                timings.push(start.elapsed());
                (scored, *w, m.abstains())
            })
            .collect();
        let strengths = if with_strengths {
            matrices.iter().map(|(m, _, _)| m.mean_row_max()).collect()
        } else {
            Vec::new()
        };
        if matrices.is_empty() {
            return EnsembleRun {
                matrix: SimilarityMatrix::zeros(terms.len(), candidate.len()),
                timings,
                strengths,
            };
        }
        let refs: Vec<(&SimilarityMatrix, f64, bool)> =
            matrices.iter().map(|(m, w, a)| (m, *w, *a)).collect();
        EnsembleRun {
            matrix: SimilarityMatrix::combine_with_abstention(&refs),
            timings,
            strengths,
        }
    }

    /// Run every matcher and return the individual matrices (the learner's
    /// feature extraction path).
    pub fn individual(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> Vec<(&'static str, SimilarityMatrix)> {
        self.matchers
            .iter()
            .map(|(m, _)| (m.name(), m.score(terms, query, candidate)))
            .collect()
    }
}

impl Default for Ensemble {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::EditDistanceMatcher;
    use crate::token::TokenMatcher;
    use schemr_model::{DataType, SchemaBuilder};

    fn query_and_candidate() -> (QueryGraph, Vec<QueryTerm>, Schema) {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("f")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked(),
        );
        let terms = q.terms();
        let candidate = SchemaBuilder::new("c")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        (q, terms, candidate)
    }

    #[test]
    fn standard_ensemble_has_name_and_context() {
        let e = Ensemble::standard();
        assert_eq!(e.matcher_names(), ["name", "context"]);
        assert_eq!(e.weights(), [1.0, 1.0]);
        assert!(!e.is_empty());
    }

    #[test]
    fn combined_matrix_blends_matchers() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let m = e.combined(&terms, &q, &candidate);
        assert_eq!((m.rows(), m.cols()), (terms.len(), candidate.len()));
        // Perfect name + strong context → high combined diagonal.
        assert!(m.get(1, 1) > 0.7, "height×height = {}", m.get(1, 1));
    }

    #[test]
    fn weights_shift_the_blend() {
        let (q, terms, candidate) = query_and_candidate();
        let mut name_only = Ensemble::empty();
        name_only.push(Box::new(NameMatcher::new()), 1.0);
        name_only.push(Box::new(ContextMatcher::new()), 0.0);
        let m_name = name_only.combined(&terms, &q, &candidate);

        let mut ctx_heavy = Ensemble::empty();
        ctx_heavy.push(Box::new(NameMatcher::new()), 0.0);
        ctx_heavy.push(Box::new(ContextMatcher::new()), 1.0);
        let m_ctx = ctx_heavy.combined(&terms, &q, &candidate);

        // Query "height" (row 1) vs candidate "gender" (col 2): the names
        // differ (low name score) but the neighborhoods are identical
        // ({patient, height} vs {patient, height}) — so the context-heavy
        // blend scores this cell far higher than the name-only blend.
        assert!(
            m_ctx.get(1, 2) > m_name.get(1, 2) + 0.3,
            "ctx {} vs name {}",
            m_ctx.get(1, 2),
            m_name.get(1, 2)
        );
        // And on the diagonal the name-only blend is exact.
        assert!((m_name.get(1, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn set_weights_replaces_in_order() {
        let mut e = Ensemble::standard();
        e.set_weights(&[0.7, 0.3]);
        assert_eq!(e.weights(), [0.7, 0.3]);
    }

    #[test]
    #[should_panic(expected = "one weight per matcher")]
    fn set_weights_length_mismatch_panics() {
        Ensemble::standard().set_weights(&[1.0]);
    }

    #[test]
    fn individual_returns_one_matrix_per_matcher() {
        let (q, terms, candidate) = query_and_candidate();
        let mut e = Ensemble::standard();
        e.push(Box::new(TokenMatcher::new()), 1.0);
        e.push(Box::new(EditDistanceMatcher::new()), 1.0);
        let per = e.individual(&terms, &q, &candidate);
        assert_eq!(per.len(), 4);
        let names: Vec<_> = per.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["name", "context", "token", "edit"]);
    }

    #[test]
    fn combined_traced_times_every_matcher_and_matches_combined() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let (traced, timings) = e.combined_traced(&terms, &q, &candidate);
        assert_eq!(timings.len(), e.len());
        let plain = e.combined(&terms, &q, &candidate);
        for r in 0..plain.rows() {
            for c in 0..plain.cols() {
                assert!((traced.get(r, c) - plain.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn run_collects_strengths_only_on_request() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let bare = e.run(&terms, &q, &candidate, false);
        assert!(bare.strengths.is_empty());
        let full = e.run(&terms, &q, &candidate, true);
        assert_eq!(full.strengths.len(), e.len());
        // Identical query and candidate → the name matcher's rows all max
        // at 1.0.
        assert!(
            full.strengths[0] > 0.99,
            "name strength {}",
            full.strengths[0]
        );
        assert!(full.strengths.iter().all(|s| (0.0..=1.0).contains(s)));
        // The combined matrix is unaffected by strength collection.
        for r in 0..bare.matrix.rows() {
            for c in 0..bare.matrix.cols() {
                assert!((bare.matrix.get(r, c) - full.matrix.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn run_prepared_is_bitwise_equal_to_run() {
        let (q, terms, candidate) = query_and_candidate();
        let mut e = Ensemble::standard();
        // Include a matcher with a prepared port (token) and one without
        // (edit — exercises the default fall-through inside the prepared
        // pass).
        e.push(Box::new(TokenMatcher::new()), 0.5);
        e.push(Box::new(EditDistanceMatcher::new()), 0.25);
        let naive = e.run(&terms, &q, &candidate, true);
        let equery = e.prepare_query(&terms, &q);
        let pcand = e.prepare(&candidate);
        assert_eq!(equery.per_matcher.len(), e.len());
        assert_eq!(pcand.per_matcher.len(), e.len());
        assert!(pcand.bytes > 0, "prepared artifacts report a footprint");
        let prepared = e.run_prepared(&equery, &terms, &q, &pcand, &candidate, true);
        assert_eq!(prepared.timings.len(), e.len());
        assert_eq!(prepared.strengths.len(), e.len());
        for r in 0..naive.matrix.rows() {
            for c in 0..naive.matrix.cols() {
                assert_eq!(
                    prepared.matrix.get(r, c).to_bits(),
                    naive.matrix.get(r, c).to_bits(),
                    "cell ({r},{c})"
                );
            }
        }
        for (s, n) in prepared.strengths.iter().zip(naive.strengths.iter()) {
            assert_eq!(s.to_bits(), n.to_bits());
        }
    }

    #[test]
    fn run_prepared_falls_back_on_artifact_shape_mismatch() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::standard();
        let naive = e.run(&terms, &q, &candidate, false);
        // Artifacts built for a different matcher count must not be
        // zipped positionally — the pass reverts to the unprepared path.
        let stale_query = crate::prepare::EnsembleQuery::default();
        let stale_cand = crate::prepare::PreparedCandidate::default();
        let out = e.run_prepared(&stale_query, &terms, &q, &stale_cand, &candidate, false);
        for r in 0..naive.matrix.rows() {
            for c in 0..naive.matrix.cols() {
                assert_eq!(
                    out.matrix.get(r, c).to_bits(),
                    naive.matrix.get(r, c).to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_ensemble_yields_zero_matrix() {
        let (q, terms, candidate) = query_and_candidate();
        let e = Ensemble::empty();
        let m = e.combined(&terms, &q, &candidate);
        assert_eq!(m.element_scores().iter().sum::<f64>(), 0.0);
    }
}
