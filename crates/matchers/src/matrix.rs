//! Similarity matrices: the interchange format between matchers, the
//! ensemble, and the tightness-of-fit scorer.

use serde::{Deserialize, Serialize};

/// A dense (query terms × schema elements) matrix of similarity scores in
/// `[0, 1]`.
///
/// "Each (query element, schema element) pair has a corresponding value
/// which describes the match quality — a value between 0 and 1."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// A zero matrix with `rows` query terms and `cols` schema elements.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SimilarityMatrix {
            rows,
            cols,
            values: vec![0.0; rows * cols],
        }
    }

    /// Number of query-term rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of schema-element columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The value at (`row`, `col`).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.values[row * self.cols + col]
    }

    /// Set the value at (`row`, `col`), clamping into `[0, 1]`. NaN
    /// clamps to 0.0: a similarity that failed to compute is "no match",
    /// and letting NaN into the matrix would make every downstream
    /// comparison (column maxima, final ranking) order-dependent.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        let value = if value.is_nan() { 0.0 } else { value };
        self.values[row * self.cols + col] = value.clamp(0.0, 1.0);
    }

    /// The maximum value in column `col` and the row achieving it —
    /// "selecting the maximum value of each schema element's entry in the
    /// matrix as the final match score for that element".
    pub fn column_max(&self, col: usize) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for row in 0..self.rows {
            let v = self.get(row, col);
            if v > best.1 {
                best = (row, v);
            }
        }
        best
    }

    /// Per-element final match scores: the column maxima.
    pub fn element_scores(&self) -> Vec<f64> {
        (0..self.cols).map(|c| self.column_max(c).1).collect()
    }

    /// The maximum value in row `row` (how well a query term matched
    /// anywhere in the schema).
    pub fn row_max(&self, row: usize) -> f64 {
        (0..self.cols).map(|c| self.get(row, c)).fold(0.0, f64::max)
    }

    /// The maximum cell in the whole matrix (0.0 when empty). The
    /// ensemble's early-exit pass uses this to refine a matcher's size
    /// bound with its actual score once computed.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean of the row maxima: how well the *average* query term matched
    /// anywhere in the schema. This is the per-matcher strength signal
    /// the search-history event log records for each ranked result — a
    /// scalar per (matcher, candidate) that weight learning can regress
    /// against without storing whole matrices.
    pub fn mean_row_max(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (0..self.rows).map(|r| self.row_max(r)).sum::<f64>() / self.rows as f64
    }

    /// Weighted combination of matcher matrices: `Σ wᵢMᵢ / Σ wᵢ`.
    ///
    /// All matrices must share dimensions. Non-positive total weight yields
    /// a zero matrix.
    pub fn combine(matrices: &[(&SimilarityMatrix, f64)]) -> SimilarityMatrix {
        let Some(((first, _), rest)) = matrices.split_first() else {
            return SimilarityMatrix::zeros(0, 0);
        };
        for (m, _) in rest {
            assert_eq!(
                (m.rows, m.cols),
                (first.rows, first.cols),
                "matcher matrices must agree on dimensions"
            );
        }
        let total: f64 = matrices.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut out = SimilarityMatrix::zeros(first.rows, first.cols);
        if total <= 0.0 {
            return out;
        }
        for i in 0..out.values.len() {
            let mut v = 0.0;
            for (m, w) in matrices {
                v += w.max(0.0) * m.values[i];
            }
            out.values[i] = (v / total).clamp(0.0, 1.0);
        }
        out
    }

    /// Weighted combination with *abstention*: matchers flagged as
    /// abstaining contribute a cell to neither numerator nor denominator
    /// when their value there is zero. Sparse, high-precision matchers
    /// (data-type or codebook agreement) use this so their "don't know"
    /// cells do not dilute the dense matchers.
    ///
    /// Cells where every matcher abstains (or only zero-weight matchers
    /// fire) are zero.
    pub fn combine_with_abstention(
        matrices: &[(&SimilarityMatrix, f64, bool)],
    ) -> SimilarityMatrix {
        let Some(((first, _, _), rest)) = matrices.split_first() else {
            return SimilarityMatrix::zeros(0, 0);
        };
        for (m, _, _) in rest {
            assert_eq!(
                (m.rows, m.cols),
                (first.rows, first.cols),
                "matcher matrices must agree on dimensions"
            );
        }
        let mut out = SimilarityMatrix::zeros(first.rows, first.cols);
        for i in 0..out.values.len() {
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for (m, w, abstaining) in matrices {
                let w = w.max(0.0);
                let v = m.values[i];
                if *abstaining && v == 0.0 {
                    continue;
                }
                num += w * v;
                den += w;
            }
            if den > 0.0 {
                out.values[i] = (num / den).clamp(0.0, 1.0);
            }
        }
        out
    }

    /// Iterate `(row, col, value)` over non-zero entries.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (0..self.cols).filter_map(move |c| {
                let v = self.get(r, c);
                (v > 0.0).then_some((r, c, v))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_clamps_into_unit_interval() {
        let mut m = SimilarityMatrix::zeros(2, 3);
        m.set(0, 1, 0.5);
        m.set(1, 2, 7.0);
        m.set(0, 0, -3.0);
        assert_eq!(m.get(0, 1), 0.5);
        assert_eq!(m.get(1, 2), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn nan_scores_clamp_to_zero() {
        let mut m = SimilarityMatrix::zeros(2, 2);
        m.set(0, 0, f64::NAN);
        m.set(1, 0, 0.6);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.column_max(0), (1, 0.6));
        assert!(m.mean_row_max().is_finite());
    }

    #[test]
    fn column_max_finds_the_best_row() {
        let mut m = SimilarityMatrix::zeros(3, 2);
        m.set(0, 0, 0.2);
        m.set(1, 0, 0.9);
        m.set(2, 0, 0.4);
        assert_eq!(m.column_max(0), (1, 0.9));
        assert_eq!(m.column_max(1), (0, 0.0));
        assert_eq!(m.element_scores(), vec![0.9, 0.0]);
    }

    #[test]
    fn row_max() {
        let mut m = SimilarityMatrix::zeros(1, 3);
        m.set(0, 2, 0.7);
        assert_eq!(m.row_max(0), 0.7);
    }

    #[test]
    fn max_value_scans_the_whole_matrix() {
        let mut m = SimilarityMatrix::zeros(2, 3);
        assert_eq!(m.max_value(), 0.0);
        m.set(0, 1, 0.3);
        m.set(1, 2, 0.9);
        assert_eq!(m.max_value(), 0.9);
        assert_eq!(SimilarityMatrix::zeros(0, 0).max_value(), 0.0);
    }

    #[test]
    fn mean_row_max_averages_per_term_bests() {
        let mut m = SimilarityMatrix::zeros(2, 2);
        m.set(0, 0, 0.8);
        m.set(1, 1, 0.4);
        assert!((m.mean_row_max() - 0.6).abs() < 1e-12);
        assert_eq!(SimilarityMatrix::zeros(0, 3).mean_row_max(), 0.0);
    }

    #[test]
    fn combine_weights_matrices() {
        let mut a = SimilarityMatrix::zeros(1, 1);
        a.set(0, 0, 1.0);
        let b = SimilarityMatrix::zeros(1, 1);
        let combined = SimilarityMatrix::combine(&[(&a, 1.0), (&b, 1.0)]);
        assert!((combined.get(0, 0) - 0.5).abs() < 1e-12);
        let weighted = SimilarityMatrix::combine(&[(&a, 3.0), (&b, 1.0)]);
        assert!((weighted.get(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn combine_with_zero_weight_total_is_zero() {
        let mut a = SimilarityMatrix::zeros(1, 1);
        a.set(0, 0, 1.0);
        let combined = SimilarityMatrix::combine(&[(&a, 0.0)]);
        assert_eq!(combined.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn combine_rejects_dimension_mismatch() {
        let a = SimilarityMatrix::zeros(1, 1);
        let b = SimilarityMatrix::zeros(2, 1);
        SimilarityMatrix::combine(&[(&a, 1.0), (&b, 1.0)]);
    }

    #[test]
    fn nonzero_iterates_sparse_entries() {
        let mut m = SimilarityMatrix::zeros(2, 2);
        m.set(0, 1, 0.3);
        m.set(1, 0, 0.6);
        let entries: Vec<_> = m.nonzero().collect();
        assert_eq!(entries, vec![(0, 1, 0.3), (1, 0, 0.6)]);
    }

    #[test]
    fn empty_combine_yields_empty_matrix() {
        let m = SimilarityMatrix::combine(&[]);
        assert_eq!((m.rows(), m.cols()), (0, 0));
    }
}
