//! The context matcher: neighbor-term-set similarity.
//!
//! "A context matcher builds a set of terms from neighboring elements, and
//! tries to capture matches when neighboring-element sets are similar to
//! each other." [Rahm & Bernstein's survey calls this family *structural /
//! context-based* matching.]
//!
//! For a fragment element, the neighborhood is its parent, its siblings,
//! and its children in the query fragment; for a candidate element,
//! likewise in the candidate schema. Keywords carry no context, so their
//! rows are zero — the ensemble lets the name matcher carry them.

use std::collections::HashSet;

use schemr_model::{ElementId, QueryGraph, QueryTerm, Schema};
use schemr_text::{Analyzer, GramSet};

use crate::matrix::SimilarityMatrix;
use crate::prepare::{PreparedQuery, PreparedSchema};
use crate::Matcher;

/// Neighbor-term-set context matcher.
pub struct ContextMatcher {
    analyzer: Analyzer,
}

impl Default for ContextMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextMatcher {
    /// Context matcher with the standard name pipeline.
    pub fn new() -> Self {
        ContextMatcher {
            analyzer: Analyzer::for_names(),
        }
    }

    /// The analyzed term set of an element's neighborhood: parent +
    /// siblings + children (the element's own name is excluded — the name
    /// matcher covers it).
    fn neighbor_terms(&self, schema: &Schema, id: ElementId) -> HashSet<String> {
        let mut names: Vec<&str> = Vec::new();
        let el = schema.element(id);
        if let Some(p) = el.parent {
            names.push(&schema.element(p).name);
            for sib in schema.children(p) {
                if sib != id {
                    names.push(&schema.element(sib).name);
                }
            }
        }
        for child in schema.children(id) {
            names.push(&schema.element(child).name);
        }
        names
            .into_iter()
            .flat_map(|n| self.analyzer.analyze(n))
            .collect()
    }

    /// Dice similarity of two neighborhood term sets.
    fn set_similarity(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count();
        2.0 * inter as f64 / (a.len() + b.len()) as f64
    }

    /// True when no term can produce a nonzero context row: keywords
    /// carry no fragment membership, so a keyword-only query's matrix is
    /// all zero by construction and the candidate neighborhoods need not
    /// be derived at all.
    fn no_fragment_terms(terms: &[QueryTerm]) -> bool {
        terms
            .iter()
            .all(|t| t.fragment.is_none() || t.element.is_none())
    }

    /// The hashed term-id form of an element's neighborhood — the
    /// prepared counterpart of [`ContextMatcher::neighbor_terms`].
    fn neighbor_signature(&self, schema: &Schema, id: ElementId) -> GramSet {
        let mut names: Vec<&str> = Vec::new();
        let el = schema.element(id);
        if let Some(p) = el.parent {
            names.push(&schema.element(p).name);
            for sib in schema.children(p) {
                if sib != id {
                    names.push(&schema.element(sib).name);
                }
            }
        }
        for child in schema.children(id) {
            names.push(&schema.element(child).name);
        }
        let analyzed: Vec<String> = names
            .into_iter()
            .flat_map(|n| self.analyzer.analyze(n))
            .collect();
        GramSet::of_terms(analyzed.iter().map(String::as_str))
    }

    /// `score` with instrumentation: also returns how many candidate
    /// neighborhoods were derived. The keyword-only regression test
    /// asserts this stays zero when no term carries fragment context.
    pub fn score_with_stats(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> (SimilarityMatrix, usize) {
        let m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        // Keyword-only queries produce an all-zero matrix; return before
        // any candidate traversal happens.
        if Self::no_fragment_terms(terms) {
            return (m, 0);
        }
        let mut m = m;
        // Candidate neighborhoods, precomputed per column.
        let cand_ctx: Vec<HashSet<String>> = candidate
            .ids()
            .map(|id| self.neighbor_terms(candidate, id))
            .collect();
        let traversed = cand_ctx.len();
        for (row, term) in terms.iter().enumerate() {
            let (Some(frag_ix), Some(el)) = (term.fragment, term.element) else {
                continue; // keywords have no context
            };
            let fragment = &query.fragments()[frag_ix];
            let query_ctx = self.neighbor_terms(fragment, el);
            if query_ctx.is_empty() {
                continue;
            }
            for (col, ctx) in cand_ctx.iter().enumerate() {
                let s = Self::set_similarity(&query_ctx, ctx);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        (m, traversed)
    }
}

impl Matcher for ContextMatcher {
    fn name(&self) -> &'static str {
        "context"
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        self.score_with_stats(terms, query, candidate).0
    }

    fn prepare(&self, schema: &Schema) -> PreparedSchema {
        PreparedSchema {
            neighborhoods: Some(
                schema
                    .ids()
                    .map(|id| self.neighbor_signature(schema, id))
                    .collect(),
            ),
            ..PreparedSchema::default()
        }
    }

    fn prepare_query(&self, terms: &[QueryTerm], query: &QueryGraph) -> PreparedQuery {
        PreparedQuery {
            term_contexts: Some(
                terms
                    .iter()
                    .map(|t| match (t.fragment, t.element) {
                        (Some(frag_ix), Some(el)) => {
                            let sig = self.neighbor_signature(&query.fragments()[frag_ix], el);
                            (!sig.is_empty()).then_some(sig)
                        }
                        _ => None, // keywords have no context
                    })
                    .collect(),
            ),
            ..PreparedQuery::default()
        }
    }

    fn score_prepared(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        query: &QueryGraph,
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        // The keyword-only early return applies on the prepared path too.
        if Self::no_fragment_terms(terms) {
            return m;
        }
        let built_query: Vec<Option<GramSet>>;
        let term_contexts: &[Option<GramSet>] = match &prepared_query.term_contexts {
            Some(tc) if tc.len() == terms.len() => tc,
            _ => {
                built_query = self.prepare_query(terms, query).term_contexts.unwrap();
                &built_query
            }
        };
        let built_cand: Vec<GramSet>;
        let cand_ctx: &[GramSet] = match &prepared.neighborhoods {
            Some(n) if n.len() == candidate.len() => n,
            _ => {
                built_cand = candidate
                    .ids()
                    .map(|id| self.neighbor_signature(candidate, id))
                    .collect();
                &built_cand
            }
        };
        for (row, query_ctx) in term_contexts.iter().enumerate() {
            let Some(query_ctx) = query_ctx else {
                continue; // keyword or empty neighborhood
            };
            for (col, ctx) in cand_ctx.iter().enumerate() {
                // Dice over hashed term ids, arithmetic-identical to
                // `set_similarity` (an empty side yields 0 either way).
                let s = query_ctx.dice(ctx);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        m
    }

    /// Matcher-level bound: each cell is a Dice coefficient, so it cannot
    /// exceed `2·min/(|a|+|b|)` for its (term context, neighborhood) set
    /// sizes — maximized over all pairs. Keyword-only queries bound to
    /// exactly 0.0 (the matrix is all-zero by construction); missing
    /// artifacts fall back to the trivial `1.0`.
    fn score_upper_bound(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> f64 {
        if Self::no_fragment_terms(terms) {
            return 0.0;
        }
        let (Some(term_contexts), Some(neighborhoods)) =
            (&prepared_query.term_contexts, &prepared.neighborhoods)
        else {
            return 1.0;
        };
        if term_contexts.len() != terms.len() || neighborhoods.len() != candidate.len() {
            return 1.0;
        }
        let mut best = 0.0f64;
        for ctx in term_contexts.iter().flatten() {
            for nb in neighborhoods {
                if nb.is_empty() {
                    continue; // dice against an empty neighborhood is 0
                }
                let min = ctx.len().min(nb.len());
                let bound = 2.0 * min as f64 / (ctx.len() + nb.len()) as f64;
                best = best.max(bound);
                if best >= 1.0 {
                    return best;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn fragment_query() -> (QueryGraph, Vec<QueryTerm>) {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("frag")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked(),
        );
        q.add_keyword("diagnosis");
        let terms = q.terms();
        (q, terms)
    }

    #[test]
    fn matching_neighborhoods_score_high() {
        let (q, terms) = fragment_query();
        // Candidate shares the patient(height, gender) neighborhood but
        // under a renamed entity.
        let candidate = SchemaBuilder::new("cand")
            .entity("person", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        // Query "height"'s neighborhood is {patient, gender}; candidate
        // "height"'s is {person, gender}. The shared sibling "gender" gives
        // a positive context score even though the entity was renamed.
        let height_row = 1;
        let height_col = 1;
        assert!(
            m.get(height_row, height_col) > 0.3,
            "got {}",
            m.get(height_row, height_col)
        );
    }

    #[test]
    fn keywords_have_zero_context_rows() {
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        let kw_row = terms.iter().position(|t| t.is_keyword()).unwrap();
        assert_eq!(m.row_max(kw_row), 0.0);
    }

    #[test]
    fn disjoint_neighborhoods_score_zero() {
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("invoice", |e| e.attr("total", DataType::Decimal))
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        let entries: Vec<_> = m.nonzero().collect();
        assert!(
            entries.is_empty(),
            "expected empty matrix, found {entries:?}"
        );
    }

    #[test]
    fn keyword_only_queries_skip_candidate_traversal() {
        // Regression: `score` used to derive every candidate column's
        // neighborhood even when the query had no fragment terms and the
        // matrix was guaranteed all-zero.
        let mut q = QueryGraph::new();
        q.add_keyword("patient");
        q.add_keyword("diagnosis");
        let terms = q.terms();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("doctor", |e| e.attr("specialty", DataType::Text))
            .build_unchecked();
        let (m, traversed) = ContextMatcher::new().score_with_stats(&terms, &q, &candidate);
        assert_eq!(traversed, 0, "no candidate neighborhood may be derived");
        assert!(m.nonzero().next().is_none());
        assert_eq!((m.rows(), m.cols()), (terms.len(), candidate.len()));
        // Fragment queries still traverse.
        let (q2, terms2) = fragment_query();
        let (_, traversed2) = ContextMatcher::new().score_with_stats(&terms2, &q2, &candidate);
        assert_eq!(traversed2, candidate.len());
    }

    #[test]
    fn prepared_matrix_is_bitwise_equal_to_naive() {
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("person", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("doctor", |e| e.attr("gender", DataType::Text))
            .build_unchecked();
        let matcher = ContextMatcher::new();
        let naive = matcher.score(&terms, &q, &candidate);
        let pq = matcher.prepare_query(&terms, &q);
        let ps = matcher.prepare(&candidate);
        let prepared = matcher.score_prepared(&pq, &terms, &q, &ps, &candidate);
        for r in 0..naive.rows() {
            for c in 0..naive.cols() {
                assert_eq!(
                    prepared.get(r, c).to_bits(),
                    naive.get(r, c).to_bits(),
                    "cell ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn matcher_bound_dominates_matrix_max_and_zeroes_keyword_queries() {
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("person", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let matcher = ContextMatcher::new();
        let pq = matcher.prepare_query(&terms, &q);
        let ps = matcher.prepare(&candidate);
        let bound = matcher.score_upper_bound(&pq, &terms, &ps, &candidate);
        let max = matcher
            .score_prepared(&pq, &terms, &q, &ps, &candidate)
            .max_value();
        assert!(max <= bound, "matrix max {max} exceeds bound {bound}");
        // Keyword-only queries bound to exactly zero, artifacts or not.
        let mut kq = QueryGraph::new();
        kq.add_keyword("patient");
        let kterms = kq.terms();
        let kpq = matcher.prepare_query(&kterms, &kq);
        assert_eq!(
            matcher.score_upper_bound(&kpq, &kterms, &ps, &candidate),
            0.0
        );
        // Missing artifacts (with fragment terms) degrade to 1.0.
        let trivial = matcher.score_upper_bound(
            &crate::prepare::PreparedQuery::default(),
            &terms,
            &crate::prepare::PreparedSchema::default(),
            &candidate,
        );
        assert_eq!(trivial, 1.0);
    }

    #[test]
    fn context_distinguishes_same_name_in_different_entities() {
        // "gender" inside patient(height, gender) should context-match the
        // candidate's patient.gender better than its doctor.gender.
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("doctor", |e| {
                e.attr("specialty", DataType::Text)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        let gender_row = 2; // fragment order: patient, height, gender
                            // Candidate ids: 0 patient, 1 height, 2 gender, 3 doctor, 4 specialty, 5 gender
        assert!(
            m.get(gender_row, 2) > m.get(gender_row, 5),
            "patient.gender {} should out-context doctor.gender {}",
            m.get(gender_row, 2),
            m.get(gender_row, 5)
        );
    }
}
