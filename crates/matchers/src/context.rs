//! The context matcher: neighbor-term-set similarity.
//!
//! "A context matcher builds a set of terms from neighboring elements, and
//! tries to capture matches when neighboring-element sets are similar to
//! each other." [Rahm & Bernstein's survey calls this family *structural /
//! context-based* matching.]
//!
//! For a fragment element, the neighborhood is its parent, its siblings,
//! and its children in the query fragment; for a candidate element,
//! likewise in the candidate schema. Keywords carry no context, so their
//! rows are zero — the ensemble lets the name matcher carry them.

use std::collections::HashSet;

use schemr_model::{ElementId, QueryGraph, QueryTerm, Schema};
use schemr_text::Analyzer;

use crate::matrix::SimilarityMatrix;
use crate::Matcher;

/// Neighbor-term-set context matcher.
pub struct ContextMatcher {
    analyzer: Analyzer,
}

impl Default for ContextMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextMatcher {
    /// Context matcher with the standard name pipeline.
    pub fn new() -> Self {
        ContextMatcher {
            analyzer: Analyzer::for_names(),
        }
    }

    /// The analyzed term set of an element's neighborhood: parent +
    /// siblings + children (the element's own name is excluded — the name
    /// matcher covers it).
    fn neighbor_terms(&self, schema: &Schema, id: ElementId) -> HashSet<String> {
        let mut names: Vec<&str> = Vec::new();
        let el = schema.element(id);
        if let Some(p) = el.parent {
            names.push(&schema.element(p).name);
            for sib in schema.children(p) {
                if sib != id {
                    names.push(&schema.element(sib).name);
                }
            }
        }
        for child in schema.children(id) {
            names.push(&schema.element(child).name);
        }
        names
            .into_iter()
            .flat_map(|n| self.analyzer.analyze(n))
            .collect()
    }

    /// Dice similarity of two neighborhood term sets.
    fn set_similarity(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let inter = a.intersection(b).count();
        2.0 * inter as f64 / (a.len() + b.len()) as f64
    }
}

impl Matcher for ContextMatcher {
    fn name(&self) -> &'static str {
        "context"
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        // Candidate neighborhoods, precomputed per column.
        let cand_ctx: Vec<HashSet<String>> = candidate
            .ids()
            .map(|id| self.neighbor_terms(candidate, id))
            .collect();
        for (row, term) in terms.iter().enumerate() {
            let (Some(frag_ix), Some(el)) = (term.fragment, term.element) else {
                continue; // keywords have no context
            };
            let fragment = &query.fragments()[frag_ix];
            let query_ctx = self.neighbor_terms(fragment, el);
            if query_ctx.is_empty() {
                continue;
            }
            for (col, ctx) in cand_ctx.iter().enumerate() {
                let s = Self::set_similarity(&query_ctx, ctx);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn fragment_query() -> (QueryGraph, Vec<QueryTerm>) {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("frag")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked(),
        );
        q.add_keyword("diagnosis");
        let terms = q.terms();
        (q, terms)
    }

    #[test]
    fn matching_neighborhoods_score_high() {
        let (q, terms) = fragment_query();
        // Candidate shares the patient(height, gender) neighborhood but
        // under a renamed entity.
        let candidate = SchemaBuilder::new("cand")
            .entity("person", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        // Query "height"'s neighborhood is {patient, gender}; candidate
        // "height"'s is {person, gender}. The shared sibling "gender" gives
        // a positive context score even though the entity was renamed.
        let height_row = 1;
        let height_col = 1;
        assert!(
            m.get(height_row, height_col) > 0.3,
            "got {}",
            m.get(height_row, height_col)
        );
    }

    #[test]
    fn keywords_have_zero_context_rows() {
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| e.attr("height", DataType::Real))
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        let kw_row = terms.iter().position(|t| t.is_keyword()).unwrap();
        assert_eq!(m.row_max(kw_row), 0.0);
    }

    #[test]
    fn disjoint_neighborhoods_score_zero() {
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("invoice", |e| e.attr("total", DataType::Decimal))
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        let entries: Vec<_> = m.nonzero().collect();
        assert!(
            entries.is_empty(),
            "expected empty matrix, found {entries:?}"
        );
    }

    #[test]
    fn context_distinguishes_same_name_in_different_entities() {
        // "gender" inside patient(height, gender) should context-match the
        // candidate's patient.gender better than its doctor.gender.
        let (q, terms) = fragment_query();
        let candidate = SchemaBuilder::new("cand")
            .entity("patient", |e| {
                e.attr("height", DataType::Real)
                    .attr("gender", DataType::Text)
            })
            .entity("doctor", |e| {
                e.attr("specialty", DataType::Text)
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        let m = ContextMatcher::new().score(&terms, &q, &candidate);
        let gender_row = 2; // fragment order: patient, height, gender
                            // Candidate ids: 0 patient, 1 height, 2 gender, 3 doctor, 4 specialty, 5 gender
        assert!(
            m.get(gender_row, 2) > m.get(gender_row, 5),
            "patient.gender {} should out-context doctor.gender {}",
            m.get(gender_row, 2),
            m.get(gender_row, 5)
        );
    }
}
