//! Data-type compatibility matcher.
//!
//! When the query is a schema fragment (so its elements carry declared
//! types), type compatibility is a cheap extra signal for the ensemble: a
//! query column `height REAL` matching a candidate `height` is more
//! credible when the candidate's column is also numeric.

use schemr_model::{DataType, ElementKind, QueryGraph, QueryTerm, Schema};

use crate::matrix::SimilarityMatrix;
use crate::Matcher;

/// Compatibility of two data types, in `[0, 1]`.
pub fn type_compatibility(a: DataType, b: DataType) -> f64 {
    use DataType::*;
    if a == b {
        return match a {
            Unknown => 0.3, // both unknown says little
            _ => 1.0,
        };
    }
    match (a, b) {
        // Numeric family.
        (Integer, Real) | (Real, Integer) => 0.8,
        (Integer, Decimal) | (Decimal, Integer) => 0.8,
        (Real, Decimal) | (Decimal, Real) => 0.9,
        // Temporal family.
        (Date, DateTime) | (DateTime, Date) => 0.8,
        (Time, DateTime) | (DateTime, Time) => 0.7,
        (Date, Time) | (Time, Date) => 0.4,
        // Booleans are often encoded as small integers.
        (Boolean, Integer) | (Integer, Boolean) => 0.5,
        // Text can encode anything, weakly.
        (Text, _) | (_, Text) => 0.4,
        // Unknown is mildly compatible with everything.
        (Unknown, _) | (_, Unknown) => 0.3,
        _ => 0.1,
    }
}

/// The data-type matcher. Scores only (attribute term × attribute element)
/// pairs; entities and keywords get zero rows/columns.
#[derive(Debug, Default)]
pub struct TypeMatcher;

impl TypeMatcher {
    /// New matcher.
    pub fn new() -> Self {
        TypeMatcher
    }
}

impl Matcher for TypeMatcher {
    fn name(&self) -> &'static str {
        "type"
    }

    fn abstains(&self) -> bool {
        true
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        for (row, term) in terms.iter().enumerate() {
            let (Some(frag_ix), Some(el)) = (term.fragment, term.element) else {
                continue;
            };
            let q_el = query.fragments()[frag_ix].element(el);
            if q_el.kind != ElementKind::Attribute {
                continue;
            }
            for (col, id) in candidate.ids().enumerate() {
                let c_el = candidate.element(id);
                if c_el.kind != ElementKind::Attribute {
                    continue;
                }
                let s = type_compatibility(q_el.data_type, c_el.data_type);
                if s > 0.0 {
                    m.set(row, col, s);
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::SchemaBuilder;

    #[test]
    fn identical_concrete_types_are_fully_compatible() {
        assert_eq!(
            type_compatibility(DataType::Integer, DataType::Integer),
            1.0
        );
        assert_eq!(type_compatibility(DataType::Date, DataType::Date), 1.0);
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in DataType::ALL {
            for b in DataType::ALL {
                assert_eq!(
                    type_compatibility(a, b),
                    type_compatibility(b, a),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn family_relationships_beat_cross_family() {
        assert!(
            type_compatibility(DataType::Integer, DataType::Real)
                > type_compatibility(DataType::Integer, DataType::Date)
        );
        assert!(
            type_compatibility(DataType::Date, DataType::DateTime)
                > type_compatibility(DataType::Boolean, DataType::Binary)
        );
    }

    #[test]
    fn all_values_are_in_unit_interval() {
        for a in DataType::ALL {
            for b in DataType::ALL {
                let v = type_compatibility(a, b);
                assert!((0.0..=1.0).contains(&v), "{a} vs {b} = {v}");
            }
        }
    }

    #[test]
    fn matcher_only_scores_attribute_pairs() {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("f")
                .entity("patient", |e| e.attr("height", DataType::Real))
                .build_unchecked(),
        );
        q.add_keyword("diagnosis");
        let terms = q.terms();
        let candidate = SchemaBuilder::new("c")
            .entity("person", |e| e.attr("stature", DataType::Real))
            .build_unchecked();
        let m = TypeMatcher::new().score(&terms, &q, &candidate);
        // Row 0 = entity "patient": zero. Row 2 = keyword: zero.
        assert_eq!(m.row_max(0), 0.0);
        assert_eq!(m.row_max(2), 0.0);
        // Row 1 = height(REAL) vs col 1 = stature(REAL): 1.0; col 0 is the
        // entity: zero.
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(1, 1), 1.0);
    }
}
