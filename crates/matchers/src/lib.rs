//! # schemr-match
//!
//! The fine-grained schema-matching ensemble — Phase 2 of the paper's
//! search algorithm.
//!
//! "The top candidate schemas are evaluated against the query-graph and
//! ranked using an ensemble of fine-grained matchers. … Each matcher
//! produces a similarity matrix between query graph elements and schema
//! elements … the similarity matrices of the different matchers are
//! combined into a single matrix containing total similarity scores. We
//! combine the scores from each matcher with a weighting scheme, which is
//! initially uniform."
//!
//! Provided matchers:
//!
//! * [`NameMatcher`] — the paper's headline matcher: term normalization +
//!   all-n-gram overlap, robust to abbreviations, grammatical variants, and
//!   delimiters,
//! * [`ContextMatcher`] — neighbor-term-set similarity (Rahm & Bernstein's
//!   structural-context family),
//! * [`TokenMatcher`] — exact normalized-token overlap (the baseline the
//!   n-gram matcher is evaluated against in experiment E3),
//! * [`EditDistanceMatcher`] — Levenshtein similarity, a second ensemble
//!   member,
//! * [`TypeMatcher`] — data-type compatibility for fragment queries.
//!
//! [`Ensemble`] combines matcher outputs with per-matcher weights;
//! [`learner::WeightLearner`] fits those weights by logistic regression
//! over labeled matches, reproducing the meta-learning approach the paper cites
//! from Madhavan et al. (corpus-based schema matching).

pub mod context;
pub mod edit;
pub mod ensemble;
pub mod flooding;
pub mod learner;
pub mod matrix;
pub mod name;
pub mod prepare;
pub mod token;
pub mod typematch;

pub use context::ContextMatcher;
pub use edit::EditDistanceMatcher;
pub use ensemble::{BoundedRun, Ensemble, EnsembleRun};
pub use flooding::FloodingMatcher;
pub use matrix::SimilarityMatrix;
pub use name::NameMatcher;
pub use prepare::{EnsembleQuery, PreparedCandidate, PreparedQuery, PreparedSchema};
pub use token::TokenMatcher;
pub use typematch::TypeMatcher;

use schemr_model::{QueryGraph, QueryTerm, Schema};

/// A schema matcher: scores every (query term, candidate element) pair into
/// a [`SimilarityMatrix`] with values in `[0, 1]`.
pub trait Matcher: Send + Sync {
    /// Short identifier used in ensemble reports and learned-weight tables.
    fn name(&self) -> &'static str;

    /// Score `query` against `candidate`. Row *i* corresponds to
    /// `terms[i]`; column *j* to the candidate's element with id *j*.
    fn score(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix;

    /// Whether a zero cell from this matcher means "no opinion" rather
    /// than "dissimilar". Sparse, high-precision matchers (data-type /
    /// codebook agreement) return true so their silence does not dilute
    /// the dense matchers in the weighted combination.
    fn abstains(&self) -> bool {
        false
    }

    /// Precompute this matcher's candidate-side artifacts for `schema`.
    /// Candidate schemas are immutable between repository revisions, so
    /// the engine caches the result per (schema id, revision) and feeds
    /// it back through [`Matcher::score_prepared`]. The default returns
    /// an empty artifact, which makes `score_prepared` fall back to the
    /// unprepared path — third-party matchers keep working unchanged.
    fn prepare(&self, schema: &Schema) -> PreparedSchema {
        let _ = schema;
        PreparedSchema::default()
    }

    /// Precompute this matcher's query-side artifacts, once per search
    /// (the unprepared path rebuilds them once per *candidate*).
    fn prepare_query(&self, terms: &[QueryTerm], query: &QueryGraph) -> PreparedQuery {
        let _ = (terms, query);
        PreparedQuery::default()
    }

    /// Score using prepared artifacts. Implementations must produce a
    /// matrix bitwise-identical to [`Matcher::score`] — the engine
    /// switches between the two paths based on cache configuration, and
    /// the prepared-vs-naive equivalence oracle enforces the contract.
    /// The default ignores the artifacts and calls `score`.
    fn score_prepared(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        query: &QueryGraph,
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let _ = (prepared_query, prepared);
        self.score(terms, query, candidate)
    }

    /// A cheap upper bound on the maximum cell this matcher's
    /// [`Matcher::score_prepared`] matrix can contain for this
    /// (query, candidate) pair — from artifact set *sizes* alone, no
    /// intersections. The ensemble's early-exit pass compares the bound
    /// against the engine's running top-k floor to skip matchers that
    /// cannot lift a candidate into the top-k.
    ///
    /// Implementations must dominate every matrix cell (`score_prepared`
    /// max ≤ bound); over-estimating only costs speed, under-estimating
    /// breaks the bitwise top-k oracle. The default is the trivially safe
    /// `1.0`, which disables early exit for this matcher — third-party
    /// matchers keep working unchanged.
    fn score_upper_bound(
        &self,
        prepared_query: &PreparedQuery,
        terms: &[QueryTerm],
        prepared: &PreparedSchema,
        candidate: &Schema,
    ) -> f64 {
        let _ = (prepared_query, terms, prepared, candidate);
        1.0
    }
}
