//! Prepared matching artifacts: the per-search and per-candidate
//! precomputation that makes Phase 2 allocation-free on the hot path.
//!
//! The matcher ensemble scores every (query term × candidate element)
//! pair, and the raw [`crate::Matcher::score`] path re-analyzes every
//! element name and rebuilds its gram sets for every query. Candidate
//! schemas are immutable between repository revisions, so all of that
//! text analysis can be hoisted:
//!
//! * [`PreparedQuery`] — one matcher's query-side artifacts, built once
//!   per search (term gram signatures, per-term analyzed context sets,
//!   exact-token sets),
//! * [`PreparedSchema`] — one matcher's candidate-side artifacts
//!   (per-element name signatures, neighborhood term-id sets), built once
//!   per (schema, revision) and cached by the engine,
//! * [`PreparedCandidate`] — the ensemble-level bundle of one
//!   [`PreparedSchema`] per matcher, the unit the engine's
//!   revision-keyed artifact cache stores.
//!
//! Matchers without a prepared path leave their artifact structs empty;
//! [`crate::Matcher::score_prepared`]'s default implementation falls back
//! to the unprepared [`crate::Matcher::score`], so third-party matchers
//! keep working unchanged.

use schemr_model::{QueryGraph, QueryTerm, Schema};
use schemr_text::GramSet;

use crate::Matcher;

/// Query-side artifacts for one matcher, built once per search.
#[derive(Debug, Clone, Default)]
pub struct PreparedQuery {
    /// Per query term, the per-word all-n-gram signatures of the term
    /// text (name matcher).
    pub term_grams: Option<Vec<Vec<GramSet>>>,
    /// Per query term, the analyzed neighborhood term-id set — `None`
    /// for keywords, which carry no context (context matcher).
    pub term_contexts: Option<Vec<Option<GramSet>>>,
    /// Per query term, the exact analyzed-token id set (token matcher).
    pub term_tokens: Option<Vec<GramSet>>,
}

/// Candidate-side artifacts for one matcher, immutable for a given
/// (schema id, repository revision).
#[derive(Debug, Clone, Default)]
pub struct PreparedSchema {
    /// Per element (in [`Schema::ids`] order), the per-word all-n-gram
    /// signatures of the element name (name matcher).
    pub name_grams: Option<Vec<Vec<GramSet>>>,
    /// Per element, the analyzed neighborhood term-id set (context
    /// matcher).
    pub neighborhoods: Option<Vec<GramSet>>,
    /// Per element, the exact analyzed-token id set (token matcher).
    pub tokens: Option<Vec<GramSet>>,
}

impl PreparedSchema {
    /// Approximate heap footprint, for the engine's byte-budgeted
    /// artifact cache.
    pub fn heap_bytes(&self) -> usize {
        let vec_of_sets = |sets: &Vec<GramSet>| -> usize {
            sets.iter().map(GramSet::heap_bytes).sum::<usize>()
                + sets.capacity() * std::mem::size_of::<GramSet>()
        };
        let mut bytes = 0;
        if let Some(per_element) = &self.name_grams {
            bytes += per_element.iter().map(vec_of_sets).sum::<usize>()
                + per_element.capacity() * std::mem::size_of::<Vec<GramSet>>();
        }
        if let Some(sets) = &self.neighborhoods {
            bytes += vec_of_sets(sets);
        }
        if let Some(sets) = &self.tokens {
            bytes += vec_of_sets(sets);
        }
        bytes
    }
}

/// The ensemble-level bundle of prepared candidate artifacts: one
/// [`PreparedSchema`] per matcher, in registration order. This is the
/// value the engine's match-artifact cache stores per (schema id,
/// repository revision).
#[derive(Debug, Clone, Default)]
pub struct PreparedCandidate {
    /// One artifact per matcher, aligned with the ensemble's
    /// registration order.
    pub per_matcher: Vec<PreparedSchema>,
    /// Approximate heap footprint of all artifacts, for cache budgeting.
    pub bytes: usize,
}

impl PreparedCandidate {
    /// Prepare every matcher's artifacts for `schema`.
    pub fn build(matchers: &[&dyn Matcher], schema: &Schema) -> PreparedCandidate {
        let per_matcher: Vec<PreparedSchema> = matchers.iter().map(|m| m.prepare(schema)).collect();
        let bytes = per_matcher
            .iter()
            .map(PreparedSchema::heap_bytes)
            .sum::<usize>()
            + per_matcher.capacity() * std::mem::size_of::<PreparedSchema>()
            + std::mem::size_of::<PreparedCandidate>();
        PreparedCandidate { per_matcher, bytes }
    }
}

/// The ensemble-level bundle of prepared query artifacts: one
/// [`PreparedQuery`] per matcher, built once per search.
#[derive(Debug, Clone, Default)]
pub struct EnsembleQuery {
    /// One artifact per matcher, aligned with the ensemble's
    /// registration order.
    pub per_matcher: Vec<PreparedQuery>,
}

impl EnsembleQuery {
    /// Prepare every matcher's query-side artifacts.
    pub fn build(
        matchers: &[&dyn Matcher],
        terms: &[QueryTerm],
        query: &QueryGraph,
    ) -> EnsembleQuery {
        EnsembleQuery {
            per_matcher: matchers
                .iter()
                .map(|m| m.prepare_query(terms, query))
                .collect(),
        }
    }
}
