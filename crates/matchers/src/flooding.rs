//! A similarity-flooding structural matcher (Melnik, Garcia-Molina &
//! Rahm, ICDE 2002 — the classic member of the structural family surveyed
//! by Rahm & Bernstein, which the paper cites for its ensemble).
//!
//! Intuition: two elements are similar if their *neighborhoods* are
//! similar — recursively. Starting from name similarity, similarity flows
//! along matched structural relations (containment up/down, foreign keys)
//! until a fixpoint: a weak name match between `visit` and `encounter`
//! strengthens when their children (`date`×`date`, `patient_id`×`subject`)
//! match, and vice versa.
//!
//! Keywords carry no structure, so (like the context matcher) their rows
//! abstain and the ensemble lets the name matcher carry them.

use schemr_model::{ElementId, QueryGraph, QueryTerm, Schema};

use crate::matrix::SimilarityMatrix;
use crate::name::NameMatcher;
use crate::Matcher;

/// Flooding parameters.
#[derive(Debug, Clone, Copy)]
pub struct FloodingConfig {
    /// Maximum fixpoint iterations.
    pub max_iterations: usize,
    /// Stop once the largest per-pair change drops below this.
    pub epsilon: f64,
    /// Damping: each iteration keeps `(1-α)` of the initial name
    /// similarity and takes `α` from the relation-averaged neighbor flow.
    pub alpha: f64,
}

impl Default for FloodingConfig {
    fn default() -> Self {
        FloodingConfig {
            max_iterations: 8,
            epsilon: 1e-3,
            alpha: 0.5,
        }
    }
}

/// The similarity-flooding matcher.
pub struct FloodingMatcher {
    name: NameMatcher,
    config: FloodingConfig,
}

impl Default for FloodingMatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl FloodingMatcher {
    /// Matcher with default parameters.
    pub fn new() -> Self {
        FloodingMatcher {
            name: NameMatcher::new(),
            config: FloodingConfig::default(),
        }
    }

    /// Matcher with explicit parameters.
    pub fn with_config(config: FloodingConfig) -> Self {
        FloodingMatcher {
            name: NameMatcher::new(),
            config,
        }
    }

    /// Structural neighbor lists of a schema: for each element, the
    /// related elements under each relation (0 = parent, 1 = child,
    /// 2 = fk-adjacent entity).
    fn neighbors(schema: &Schema) -> Vec<[Vec<ElementId>; 3]> {
        let n = schema.len();
        let mut out: Vec<[Vec<ElementId>; 3]> = (0..n)
            .map(|_| [Vec::new(), Vec::new(), Vec::new()])
            .collect();
        for id in schema.ids() {
            if let Some(p) = schema.element(id).parent {
                out[id.index()][0].push(p);
                out[p.index()][1].push(id);
            }
        }
        for fk in schema.foreign_keys() {
            out[fk.from_entity.index()][2].push(fk.to_entity);
            out[fk.to_entity.index()][2].push(fk.from_entity);
        }
        out
    }

    /// Run flooding for one fragment against the candidate; fills the
    /// fragment's rows of `matrix`.
    fn flood_fragment(
        &self,
        fragment: &Schema,
        frag_rows: &[usize],
        candidate: &Schema,
        matrix: &mut SimilarityMatrix,
    ) {
        let nf = fragment.len();
        let nc = candidate.len();
        if nf == 0 || nc == 0 {
            return;
        }
        // σ⁰: name similarity per pair.
        let mut sigma0 = vec![0.0f64; nf * nc];
        for (fi, fid) in fragment.ids().enumerate() {
            for (ci, cid) in candidate.ids().enumerate() {
                sigma0[fi * nc + ci] = self
                    .name
                    .similarity(&fragment.element(fid).name, &candidate.element(cid).name);
            }
        }
        let fneigh = Self::neighbors(fragment);
        let cneigh = Self::neighbors(candidate);

        // Damped propagation instead of Melnik et al.'s per-matrix max
        // normalization: normalization rescales each candidate's matrix to
        // its own maximum, which makes scores incomparable *across*
        // candidates (a uniformly-weak candidate gets inflated to 1.0) —
        // unusable for ranking. Damping keeps every value a convex
        // combination of bounded quantities, so σ ∈ [0, 1] and candidates
        // compare directly:
        //   σ^{i+1}(p) = (1-α)·σ⁰(p) + α·mean_over_relations(fan-averaged flow)
        let mut sigma = sigma0.clone();
        let mut next = vec![0.0f64; nf * nc];
        let alpha = self.config.alpha;
        for _ in 0..self.config.max_iterations {
            for fi in 0..nf {
                for ci in 0..nc {
                    let mut flow = 0.0f64;
                    let mut relations_used = 0usize;
                    for rel in 0..3 {
                        let fr = &fneigh[fi][rel];
                        let cr = &cneigh[ci][rel];
                        if fr.is_empty() || cr.is_empty() {
                            continue;
                        }
                        relations_used += 1;
                        let fan = (fr.len() * cr.len()) as f64;
                        for &fa in fr {
                            for &ca in cr {
                                flow += sigma[fa.index() * nc + ca.index()] / fan;
                            }
                        }
                    }
                    let propagated = if relations_used > 0 {
                        flow / relations_used as f64
                    } else {
                        sigma0[fi * nc + ci]
                    };
                    next[fi * nc + ci] = (1.0 - alpha) * sigma0[fi * nc + ci] + alpha * propagated;
                }
            }
            let delta = sigma
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            std::mem::swap(&mut sigma, &mut next);
            if delta < self.config.epsilon {
                break;
            }
        }

        for (fi, &row) in frag_rows.iter().enumerate() {
            for ci in 0..nc {
                let v = sigma[fi * nc + ci];
                if v > 0.0 {
                    matrix.set(row, ci, v);
                }
            }
        }
    }
}

impl Matcher for FloodingMatcher {
    fn name(&self) -> &'static str {
        "flooding"
    }

    fn abstains(&self) -> bool {
        // Keyword rows are structurally mute; let the dense matchers carry
        // them rather than diluting.
        true
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        for (frag_ix, fragment) in query.fragments().iter().enumerate() {
            // Rows of this fragment, in element order.
            let frag_rows: Vec<usize> = terms
                .iter()
                .enumerate()
                .filter(|(_, t)| t.fragment == Some(frag_ix))
                .map(|(row, _)| row)
                .collect();
            debug_assert_eq!(frag_rows.len(), fragment.len());
            self.flood_fragment(fragment, &frag_rows, candidate, &mut m);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn fragment_query(build: impl FnOnce() -> Schema) -> (QueryGraph, Vec<QueryTerm>) {
        let mut q = QueryGraph::new();
        q.add_fragment(build());
        let t = q.terms();
        (q, t)
    }

    #[test]
    fn structure_rescues_renamed_entities() {
        // Fragment: visit(date, patient_id). Candidate A renames the
        // entity to `encounter` but keeps the children; candidate B has an
        // `encounter` with unrelated children. Flooding should score the
        // visit×encounter pair higher in A than in B.
        let (q, terms) = fragment_query(|| {
            SchemaBuilder::new("f")
                .entity("visit", |e| {
                    e.attr("date", DataType::Date)
                        .attr("patient_id", DataType::Integer)
                })
                .build_unchecked()
        });
        let a = SchemaBuilder::new("a")
            .entity("encounter", |e| {
                e.attr("date", DataType::Date)
                    .attr("patient_id", DataType::Integer)
            })
            .build_unchecked();
        let b = SchemaBuilder::new("b")
            .entity("encounter", |e| {
                e.attr("invoice", DataType::Decimal)
                    .attr("warehouse", DataType::Text)
            })
            .build_unchecked();
        let matcher = FloodingMatcher::new();
        let ma = matcher.score(&terms, &q, &a);
        let mb = matcher.score(&terms, &q, &b);
        // Row 0 = visit; col 0 = encounter in both candidates.
        assert!(
            ma.get(0, 0) > mb.get(0, 0) + 0.1,
            "A {} should beat B {}",
            ma.get(0, 0),
            mb.get(0, 0)
        );
    }

    #[test]
    fn identical_schemas_keep_a_strong_diagonal() {
        let build = || {
            SchemaBuilder::new("s")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked()
        };
        let (q, terms) = fragment_query(build);
        let candidate = build();
        let m = FloodingMatcher::new().score(&terms, &q, &candidate);
        for i in 0..candidate.len() {
            let diag = m.get(i, i);
            for j in 0..candidate.len() {
                if j != i {
                    assert!(
                        diag >= m.get(i, j) - 1e-9,
                        "diagonal {i} ({diag}) < off-diagonal ({i},{j}) = {}",
                        m.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn keyword_rows_are_zero() {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("f")
                .entity("patient", |e| e.attr("height", DataType::Real))
                .build_unchecked(),
        );
        q.add_keyword("diagnosis");
        let terms = q.terms();
        let candidate = SchemaBuilder::new("c")
            .entity("diagnosis", |e| e.attr("code", DataType::Text))
            .build_unchecked();
        let m = FloodingMatcher::new().score(&terms, &q, &candidate);
        let kw_row = terms.iter().position(|t| t.is_keyword()).unwrap();
        assert_eq!(m.row_max(kw_row), 0.0);
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let (q, terms) = fragment_query(|| {
            SchemaBuilder::new("f")
                .entity("a", |e| {
                    e.attr("x", DataType::Text).attr("y", DataType::Text)
                })
                .entity("b", |e| e.attr("z", DataType::Text))
                .foreign_key("a", &[], "b", &[])
                .build_unchecked()
        });
        let candidate = SchemaBuilder::new("c")
            .entity("a", |e| e.attr("x", DataType::Text))
            .entity("b", |e| {
                e.attr("z", DataType::Text).attr("y", DataType::Text)
            })
            .foreign_key("b", &[], "a", &[])
            .build_unchecked();
        let m = FloodingMatcher::new().score(&terms, &q, &candidate);
        for (_, _, v) in m.nonzero() {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn empty_fragment_produces_no_rows() {
        let mut q = QueryGraph::new();
        q.add_fragment(Schema::new("empty"));
        q.add_keyword("x");
        let terms = q.terms();
        let candidate = SchemaBuilder::new("c")
            .entity("t", |e| e.attr("x", DataType::Text))
            .build_unchecked();
        let m = FloodingMatcher::new().score(&terms, &q, &candidate);
        assert_eq!(m.rows(), 1); // just the keyword
        assert_eq!(m.row_max(0), 0.0);
    }
}
