//! Property-based tests for the matcher ensemble.

use proptest::prelude::*;
use schemr_match::{
    ContextMatcher, EditDistanceMatcher, Ensemble, Matcher, NameMatcher, SimilarityMatrix,
    TokenMatcher,
};
use schemr_model::{DataType, QueryGraph, QueryTerm, SchemaBuilder};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,12}"
}

fn keyword_terms(words: &[String]) -> (QueryGraph, Vec<QueryTerm>) {
    let mut q = QueryGraph::new();
    for w in words {
        q.add_keyword(w.clone());
    }
    let t = q.terms();
    (q, t)
}

proptest! {
    /// Scalar similarities are symmetric and bounded for every matcher.
    #[test]
    fn scalar_similarities_symmetric_and_bounded(a in arb_name(), b in arb_name()) {
        let name = NameMatcher::new();
        let token = TokenMatcher::new();
        let edit = EditDistanceMatcher::new();
        for (sa, sb) in [
            (name.similarity(&a, &b), name.similarity(&b, &a)),
            (token.similarity(&a, &b), token.similarity(&b, &a)),
            (edit.similarity(&a, &b), edit.similarity(&b, &a)),
        ] {
            prop_assert!((sa - sb).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&sa), "{}", sa);
        }
    }

    /// Identical names score 1.0 under name and token matchers.
    #[test]
    fn identity_scores_one(a in "[a-z][a-z0-9_]{0,12}") {
        let name = NameMatcher::new();
        let token = TokenMatcher::new();
        prop_assert!((name.similarity(&a, &a) - 1.0).abs() < 1e-9);
        prop_assert!((token.similarity(&a, &a) - 1.0).abs() < 1e-9);
    }

    /// Every matcher's matrix has the declared dimensions and values in
    /// [0, 1].
    #[test]
    fn matrices_have_unit_interval_values(
        keywords in proptest::collection::vec(arb_name(), 1..4),
        attrs in proptest::collection::vec(arb_name(), 1..5),
    ) {
        let (q, terms) = keyword_terms(&keywords);
        let candidate = SchemaBuilder::new("c")
            .entity("entity", move |mut e| {
                for (i, a) in attrs.iter().enumerate() {
                    e = e.attr(format!("{a}{i}"), DataType::Text);
                }
                e
            })
            .build_unchecked();
        let matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(NameMatcher::new()),
            Box::new(ContextMatcher::new()),
            Box::new(TokenMatcher::new()),
            Box::new(EditDistanceMatcher::new()),
        ];
        for m in &matchers {
            let matrix = m.score(&terms, &q, &candidate);
            prop_assert_eq!(matrix.rows(), terms.len());
            prop_assert_eq!(matrix.cols(), candidate.len());
            for (_, _, v) in matrix.nonzero() {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    /// Combining a matrix with itself at any weights reproduces it.
    #[test]
    fn self_combination_is_identity(
        rows in 1usize..4,
        cols in 1usize..4,
        cells in proptest::collection::vec(0.0f64..1.0, 1..16),
        w1 in 0.1f64..5.0,
        w2 in 0.1f64..5.0,
    ) {
        let mut m = SimilarityMatrix::zeros(rows, cols);
        for (i, v) in cells.iter().enumerate().take(rows * cols) {
            m.set(i / cols, i % cols, *v);
        }
        let combined = SimilarityMatrix::combine(&[(&m, w1), (&m, w2)]);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((combined.get(r, c) - m.get(r, c)).abs() < 1e-9);
            }
        }
    }

    /// Combination with abstention equals plain combination when no
    /// matcher abstains.
    #[test]
    fn abstention_off_matches_plain_combine(
        cells_a in proptest::collection::vec(0.0f64..1.0, 4),
        cells_b in proptest::collection::vec(0.0f64..1.0, 4),
        w in 0.1f64..3.0,
    ) {
        let mut a = SimilarityMatrix::zeros(2, 2);
        let mut b = SimilarityMatrix::zeros(2, 2);
        for i in 0..4 {
            a.set(i / 2, i % 2, cells_a[i]);
            b.set(i / 2, i % 2, cells_b[i]);
        }
        let plain = SimilarityMatrix::combine(&[(&a, 1.0), (&b, w)]);
        let sparse = SimilarityMatrix::combine_with_abstention(&[(&a, 1.0, false), (&b, w, false)]);
        for r in 0..2 {
            for c in 0..2 {
                prop_assert!((plain.get(r, c) - sparse.get(r, c)).abs() < 1e-12);
            }
        }
    }

    /// An abstaining all-zero matrix never changes the combination.
    #[test]
    fn abstaining_zero_matrix_is_neutral(
        cells in proptest::collection::vec(0.0f64..1.0, 4),
        w in 0.1f64..3.0,
    ) {
        let mut a = SimilarityMatrix::zeros(2, 2);
        for (i, v) in cells.iter().enumerate() {
            a.set(i / 2, i % 2, *v);
        }
        let zeros = SimilarityMatrix::zeros(2, 2);
        let with = SimilarityMatrix::combine_with_abstention(&[(&a, 1.0, false), (&zeros, w, true)]);
        for r in 0..2 {
            for c in 0..2 {
                prop_assert!((with.get(r, c) - a.get(r, c)).abs() < 1e-12);
            }
        }
    }

    /// The ensemble's combined matrix is bounded by the max of the member
    /// matrices per cell (a weighted average cannot exceed the max).
    #[test]
    fn ensemble_bounded_by_member_max(
        keywords in proptest::collection::vec(arb_name(), 1..3),
    ) {
        let (q, terms) = keyword_terms(&keywords);
        let candidate = SchemaBuilder::new("c")
            .entity("patient", |e| {
                e.attr("height", DataType::Real).attr("gender", DataType::Text)
            })
            .build_unchecked();
        let ensemble = Ensemble::standard();
        let combined = ensemble.combined(&terms, &q, &candidate);
        let members = ensemble.individual(&terms, &q, &candidate);
        for r in 0..combined.rows() {
            for c in 0..combined.cols() {
                let max_member = members
                    .iter()
                    .map(|(_, m)| m.get(r, c))
                    .fold(0.0f64, f64::max);
                prop_assert!(combined.get(r, c) <= max_member + 1e-12);
            }
        }
    }
}
