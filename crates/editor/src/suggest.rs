//! Suggestion engine: what should the designer add next?
//!
//! Searches the repository with the current draft as a query fragment,
//! then proposes attributes from the best-matching schemas that the draft
//! does not already cover — the iterative augmentation loop.

use schemr::{SchemrEngine, SearchRequest};
use schemr_match::NameMatcher;
use schemr_model::{DataType, ElementId, ElementKind, SchemaId};

use crate::session::EditSession;

/// A proposed addition to the draft.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Schema the suggestion comes from.
    pub source_schema: SchemaId,
    /// Title of that schema.
    pub source_title: String,
    /// The element to adopt.
    pub element: ElementId,
    /// Its dotted path.
    pub path: String,
    /// Its name.
    pub name: String,
    /// Its data type.
    pub data_type: DataType,
    /// How strongly the source schema matched the draft.
    pub schema_score: f64,
}

/// Compute suggestions for a session. Returns up to `limit` attributes
/// from the top-matching schemas whose names are not already covered by
/// the draft (name similarity below `novelty_threshold` against every
/// draft attribute).
pub fn suggest_for(
    session: &EditSession,
    engine: &SchemrEngine,
    limit: usize,
    novelty_threshold: f64,
) -> Vec<Suggestion> {
    if session.draft().is_empty() || limit == 0 {
        return Vec::new();
    }
    let request = SearchRequest::fragment(session.draft().clone()).with_limit(5);
    let Ok(results) = engine.search(&request) else {
        return Vec::new();
    };
    let matcher = NameMatcher::new();
    let draft_names: Vec<String> = session
        .draft()
        .attributes()
        .into_iter()
        .map(|a| session.draft().element(a).name.clone())
        .collect();

    let mut out = Vec::new();
    for result in results {
        let Some(stored) = engine.repository().get(result.id) else {
            continue;
        };
        for attr in stored.schema.attributes() {
            if out.len() >= limit {
                return out;
            }
            let el = stored.schema.element(attr);
            debug_assert_eq!(el.kind, ElementKind::Attribute);
            let covered = draft_names
                .iter()
                .any(|d| matcher.similarity(d, &el.name) >= novelty_threshold);
            let already_suggested = out
                .iter()
                .any(|s: &Suggestion| matcher.similarity(&s.name, &el.name) >= novelty_threshold);
            if !covered && !already_suggested {
                out.push(Suggestion {
                    source_schema: result.id,
                    source_title: result.title.clone(),
                    element: attr,
                    path: stored.schema.path(attr),
                    name: el.name.clone(),
                    data_type: el.data_type,
                    schema_score: result.score,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::DataType;
    use schemr_repo::{import::import_str, Repository};
    use std::sync::Arc;

    fn engine() -> SchemrEngine {
        let repo = Arc::new(Repository::new());
        import_str(
            &repo,
            "clinic",
            "",
            "CREATE TABLE patient (height REAL, gender TEXT, blood_pressure REAL, allergy TEXT)",
        )
        .unwrap();
        import_str(
            &repo,
            "store",
            "",
            "CREATE TABLE orders (total DECIMAL, quantity INT, discount REAL)",
        )
        .unwrap();
        let e = SchemrEngine::new(repo);
        e.reindex_full();
        e
    }

    #[test]
    fn suggests_uncovered_attributes_from_matching_schemas() {
        let engine = engine();
        let mut session = EditSession::new("draft");
        let e = session.add_entity("patient");
        session.add_attribute(e, "height", DataType::Real);
        session.add_attribute(e, "gender", DataType::Text);

        let suggestions = suggest_for(&session, &engine, 5, 0.8);
        assert!(!suggestions.is_empty());
        let names: Vec<&str> = suggestions.iter().map(|s| s.name.as_str()).collect();
        // Already-covered attributes are not re-suggested…
        assert!(!names.contains(&"height"));
        assert!(!names.contains(&"gender"));
        // …but the clinic's novel ones are.
        assert!(
            names.contains(&"blood_pressure") || names.contains(&"allergy"),
            "{names:?}"
        );
        assert!(suggestions[0].source_title == "clinic");
    }

    #[test]
    fn adopting_a_suggestion_closes_the_loop() {
        let engine = engine();
        let mut session = EditSession::new("draft");
        let e = session.add_entity("patient");
        session.add_attribute(e, "height", DataType::Real);
        let suggestions = suggest_for(&session, &engine, 3, 0.8);
        let pick = &suggestions[0];
        let stored = engine.repository().get(pick.source_schema).unwrap();
        let adopted = session.adopt(pick.source_schema, &stored.schema, pick.element, Some(e));
        assert_eq!(session.draft().element(adopted).name, pick.name);
        assert_eq!(session.provenance().len(), 1);
        // The adopted name is now covered and disappears from suggestions.
        let again = suggest_for(&session, &engine, 5, 0.8);
        assert!(again.iter().all(|s| s.name != pick.name));
    }

    #[test]
    fn empty_draft_or_zero_limit_suggest_nothing() {
        let engine = engine();
        let session = EditSession::new("draft");
        assert!(suggest_for(&session, &engine, 5, 0.8).is_empty());
        let mut s2 = EditSession::new("d2");
        let e = s2.add_entity("patient");
        s2.add_attribute(e, "height", DataType::Real);
        assert!(suggest_for(&s2, &engine, 0, 0.8).is_empty());
    }
}
