//! The editing session: a mutable draft with provenance bookkeeping.

use schemr_model::{DataType, Element, ElementId, Schema, SchemaId};
use schemr_parse::printer::print_ddl;
use schemr_repo::{Repository, RepositoryError};
use serde::{Deserialize, Serialize};

/// Where a draft element came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// The element in the draft.
    pub draft_element: ElementId,
    /// The repository schema it was adopted from.
    pub source_schema: SchemaId,
    /// The source element's dotted path at adoption time.
    pub source_path: String,
}

/// An implicit semantic mapping captured by adoption: the draft element
/// and its source element denote the same concept.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Draft side.
    pub draft_element: ElementId,
    /// Source schema.
    pub source_schema: SchemaId,
    /// Source element.
    pub source_element: ElementId,
}

/// A schema-drafting session.
#[derive(Debug, Clone)]
pub struct EditSession {
    draft: Schema,
    provenance: Vec<Provenance>,
    mappings: Vec<Mapping>,
}

impl EditSession {
    /// Start a fresh draft named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        EditSession {
            draft: Schema::new(name),
            provenance: Vec::new(),
            mappings: Vec::new(),
        }
    }

    /// Continue from an existing schema (e.g. a repository export).
    pub fn from_schema(schema: Schema) -> Self {
        EditSession {
            draft: schema,
            provenance: Vec::new(),
            mappings: Vec::new(),
        }
    }

    /// The current draft.
    pub fn draft(&self) -> &Schema {
        &self.draft
    }

    /// Provenance records, in adoption order.
    pub fn provenance(&self) -> &[Provenance] {
        &self.provenance
    }

    /// Captured implicit mappings.
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// Add a hand-written entity.
    pub fn add_entity(&mut self, name: impl Into<String>) -> ElementId {
        self.draft.add_root(Element::entity(name))
    }

    /// Add a hand-written attribute under `entity`.
    pub fn add_attribute(
        &mut self,
        entity: ElementId,
        name: impl Into<String>,
        data_type: DataType,
    ) -> ElementId {
        self.draft
            .add_child(entity, Element::attribute(name, data_type))
    }

    /// Rename a draft element.
    pub fn rename(&mut self, element: ElementId, name: impl Into<String>) {
        self.draft.element_mut(element).name = name.into();
    }

    /// Adopt one element from a repository schema into the draft under
    /// `parent` (None = as a root), recording provenance and the implicit
    /// mapping. Entities adopt *with their attributes*; attributes adopt
    /// alone.
    pub fn adopt(
        &mut self,
        source_id: SchemaId,
        source: &Schema,
        element: ElementId,
        parent: Option<ElementId>,
    ) -> ElementId {
        let src = source.element(element);
        let mut copy = src.clone();
        copy.parent = None;
        let new_id = match parent {
            Some(p) => self.draft.add_child(p, copy),
            None => self.draft.add_root(copy),
        };
        self.record(new_id, source_id, source, element);
        if src.kind == schemr_model::ElementKind::Entity {
            for child in source.children(element) {
                let c = source.element(child);
                if c.kind == schemr_model::ElementKind::Attribute {
                    let mut child_copy = c.clone();
                    child_copy.parent = None;
                    let child_id = self.draft.add_child(new_id, child_copy);
                    self.record(child_id, source_id, source, child);
                }
            }
        }
        new_id
    }

    fn record(
        &mut self,
        draft_element: ElementId,
        source_schema: SchemaId,
        source: &Schema,
        source_element: ElementId,
    ) {
        self.provenance.push(Provenance {
            draft_element,
            source_schema,
            source_path: source.path(source_element),
        });
        self.mappings.push(Mapping {
            draft_element,
            source_schema,
            source_element,
        });
    }

    /// Which repository schemas the draft reuses, with element counts —
    /// the paper's "information on schema re-use".
    pub fn reuse_summary(&self) -> Vec<(SchemaId, usize)> {
        let mut counts: std::collections::BTreeMap<SchemaId, usize> = Default::default();
        for p in &self.provenance {
            *counts.entry(p.source_schema).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Export the draft as DDL.
    pub fn export_ddl(&self) -> String {
        print_ddl(&self.draft)
    }

    /// Store the draft in the repository; the description records the
    /// provenance trail.
    pub fn commit(
        &self,
        repo: &Repository,
        title: &str,
        summary: &str,
    ) -> Result<SchemaId, RepositoryError> {
        let id = repo.insert(title, summary, self.draft.clone())?;
        if !self.provenance.is_empty() {
            let trail: Vec<String> = self
                .provenance
                .iter()
                .map(|p| {
                    format!(
                        "{} <- {}:{}",
                        self.draft.path(p.draft_element),
                        p.source_schema,
                        p.source_path
                    )
                })
                .collect();
            repo.annotate(id, trail.join("; "), "schemr-editor")?;
        }
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::SchemaBuilder;

    fn source() -> (SchemaId, Schema) {
        (
            SchemaId(7),
            SchemaBuilder::new("clinic")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked(),
        )
    }

    #[test]
    fn hand_editing_builds_a_draft() {
        let mut s = EditSession::new("mydraft");
        let e = s.add_entity("visit");
        s.add_attribute(e, "date", DataType::Date);
        s.rename(e, "encounter");
        assert_eq!(s.draft().element(e).name, "encounter");
        assert_eq!(s.draft().attributes().len(), 1);
        assert!(s.provenance().is_empty());
    }

    #[test]
    fn adopting_an_attribute_records_provenance_and_mapping() {
        let (sid, src) = source();
        let mut s = EditSession::new("draft");
        let entity = s.add_entity("subject");
        let height = src.attributes()[0];
        let adopted = s.adopt(sid, &src, height, Some(entity));
        assert_eq!(s.draft().element(adopted).name, "height");
        assert_eq!(s.draft().element(adopted).parent, Some(entity));
        assert_eq!(s.provenance().len(), 1);
        assert_eq!(s.provenance()[0].source_path, "patient.height");
        assert_eq!(s.mappings()[0].source_element, height);
        assert_eq!(s.reuse_summary(), vec![(sid, 1)]);
    }

    #[test]
    fn adopting_an_entity_brings_its_attributes() {
        let (sid, src) = source();
        let mut s = EditSession::new("draft");
        let adopted = s.adopt(sid, &src, src.entities()[0], None);
        assert_eq!(s.draft().children(adopted).len(), 2);
        assert_eq!(s.provenance().len(), 3);
        assert_eq!(s.reuse_summary(), vec![(sid, 3)]);
        assert!(schemr_model::validate(s.draft()).is_empty());
    }

    #[test]
    fn export_and_commit_round_trip() {
        let (sid, src) = source();
        let mut s = EditSession::new("draft");
        s.adopt(sid, &src, src.entities()[0], None);
        let ddl = s.export_ddl();
        assert!(ddl.contains("CREATE TABLE patient"));
        let repo = Repository::new();
        let id = s
            .commit(&repo, "my_patient_schema", "drafted with schemr")
            .unwrap();
        let stored = repo.get(id).unwrap();
        assert_eq!(stored.metadata.source, "schemr-editor");
        assert!(stored.metadata.description.contains("patient.height"));
        assert!(stored.metadata.description.contains("s7:patient"));
    }

    #[test]
    fn commit_without_adoptions_skips_the_trail() {
        let mut s = EditSession::new("draft");
        let e = s.add_entity("thing");
        for a in ["a", "b", "c", "d"] {
            s.add_attribute(e, a, DataType::Text);
        }
        let repo = Repository::new();
        let id = s.commit(&repo, "t", "").unwrap();
        assert!(repo.get(id).unwrap().metadata.description.is_empty());
    }
}
