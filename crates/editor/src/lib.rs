//! # schemr-editor
//!
//! The schema editor integration the paper sketches: "integrating Schemr
//! with a schema editor would allow for a new model development process, in
//! which search results are iteratively used to augment a schema. In this
//! process, we can also capture implicit semantic mappings between schema
//! elements, information on schema re-use, and the provenance of new
//! schema entities."
//!
//! [`EditSession`] holds a draft schema and drives the loop:
//!
//! 1. the designer sketches entities/attributes,
//! 2. [`suggest_for`] searches the repository with the current
//!    draft as a query fragment and proposes concrete elements to adopt,
//! 3. [`EditSession::adopt`] copies an element from a result schema into
//!    the draft, recording a [`Provenance`] entry and an implicit
//!    [`Mapping`] between the draft element and its source,
//! 4. repeat; [`EditSession::export_ddl`] emits the finished design, and
//!    [`EditSession::commit`] stores it in the repository with its
//!    provenance trail.

mod session;
mod suggest;

pub use session::{EditSession, Mapping, Provenance};
pub use suggest::{suggest_for, Suggestion};
