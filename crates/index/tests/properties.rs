//! Property-based tests for the inverted index: codec round trips, search
//! invariants, and tombstone behaviour.

use proptest::prelude::*;
use schemr_index::{codec, Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;

fn arb_documents() -> impl Strategy<Value = Vec<IndexDocument>> {
    proptest::collection::vec(
        (
            0u64..32,
            "[a-z ]{0,24}",
            proptest::collection::vec("[a-z_.]{1,16}", 0..8),
        ),
        1..16,
    )
    .prop_map(|docs| {
        docs.into_iter()
            .map(|(id, title, elements)| IndexDocument {
                id: SchemaId(id),
                title,
                summary: String::new(),
                elements,
                docs: vec![],
            })
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{1,8}", 1..5)
}

proptest! {
    /// Codec round trip preserves stats and search behaviour exactly.
    #[test]
    fn codec_round_trip(docs in arb_documents(), query in arb_query()) {
        let index = Index::new();
        index.add_all(&docs);
        let decoded = codec::decode(&codec::encode(&index)).unwrap();
        prop_assert_eq!(decoded.stats(), index.stats());
        let q: Vec<&str> = query.iter().map(String::as_str).collect();
        let a = index.search(&q, &SearchOptions::default());
        let b = decoded.search(&q, &SearchOptions::default());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.id, y.id);
            prop_assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    /// The decoder never panics on corrupted bytes.
    #[test]
    fn decoder_never_panics(docs in arb_documents(), cut in 0usize..4096, flip in 0usize..4096) {
        let index = Index::new();
        index.add_all(&docs);
        let mut data = codec::encode(&index).to_vec();
        if !data.is_empty() {
            let f = flip % data.len();
            data[f] ^= 0xA5;
            let c = cut % (data.len() + 1);
            let _ = codec::decode(&data[..c]);
            let _ = codec::decode(&data);
        }
    }

    /// Hits are sorted by non-increasing score and contain no duplicates.
    #[test]
    fn hits_sorted_and_unique(docs in arb_documents(), query in arb_query()) {
        let index = Index::new();
        index.add_all(&docs);
        let q: Vec<&str> = query.iter().map(String::as_str).collect();
        let hits = index.search(&q, &SearchOptions::default());
        for w in hits.windows(2) {
            prop_assert!(w[0].score >= w[1].score - 1e-12);
        }
        let ids: std::collections::HashSet<_> = hits.iter().map(|h| h.id).collect();
        prop_assert_eq!(ids.len(), hits.len());
    }

    /// top_n truncation returns a prefix of the full ranking.
    #[test]
    fn top_n_is_a_prefix(docs in arb_documents(), query in arb_query(), n in 1usize..8) {
        let index = Index::new();
        index.add_all(&docs);
        let q: Vec<&str> = query.iter().map(String::as_str).collect();
        let full = index.search(&q, &SearchOptions { top_n: usize::MAX, ..Default::default() });
        let cut = index.search(&q, &SearchOptions { top_n: n, ..Default::default() });
        prop_assert_eq!(cut.len(), full.len().min(n));
        for (a, b) in cut.iter().zip(&full) {
            prop_assert_eq!(a.id, b.id);
        }
    }

    /// Removing every document yields an empty index; vacuum agrees.
    #[test]
    fn remove_all_then_vacuum(docs in arb_documents()) {
        let index = Index::new();
        index.add_all(&docs);
        let ids: Vec<SchemaId> = docs.iter().map(|d| d.id).collect();
        for id in &ids {
            index.remove(*id);
        }
        prop_assert!(index.is_empty());
        index.vacuum();
        let st = index.stats();
        prop_assert_eq!(st.total_docs, 0);
        prop_assert_eq!(st.distinct_terms, 0);
    }

    /// Vacuum never changes search results.
    #[test]
    fn vacuum_preserves_search(docs in arb_documents(), query in arb_query()) {
        let index = Index::new();
        index.add_all(&docs);
        // Remove every third document to create tombstones.
        for d in docs.iter().step_by(3) {
            index.remove(d.id);
        }
        let q: Vec<&str> = query.iter().map(String::as_str).collect();
        let before = index.search(&q, &SearchOptions::default());
        index.vacuum();
        let after = index.search(&q, &SearchOptions::default());
        prop_assert_eq!(before.len(), after.len());
        for (x, y) in before.iter().zip(&after) {
            prop_assert_eq!(x.id, y.id);
            prop_assert!((x.score - y.score).abs() < 1e-9, "{} vs {}", x.score, y.score);
        }
    }

    /// The pruner's stored per-list bounds plus the proximity ceiling
    /// dominate every realized document score — the soundness invariant
    /// WAND/MaxScore pruning rests on. Checked against the *stored*
    /// bounds (stale-high after tombstones), with proximity enabled and
    /// coordination off (coordination multiplies by ≤ 1, so it only
    /// shrinks realized scores; proximity *adds* after the impact sum,
    /// so the ceiling must cover it explicitly).
    #[test]
    fn stored_bounds_dominate_realized_scores(
        docs in arb_documents(),
        query in arb_query(),
        stride in 2usize..5,
    ) {
        let index = Index::new();
        index.add_all(&docs);
        // Tombstone a slice so stored bounds go stale-high.
        for d in docs.iter().step_by(stride) {
            index.remove(d.id);
        }
        let terms: Vec<String> = query.clone();
        let distinct: std::collections::HashSet<&str> =
            query.iter().map(String::as_str).collect();
        let intro = index.introspect(usize::MAX);
        let impact_ceiling: f64 = intro
            .top_lists
            .iter()
            .filter(|l| distinct.contains(l.term.as_str()))
            .map(|l| l.stored_bound)
            .sum();
        let proximity_weight = 0.25;
        let adj_pairs = terms.windows(2).filter(|w| w[0] != w[1]).count() as f64;
        let boost_sum: f64 = schemr_index::Field::ALL.iter().map(|f| f.boost()).sum();
        let ceiling =
            (impact_ceiling + adj_pairs * proximity_weight * boost_sum) * (1.0 + 1e-9);
        let options = SearchOptions {
            top_n: usize::MAX,
            coordination: false,
            proximity_weight,
            prune: false,
        };
        for hit in index.search_terms(&terms, &options) {
            prop_assert!(
                hit.score <= ceiling,
                "realized score {} exceeds pruning ceiling {}",
                hit.score,
                ceiling
            );
        }
    }

    /// Matched-term counts never exceed the number of distinct query
    /// terms, and scores are positive.
    #[test]
    fn hit_invariants(docs in arb_documents(), query in arb_query()) {
        let index = Index::new();
        index.add_all(&docs);
        let q: Vec<&str> = query.iter().map(String::as_str).collect();
        let distinct: std::collections::HashSet<_> = query.iter().collect();
        for hit in index.search(&q, &SearchOptions::default()) {
            prop_assert!(hit.matched_terms >= 1);
            prop_assert!(hit.matched_terms <= distinct.len());
            prop_assert!(hit.score > 0.0);
        }
    }
}

/// Regression: processing postings lists in a flat priority order let a
/// *different* term's list land between two field lists of the same term,
/// resetting the per-document matched-term stamp and double-counting the
/// first term. With coordination on, that pushed the coordination factor
/// past 1 (matched 3 of 2 distinct terms here) — inflating scores and, in
/// pruned mode, invalidating the `coordination ≤ 1` assumption the
/// admission bounds rest on. List order must keep each term's field lists
/// adjacent.
#[test]
fn interleaved_field_lists_never_double_count_a_term() {
    let index = Index::new();
    // "alpha" appears in doc 0's title (df 1 → high idf, boost 2.0) and
    // in 21 documents' elements (low idf, boost 1.5); "beta" only in doc
    // 0's elements (df 1 → high idf, boost 1.5). A flat boost·idf sort
    // orders the lists alpha-title, beta-elements, alpha-elements —
    // exactly the interleaving that broke the stamp.
    index.add(&IndexDocument {
        id: SchemaId(0),
        title: "alpha".into(),
        summary: String::new(),
        elements: vec!["alpha".into(), "beta".into()],
        docs: vec![],
    });
    for i in 1..=20u64 {
        index.add(&IndexDocument {
            id: SchemaId(i),
            title: String::new(),
            summary: String::new(),
            elements: vec!["alpha".into()],
            docs: vec![],
        });
    }
    for prune in [false, true] {
        let options = SearchOptions {
            prune,
            ..Default::default()
        };
        let hits = index.search(&["alpha", "beta"], &options);
        let top = &hits[0];
        assert_eq!(top.id, SchemaId(0), "prune={prune}");
        assert_eq!(
            top.matched_terms, 2,
            "prune={prune}: doc 0 matches exactly the two distinct terms"
        );
        for h in &hits {
            assert!(h.matched_terms <= 2, "prune={prune}: {:?}", h);
        }
    }
}
