//! Concurrent readers vs. churn + seal + merge: the lock-free invariant.
//!
//! N searcher threads race a writer that puts, removes, seals (tiny
//! threshold), and a merger that compacts continuously. Every result set
//! a searcher observes is captured together with the snapshot's epoch
//! (`search_terms_versioned` reads both from one `Arc` grab), and after
//! the race each observation is replayed against a monolithic index
//! built from exactly the documents live at that epoch — ids, order,
//! matched counts, and score bit patterns must all be identical. This is
//! the invariant the old "revision read under the search's own lock"
//! comment provided; with lock-free reads it must hold by construction
//! (epoch travels inside the snapshot), and this test pins it.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use schemr_index::{Hit, Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;

/// xorshift64* — deterministic, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const VOCAB: &[&str] = &[
    "patient",
    "height",
    "gender",
    "diagnosis",
    "order",
    "total",
    "quantity",
    "doctor",
    "specimen",
    "assay",
];

/// Pre-analyzed query term lists — both the racing searches and the
/// replay oracle use `search_terms`, so analyzer behavior cancels out.
fn queries() -> Vec<Vec<String>> {
    vec![
        vec!["patient".into(), "height".into()],
        vec!["order".into(), "total".into(), "quantity".into()],
        vec!["doctor".into()],
        vec!["specimen".into(), "assay".into(), "gender".into()],
    ]
}

/// One scripted mutation. The script is generated against a model so
/// every op succeeds — op k is then exactly mutation k, and a snapshot at
/// epoch m is the state after `ops[0..m]`.
#[derive(Clone)]
enum Op {
    Put(IndexDocument),
    Remove(u64),
}

fn doc(id: u64, rng: &mut Rng) -> IndexDocument {
    let n = 2 + rng.below(4) as usize;
    let elements = (0..n)
        .map(|_| VOCAB[rng.below(VOCAB.len() as u64) as usize].to_string())
        .collect();
    IndexDocument {
        id: SchemaId(id),
        title: format!("schema{}", rng.below(4)),
        summary: String::new(),
        elements,
        docs: vec![],
    }
}

fn script(steps: usize, ids: u64, seed: u64) -> Vec<Op> {
    let mut rng = Rng(seed);
    let mut live: BTreeSet<u64> = BTreeSet::new();
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        if !live.is_empty() && rng.below(3) == 0 {
            let nth = rng.below(live.len() as u64) as usize;
            let id = *live.iter().nth(nth).unwrap();
            live.remove(&id);
            ops.push(Op::Remove(id));
        } else {
            let id = rng.below(ids);
            live.insert(id);
            ops.push(Op::Put(doc(id, &mut rng)));
        }
    }
    ops
}

/// A result set one searcher observed, with the epoch it was computed at.
struct Observation {
    mutations: u64,
    query: usize,
    hits: Vec<Hit>,
}

#[test]
fn concurrent_reads_are_bitwise_consistent_with_their_epoch() {
    const STEPS: usize = 2_500;
    const IDS: u64 = 48;
    const SEARCHERS: usize = 3;

    let ops = Arc::new(script(STEPS, IDS, 0x57E5_5EED));
    // Tiny seal threshold: the writer seals every few puts, so searchers
    // constantly cross segment boundaries mid-churn.
    let index = Arc::new(Index::new().with_seal_threshold(4));
    let done = Arc::new(AtomicBool::new(false));
    let options = SearchOptions {
        top_n: 10,
        ..Default::default()
    };

    let mut searchers = Vec::new();
    for s in 0..SEARCHERS {
        let index = index.clone();
        let done = done.clone();
        let options = options.clone();
        searchers.push(std::thread::spawn(move || {
            let queries = queries();
            let mut observations: Vec<Observation> = Vec::new();
            let mut seen: BTreeSet<(u64, usize)> = BTreeSet::new();
            let mut qi = s; // stagger starting queries across threads
            loop {
                let finished = done.load(Ordering::Relaxed);
                let q = qi % queries.len();
                qi += 1;
                let (hits, revision) = index.search_terms_versioned(&queries[q], &options, None);
                if seen.insert((revision.mutations, q)) {
                    observations.push(Observation {
                        mutations: revision.mutations,
                        query: q,
                        hits,
                    });
                }
                if finished {
                    return observations;
                }
            }
        }));
    }

    // A dedicated merger hammers compaction the whole time — merges must
    // be invisible to every searcher.
    let merger = {
        let index = index.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut merges = 0u64;
            while !done.load(Ordering::Relaxed) {
                if index.merge(0.02).is_some() {
                    merges += 1;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            merges
        })
    };

    // The writer replays the script with small pauses so searchers and
    // the merger genuinely interleave with seals and publishes.
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Put(d) => index.add(d),
            Op::Remove(id) => assert!(index.remove(SchemaId(*id)), "scripted remove {i}"),
        }
        if i % 8 == 7 {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    done.store(true, Ordering::Relaxed);

    let merges = merger.join().unwrap();
    let observed: Vec<Vec<Observation>> =
        searchers.into_iter().map(|s| s.join().unwrap()).collect();

    // Sanity: the race actually raced — merges ran, and searchers caught
    // snapshots strictly between the first and last mutation.
    assert!(merges > 0, "the merger thread never committed a merge");
    let mut all: Vec<Observation> = observed.into_iter().flatten().collect();
    assert!(
        all.iter()
            .any(|o| o.mutations > 0 && o.mutations < STEPS as u64),
        "no searcher observed a mid-churn snapshot"
    );

    // Replay each observed epoch into a monolith and compare bitwise.
    // Observations are verified in epoch order so the model advances
    // through the script exactly once.
    all.sort_by_key(|o| o.mutations);
    let queries = queries();
    let mut model: BTreeMap<u64, IndexDocument> = BTreeMap::new();
    let mut applied = 0usize;
    let mut oracle: Option<(u64, Index)> = None;
    let mut distinct_epochs = 0usize;
    for obs in &all {
        let m = obs.mutations as usize;
        assert!(m <= STEPS, "epoch beyond the script");
        while applied < m {
            match &ops[applied] {
                Op::Put(d) => {
                    model.insert(d.id.0, d.clone());
                }
                Op::Remove(id) => {
                    assert!(model.remove(id).is_some());
                }
            }
            applied += 1;
        }
        if oracle.as_ref().map(|(e, _)| *e) != Some(obs.mutations) {
            let mono = Index::new().with_seal_threshold(usize::MAX);
            mono.add_all(model.values());
            oracle = Some((obs.mutations, mono));
            distinct_epochs += 1;
        }
        let (_, mono) = oracle.as_ref().unwrap();
        let expect = mono.search_terms(&queries[obs.query], &options);
        assert_eq!(
            expect.len(),
            obs.hits.len(),
            "epoch {} query {}: hit count",
            obs.mutations,
            obs.query
        );
        for (i, (a, b)) in obs.hits.iter().zip(&expect).enumerate() {
            assert_eq!(
                a.id, b.id,
                "epoch {} query {} rank {i}",
                obs.mutations, obs.query
            );
            assert_eq!(
                a.matched_terms, b.matched_terms,
                "epoch {} query {} rank {i}",
                obs.mutations, obs.query
            );
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "epoch {} query {} rank {i}: score bits {} vs {}",
                obs.mutations,
                obs.query,
                a.score,
                b.score
            );
        }
    }
    assert!(
        distinct_epochs > 10,
        "searchers observed only {distinct_epochs} distinct epochs — not a real race"
    );
}
