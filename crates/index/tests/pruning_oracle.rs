//! Pruned-vs-exhaustive equivalence oracle.
//!
//! WAND/MaxScore pruning must be *invisible*: for every query, option
//! combination, and index state — churned with tombstones (stale-high
//! bounds), codec round-tripped (bounds rebuilt tight on load), vacuumed
//! (bounds rebuilt tight in place) — the pruned search must return hits
//! bitwise identical to the exhaustive scan: same ids, same
//! `matched_terms`, same order, and the exact same `f64` bit patterns
//! for every score. Any tolerance here would let a pruning bug hide
//! behind "close enough" ranking drift, so there is none.
//!
//! Deterministic hand-rolled RNG — no external property-testing
//! dependency (same idiom as `churn.rs`).

use schemr_index::{codec, Hit, Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;

/// xorshift64* — deterministic, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const VOCAB: &[&str] = &[
    "patient",
    "height",
    "gender",
    "diagnosis",
    "order",
    "total",
    "quantity",
    "doctor",
    "specimen",
    "assay",
    "patient_height",
    "order_total",
];

fn doc(id: u64, rng: &mut Rng) -> IndexDocument {
    let n = 2 + rng.below(5) as usize;
    let elements = (0..n)
        .map(|_| VOCAB[rng.below(VOCAB.len() as u64) as usize].to_string())
        .collect();
    IndexDocument {
        id: SchemaId(id),
        title: format!("schema{}", rng.below(6)),
        summary: String::new(),
        elements,
        docs: vec![],
    }
}

/// Queries covering the pruner's interesting shapes: single common term,
/// multi-term disjunctions, an intact compound name (proximity credit),
/// a repeated term (one semantic term), and a miss.
const QUERIES: &[&[&str]] = &[
    &["patient"],
    &["patient", "height"],
    &["order", "total", "doctor"],
    &["specimen", "assay", "gender", "quantity"],
    &["patient_height"],
    &["patient", "patient"],
    &["patient", "no_such_term"],
];

fn assert_bitwise(pruned: &[Hit], exhaustive: &[Hit], what: &str) {
    assert_eq!(
        pruned.len(),
        exhaustive.len(),
        "{what}: hit counts differ (pruning dropped or invented a hit)"
    );
    for (i, (p, e)) in pruned.iter().zip(exhaustive).enumerate() {
        assert_eq!(p.id, e.id, "{what}: rank {i} id differs");
        assert_eq!(
            p.matched_terms, e.matched_terms,
            "{what}: rank {i} matched_terms differs"
        );
        assert_eq!(
            p.score.to_bits(),
            e.score.to_bits(),
            "{what}: rank {i} score bits differ ({} vs {})",
            p.score,
            e.score
        );
    }
}

/// Run every option combination against one index state and demand
/// bitwise identity between pruned and exhaustive results.
fn oracle(index: &Index, state: &str) {
    let corpus = index.len().max(1);
    for (qi, q) in QUERIES.iter().enumerate() {
        for coordination in [true, false] {
            for proximity_weight in [0.25, 0.0] {
                for top_n in [1usize, 10, corpus] {
                    let base = SearchOptions {
                        top_n,
                        coordination,
                        proximity_weight,
                        prune: false,
                    };
                    let exhaustive = index.search(q, &base);
                    let pruned = index.search(
                        q,
                        &SearchOptions {
                            prune: true,
                            ..base
                        },
                    );
                    assert_bitwise(
                        &pruned,
                        &exhaustive,
                        &format!(
                            "{state}, query {qi}, coord={coordination}, \
                             prox={proximity_weight}, top_n={top_n}"
                        ),
                    );
                }
            }
        }
    }
}

#[test]
fn pruning_is_bitwise_invisible_across_churn_and_vacuum() {
    let mut rng = Rng(0xBEEF_F00D_5EED_0001);
    let index = Index::new();
    for step in 0..700u32 {
        let id = rng.below(96);
        match rng.below(3) {
            0 | 1 => index.add(&doc(id, &mut rng)),
            _ => {
                index.remove(SchemaId(id));
            }
        }
        // Oracle checkpoints mid-churn: bounds are at their stalest right
        // after a burst of tombstones, which is exactly when an unsound
        // bound would mis-prune.
        if step % 175 == 174 {
            oracle(&index, &format!("churned@{step}"));
        }
    }

    // Codec round trip rebuilds bounds tight on load.
    let decoded = codec::decode(&codec::encode(&index)).unwrap();
    oracle(&decoded, "decoded");

    // Vacuum rebuilds bounds tight in place; pruning must stay invisible
    // both right after and through further churn on the compacted index.
    index.vacuum();
    oracle(&index, "vacuumed");
    for _ in 0..120 {
        let id = rng.below(96);
        if rng.below(3) == 0 {
            index.remove(SchemaId(id));
        } else {
            index.add(&doc(id, &mut rng));
        }
    }
    oracle(&index, "vacuumed+rechurned");
}

#[test]
fn pruning_is_bitwise_invisible_on_a_skewed_corpus() {
    // Heavy skew: one ubiquitous term and a handful of rare ones. This is
    // the shape where pruning actually fires (the common list is provably
    // hopeless once the rare lists fill the top-n floor), so bitwise
    // identity here exercises the suppressed-block probe path, not just
    // the exhaustive fallback.
    let index = Index::new();
    for i in 0..400u64 {
        let mut elements = vec!["patient".to_string(); 1 + (i % 3) as usize];
        if i % 97 == 0 {
            elements.push("specimen".to_string());
        }
        if i % 181 == 0 {
            elements.push("assay".to_string());
        }
        index.add(&IndexDocument {
            id: SchemaId(i),
            title: String::new(),
            summary: String::new(),
            elements,
            docs: vec![],
        });
    }
    // Tombstone a band in the middle so block maxima go stale.
    for i in 100..220u64 {
        index.remove(SchemaId(i));
    }
    oracle(&index, "skewed");
}
