//! Bitwise segmented-vs-monolithic oracle.
//!
//! Segmentation must change *where* postings live, never *what* a query
//! returns: for any churn history, a segmented index (small seal
//! threshold, background merges) must return hits whose ids, matched
//! counts, ranked order, and raw score *bit patterns* are identical to a
//! monolithic index (`usize::MAX` seal threshold) rebuilt from the live
//! documents — across sealing, merging, forced vacuums, codec round
//! trips, and with pruning both on and off. Deterministic hand-rolled
//! RNG — no external property-testing dependency.

use std::collections::BTreeMap;

use schemr_index::{Hit, Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;

/// xorshift64* — deterministic, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const VOCAB: &[&str] = &[
    "patient",
    "height",
    "gender",
    "diagnosis",
    "order",
    "total",
    "quantity",
    "doctor",
    "specimen",
    "assay",
    "patient_height",
    "order_total",
];

const QUERIES: &[&[&str]] = &[
    &["patient", "height"],
    &["order", "total", "quantity"],
    &["doctor"],
    &["specimen", "assay", "gender", "diagnosis"],
    &["patient_height", "order_total"],
];

fn doc(id: u64, rng: &mut Rng) -> IndexDocument {
    let n = 2 + rng.below(5) as usize;
    let elements = (0..n)
        .map(|_| VOCAB[rng.below(VOCAB.len() as u64) as usize].to_string())
        .collect();
    IndexDocument {
        id: SchemaId(id),
        title: format!("schema{}", rng.below(6)),
        summary: String::new(),
        elements,
        docs: vec![],
    }
}

/// A monolithic replay of the live set: one segment, no tombstones.
fn monolith(live: &BTreeMap<u64, IndexDocument>) -> Index {
    let mono = Index::new().with_seal_threshold(usize::MAX);
    mono.add_all(live.values());
    mono
}

/// All oracle queries under `options`, with generous and tight top-n.
fn probe(index: &Index, options: &SearchOptions) -> Vec<Vec<Hit>> {
    let mut out = Vec::new();
    for top_n in [1_000usize, 3] {
        let options = SearchOptions { top_n, ..*options };
        for q in QUERIES {
            out.push(index.search(q, &options));
        }
    }
    out
}

/// Bitwise comparison: same ids, same order, same matched counts, and
/// score `f64::to_bits` equality — not epsilon closeness.
fn assert_bitwise(a: &[Vec<Hit>], b: &[Vec<Hit>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: probe count");
    for (qi, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: probe {qi} hit count");
        for (i, (hx, hy)) in x.iter().zip(y).enumerate() {
            assert_eq!(hx.id, hy.id, "{what}: probe {qi} rank {i} id");
            assert_eq!(
                hx.matched_terms, hy.matched_terms,
                "{what}: probe {qi} rank {i} matched_terms"
            );
            assert_eq!(
                hx.score.to_bits(),
                hy.score.to_bits(),
                "{what}: probe {qi} rank {i} score bits ({} vs {})",
                hx.score,
                hy.score
            );
        }
    }
}

/// Compare a segmented index against the monolith oracle under every
/// option combination: pruning on/off × proximity on/off.
fn assert_matches_monolith(segmented: &Index, live: &BTreeMap<u64, IndexDocument>, what: &str) {
    let mono = monolith(live);
    for prune in [true, false] {
        for proximity_weight in [0.25, 0.0] {
            let options = SearchOptions {
                prune,
                proximity_weight,
                ..Default::default()
            };
            let a = probe(segmented, &options);
            let b = probe(&mono, &options);
            assert_bitwise(
                &a,
                &b,
                &format!("{what} (prune={prune}, prox={proximity_weight})"),
            );
        }
    }
}

/// Drive one churn step against the index and the live-set model.
fn churn_step(index: &Index, live: &mut BTreeMap<u64, IndexDocument>, rng: &mut Rng, ids: u64) {
    let id = rng.below(ids);
    match rng.below(3) {
        0 | 1 => {
            let d = doc(id, rng);
            index.add(&d);
            live.insert(id, d);
        }
        _ => {
            let removed = index.remove(SchemaId(id));
            assert_eq!(removed, live.remove(&id).is_some());
        }
    }
}

#[test]
fn churn_across_seals_and_merges_is_bitwise_identical_to_a_monolith() {
    let mut rng = Rng(0x5E6_3141);
    // Tiny threshold: sealing happens every few puts, so the corpus is
    // spread over many segments and every query crosses segment borders.
    let index = Index::new().with_seal_threshold(8);
    let mut live: BTreeMap<u64, IndexDocument> = BTreeMap::new();

    for step in 0..300u32 {
        churn_step(&index, &mut live, &mut rng, 64);
        if step % 37 == 36 {
            // Background merge at a low bar — runs often, reclaims
            // tombstones, must never change any bit of any answer.
            index.merge(0.05);
        }
        if step % 50 == 49 {
            assert_matches_monolith(&index, &live, &format!("step {step}"));
        }
    }
    assert!(
        index.segment_count() > 1,
        "churn at threshold 8 must actually produce multiple segments"
    );
    assert_matches_monolith(&index, &live, "final");

    // A forced vacuum collapses to one sealed segment; still bitwise.
    index.vacuum();
    assert_eq!(index.stats().total_docs, live.len());
    assert_matches_monolith(&index, &live, "post-vacuum");
}

#[test]
fn codec_round_trip_of_a_segmented_index_is_bitwise_clean() {
    let mut rng = Rng(0xC0DE_C0DE);
    let index = Index::new().with_seal_threshold(4);
    let mut live: BTreeMap<u64, IndexDocument> = BTreeMap::new();
    for _ in 0..160 {
        churn_step(&index, &mut live, &mut rng, 32);
    }
    assert!(index.segment_count() > 1);

    // Encode flattens segments + overlay tombstones into the monolithic
    // on-disk format; decode rebuilds one sealed segment. Both sides of
    // the trip must agree with each other and with the monolith oracle.
    let decoded = schemr_index::codec::decode(&schemr_index::codec::encode(&index)).unwrap();
    assert_eq!(decoded.stats().live_docs, live.len());
    let options = SearchOptions::default();
    assert_bitwise(
        &probe(&index, &options),
        &probe(&decoded, &options),
        "segmented vs decoded",
    );
    assert_matches_monolith(&decoded, &live, "decoded");

    // The decoded index churns on correctly (forward index was rebuilt).
    for _ in 0..40 {
        churn_step(&decoded, &mut live, &mut rng, 32);
    }
    assert_matches_monolith(&decoded, &live, "decoded + churn");
}

#[test]
fn merge_and_vacuum_agree_bitwise_on_the_same_history() {
    // Two indexes fed the identical churn stream; one is maintained by
    // background merges, the other by forced vacuums. Both must stay
    // bitwise equal to each other (and the monolith) at every probe.
    let mut rng_a = Rng(0x00AB_5E11);
    let mut rng_b = Rng(0x00AB_5E11);
    let merged = Index::new().with_seal_threshold(6);
    let vacuumed = Index::new().with_seal_threshold(6);
    let mut live_a: BTreeMap<u64, IndexDocument> = BTreeMap::new();
    let mut live_b: BTreeMap<u64, IndexDocument> = BTreeMap::new();

    for step in 0..180u32 {
        churn_step(&merged, &mut live_a, &mut rng_a, 40);
        churn_step(&vacuumed, &mut live_b, &mut rng_b, 40);
        if step % 45 == 44 {
            merged.merge(0.1);
            vacuumed.vacuum();
            let options = SearchOptions::default();
            assert_bitwise(
                &probe(&merged, &options),
                &probe(&vacuumed, &options),
                &format!("merge vs vacuum at step {step}"),
            );
        }
    }
    assert_eq!(live_a, live_b, "identical seeds must replay identically");
    assert_matches_monolith(&merged, &live_a, "merged final");
    assert_matches_monolith(&vacuumed, &live_b, "vacuumed final");
}

#[test]
fn merge_preserves_tombstones_applied_after_capture() {
    // Removals that land between a merge's victim capture and its commit
    // are re-applied to the merged segment. Exercised deterministically
    // here via the single-threaded path: remove, merge, remove again —
    // every step must keep agreeing with the monolith.
    let mut rng = Rng(0x7057_0CE5);
    let index = Index::new().with_seal_threshold(5);
    let mut live: BTreeMap<u64, IndexDocument> = BTreeMap::new();
    for _ in 0..60 {
        churn_step(&index, &mut live, &mut rng, 24);
    }
    let victims: Vec<u64> = live.keys().copied().take(6).collect();
    for (i, id) in victims.iter().enumerate() {
        assert!(index.remove(SchemaId(*id)));
        live.remove(id);
        if i % 2 == 0 {
            index.merge(0.01);
        }
        assert_matches_monolith(&index, &live, &format!("tombstone wave {i}"));
    }
    for id in victims {
        assert!(!index.contains(SchemaId(id)));
    }
}
