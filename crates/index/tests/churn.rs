//! Churn invariants for the incremental live-df bookkeeping.
//!
//! A long interleaved put/delete/replace stream must leave the index
//! observably identical to a fresh index built from just the surviving
//! documents: scores depend on live document frequencies and the live doc
//! count, so any drift in the incremental accounting shows up as a score
//! or ranking difference. Deterministic hand-rolled RNG — no external
//! property-testing dependency.

use std::collections::BTreeMap;

use schemr_index::{Hit, Index, IndexDocument, SearchOptions};
use schemr_model::SchemaId;

/// xorshift64* — deterministic, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const VOCAB: &[&str] = &[
    "patient",
    "height",
    "gender",
    "diagnosis",
    "order",
    "total",
    "quantity",
    "doctor",
    "specimen",
    "assay",
    "patient_height",
    "order_total",
];

fn doc(id: u64, rng: &mut Rng) -> IndexDocument {
    let n = 2 + rng.below(4) as usize;
    let elements = (0..n)
        .map(|_| VOCAB[rng.below(VOCAB.len() as u64) as usize].to_string())
        .collect();
    IndexDocument {
        id: SchemaId(id),
        title: format!("schema{}", rng.below(6)),
        summary: String::new(),
        elements,
        docs: vec![],
    }
}

const QUERIES: &[&[&str]] = &[
    &["patient", "height"],
    &["order", "total"],
    &["doctor"],
    &["specimen", "assay", "gender"],
    &["patient_height"],
];

fn all_results(index: &Index) -> Vec<Vec<Hit>> {
    let options = SearchOptions {
        top_n: 1_000,
        ..Default::default()
    };
    QUERIES.iter().map(|q| index.search(q, &options)).collect()
}

fn assert_equivalent(churned: &Index, what: &str) {
    // Oracle: rebuild from scratch with only the live documents. Same
    // live docs + same live dfs ⇒ identical scores; any incremental
    // bookkeeping bug in the churned index breaks the equality.
    let stats = churned.stats();
    let a = all_results(churned);
    for (qi, hits) in a.iter().enumerate() {
        for h in hits {
            assert!(
                churned.contains(h.id),
                "{what}: query {qi} surfaced tombstoned {:?}",
                h.id
            );
        }
    }
    let vacuumed = {
        // vacuum() must not change what any query returns.
        churned.vacuum();
        churned
    };
    assert_eq!(vacuumed.stats().live_docs, stats.live_docs, "{what}");
    assert_eq!(
        vacuumed.stats().total_docs,
        stats.live_docs,
        "{what}: vacuum reclaims every tombstone"
    );
    let b = all_results(vacuumed);
    for (qi, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: query {qi} count changed");
        for (hx, hy) in x.iter().zip(y) {
            assert_eq!(hx.id, hy.id, "{what}: query {qi} ranking changed");
            assert_eq!(hx.matched_terms, hy.matched_terms, "{what}: query {qi}");
            assert!(
                (hx.score - hy.score).abs() < 1e-9,
                "{what}: query {qi} score drifted: {} vs {}",
                hx.score,
                hy.score
            );
        }
    }
}

#[test]
fn interleaved_churn_matches_a_fresh_rebuild() {
    let mut rng = Rng(0x5EED_CAFE);
    let index = Index::new();
    // Model of what should be live: id → current document.
    let mut live: BTreeMap<u64, IndexDocument> = BTreeMap::new();

    for step in 0..400u32 {
        let id = rng.below(48);
        match rng.below(3) {
            0 | 1 => {
                // Put (fresh insert or replacement).
                let d = doc(id, &mut rng);
                index.add(&d);
                live.insert(id, d);
            }
            _ => {
                let removed = index.remove(SchemaId(id));
                assert_eq!(removed, live.remove(&id).is_some(), "step {step}");
            }
        }
        assert_eq!(index.len(), live.len(), "step {step}");
    }

    // Side-by-side oracle: a fresh index over only the live documents
    // must return exactly the same ranked hits.
    let fresh = Index::new();
    for d in live.values() {
        fresh.add(d);
    }
    let churned_hits = all_results(&index);
    let fresh_hits = all_results(&fresh);
    for (qi, (a, b)) in churned_hits.iter().zip(&fresh_hits).enumerate() {
        assert_eq!(a.len(), b.len(), "query {qi}: hit counts differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "query {qi}: ranking differs");
            assert_eq!(x.matched_terms, y.matched_terms, "query {qi}");
            assert!(
                (x.score - y.score).abs() < 1e-9,
                "query {qi}: live-df accounting drifted: {} vs {}",
                x.score,
                y.score
            );
        }
    }

    assert_equivalent(&index, "after churn");
}

#[test]
fn codec_round_trip_preserves_live_df_under_churn() {
    let mut rng = Rng(0xD15C_0B07);
    let index = Index::new();
    for _ in 0..120 {
        let id = rng.below(24);
        if rng.below(3) == 0 {
            index.remove(SchemaId(id));
        } else {
            index.add(&doc(id, &mut rng));
        }
    }
    let decoded = schemr_index::codec::decode(&schemr_index::codec::encode(&index)).unwrap();
    assert_eq!(decoded.stats(), index.stats());
    let a = all_results(&index);
    let b = all_results(&decoded);
    for (qi, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.len(), y.len(), "query {qi}");
        for (hx, hy) in x.iter().zip(y) {
            assert_eq!(hx.id, hy.id, "query {qi}");
            assert!(
                (hx.score - hy.score).abs() < 1e-12,
                "query {qi}: decoded live df differs: {} vs {}",
                hx.score,
                hy.score
            );
        }
    }
    // The decoded index keeps churning correctly: the forward index was
    // rebuilt, so further removals keep df accounting exact.
    let live_ids: Vec<u64> = (0..24).filter(|&i| index.contains(SchemaId(i))).collect();
    for &id in live_ids.iter().take(live_ids.len() / 2) {
        assert!(decoded.remove(SchemaId(id)));
        assert!(index.remove(SchemaId(id)));
    }
    let a = all_results(&index);
    let b = all_results(&decoded);
    for (qi, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.len(), y.len(), "post-removal query {qi}");
        for (hx, hy) in x.iter().zip(y) {
            assert_eq!(hx.id, hy.id, "post-removal query {qi}");
            assert!((hx.score - hy.score).abs() < 1e-9);
        }
    }
}

#[test]
fn churning_out_a_term_pair_costs_the_proximity_walk_nothing() {
    // Regression: the proximity lockstep walk used to traverse postings
    // lists even when every document in them was tombstoned — a churn
    // workload that deleted a popular compound pair kept paying full
    // scan cost for adjacency checks that could never produce a live
    // credit. Dead (live_df = 0) lists must now be skipped outright.
    let index = Index::new();
    for i in 0..40u64 {
        index.add(&IndexDocument {
            id: SchemaId(i),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient".into(), "height".into()],
            docs: vec![],
        });
    }
    // One unrelated live document keeps the index non-empty so the
    // search path runs end to end.
    index.add(&IndexDocument {
        id: SchemaId(1_000),
        title: String::new(),
        summary: String::new(),
        elements: vec!["doctor".into()],
        docs: vec![],
    });
    for i in 0..40u64 {
        assert!(index.remove(SchemaId(i)));
    }

    let options = SearchOptions {
        proximity_weight: 0.25,
        ..Default::default()
    };
    // Both query terms are all-tombstoned: scoring skips the dead lists
    // and the proximity walk must skip the dead (patient, height) pair,
    // so the whole query does zero posting-scan work.
    let before = index.metrics().postings_scanned.get();
    assert!(index.search(&["patient", "height"], &options).is_empty());
    assert_eq!(
        index.metrics().postings_scanned.get(),
        before,
        "dead pair lists must cost no scan work"
    );

    // Mixing in a live term: only the live list's single posting is
    // scanned; the dead pair still contributes nothing.
    let before = index.metrics().postings_scanned.get();
    let hits = index.search(&["patient", "height", "doctor"], &options);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].id, SchemaId(1_000));
    assert_eq!(
        index.metrics().postings_scanned.get() - before,
        1,
        "only the live doctor posting should be visited"
    );

    // Vacuum reclaims the tombstones; behaviour is unchanged after.
    index.vacuum();
    let before = index.metrics().postings_scanned.get();
    assert!(index.search(&["patient", "height"], &options).is_empty());
    assert_eq!(index.metrics().postings_scanned.get(), before);
}

#[test]
fn revision_moves_on_every_mutation_and_is_instance_scoped() {
    let index = Index::new();
    let r0 = index.revision();
    index.add(&IndexDocument {
        id: SchemaId(1),
        title: "t".into(),
        summary: String::new(),
        elements: vec!["patient".into()],
        docs: vec![],
    });
    let r1 = index.revision();
    assert_ne!(r0, r1, "add must move the revision");
    assert!(!index.remove(SchemaId(9)));
    assert_eq!(index.revision(), r1, "failed remove is not a mutation");
    assert!(index.remove(SchemaId(1)));
    let r2 = index.revision();
    assert_ne!(r1, r2);
    index.vacuum();
    assert_ne!(r2, index.revision(), "vacuum must move the revision");
    // Two indexes never share a revision, even at the same mutation count.
    let other = Index::new();
    assert_ne!(other.revision(), Index::new().revision());
    assert_ne!(other.revision(), r0);
}
