//! The atomically published, fully immutable view of the index.
//!
//! Every mutation builds a fresh [`IndexSnapshot`] and publishes it with a
//! single `Arc` swap. A search clones the `Arc` once and then runs with no
//! lock held at all: the segments, their overlays, and the epoch were
//! frozen together, so the result set and the epoch are consistent by
//! construction — the property the revision-keyed candidate cache needs,
//! and the one the old "revision read under the search's own lock"
//! comment provided.
//!
//! `epoch` counts *logical mutations* (adds, tombstones, forced vacuums).
//! Background merges publish new physical layouts **without** bumping it:
//! a merge changes where postings live, never what a query returns
//! (bitwise — see the segmented-vs-monolithic oracle), so cache entries
//! keyed on the epoch stay exactly valid across merges.

use std::collections::BTreeMap;

use crate::field::Field;
use crate::memory::IndexStats;
use crate::postings::PostingsList;
use crate::segment::Segment;

/// One immutable published state: the sealed segments plus (as its last
/// element, when non-empty) a frozen copy of the mutable head.
#[derive(Debug, Clone, Default)]
pub(crate) struct IndexSnapshot {
    pub segments: Vec<Segment>,
    /// Logical mutation count — the `mutations` half of the public
    /// [`crate::IndexRevision`].
    pub epoch: u64,
    /// Live documents across all segments.
    pub live_docs: usize,
    /// Total document slots including tombstones.
    pub total_docs: usize,
}

impl IndexSnapshot {
    /// All of one field's `(term, portions)` entries merged across
    /// segments in term order; each portion is `(segment index, list)`.
    /// This is the deterministic global iteration order the codec, stats,
    /// and introspection all share.
    pub(crate) fn merged_terms(
        &self,
        field_ord: usize,
    ) -> BTreeMap<&str, Vec<(usize, &PostingsList)>> {
        let mut merged: BTreeMap<&str, Vec<(usize, &PostingsList)>> = BTreeMap::new();
        for (si, seg) in self.segments.iter().enumerate() {
            for (term, pl) in &seg.data.terms[field_ord] {
                merged.entry(term.as_str()).or_default().push((si, pl));
            }
        }
        merged
    }

    /// Aggregate statistics. Distinct terms are counted over the *merged*
    /// dictionary, so a term split across segments counts once — the same
    /// number a monolithic build of the same corpus reports.
    pub(crate) fn stats(&self) -> IndexStats {
        let mut distinct_terms = 0usize;
        let mut postings = 0usize;
        let mut occurrences = 0u64;
        for field_ord in 0..Field::COUNT {
            for (_, portions) in self.merged_terms(field_ord) {
                distinct_terms += 1;
                for (_, pl) in portions {
                    postings += pl.doc_freq();
                    occurrences += pl.total_term_freq();
                }
            }
        }
        IndexStats {
            live_docs: self.live_docs,
            total_docs: self.total_docs,
            distinct_terms,
            postings,
            occurrences,
        }
    }

    /// Estimated heap bytes across all segments (each counted once; the
    /// writer's master copies are the same `Arc`s, not duplicates).
    pub(crate) fn deep_bytes(&self) -> usize {
        self.segments.iter().map(|s| s.data.deep_bytes()).sum()
    }

    /// The global ordinal offset of each segment: segment `s`'s local
    /// ordinal `o` maps to global ordinal `offsets[s] + o`. The codec
    /// serializes the corpus in this order.
    pub(crate) fn ord_offsets(&self) -> Vec<u32> {
        let mut offsets = Vec::with_capacity(self.segments.len());
        let mut acc = 0u32;
        for seg in &self.segments {
            offsets.push(acc);
            acc += seg.data.docs.len() as u32;
        }
        offsets
    }
}
