//! Document fields and their boosts.

use serde::{Deserialize, Serialize};

/// The fields of a flattened schema document.
///
/// These mirror the paper's document layout — "a title, a summary, an ID,
/// and a flattened representation of each element". The ID is the document
/// key, not a searchable field; documentation strings get their own
/// low-boost field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Field {
    /// Schema title (name). Highest boost: a title hit is a strong signal.
    Title,
    /// Human-written summary.
    Summary,
    /// Flattened element names/paths — the meat of schema search.
    Elements,
    /// Element documentation strings.
    Docs,
}

impl Field {
    /// Number of fields. Every per-field array in the index (term
    /// dictionaries, `DocEntry::field_lengths`, codec tables) derives its
    /// width from this constant, so adding a fifth field is a one-line
    /// change here instead of a hunt for naked `4`s.
    pub const COUNT: usize = 4;

    /// All fields, in codec order.
    pub const ALL: [Field; Field::COUNT] =
        [Field::Title, Field::Summary, Field::Elements, Field::Docs];

    /// The field's score boost in the TF/IDF scorer.
    pub fn boost(self) -> f64 {
        match self {
            Field::Title => 2.0,
            Field::Summary => 1.0,
            Field::Elements => 1.5,
            Field::Docs => 0.5,
        }
    }

    /// Stable ordinal for the on-disk codec.
    pub fn ordinal(self) -> u8 {
        match self {
            Field::Title => 0,
            Field::Summary => 1,
            Field::Elements => 2,
            Field::Docs => 3,
        }
    }

    /// Inverse of [`Field::ordinal`].
    pub fn from_ordinal(o: u8) -> Option<Field> {
        Field::ALL.into_iter().find(|f| f.ordinal() == o)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Field::Title => "title",
            Field::Summary => "summary",
            Field::Elements => "elements",
            Field::Docs => "docs",
        }
    }
}

/// `Field::COUNT` and `Field::ALL` can never desync: the array's length
/// is checked against the constant at compile time, and `ordinal()` is
/// exhaustively matched over the enum, so a new variant fails to compile
/// until every width agrees.
const _: () = assert!(Field::ALL.len() == Field::COUNT);

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinals_round_trip() {
        for f in Field::ALL {
            assert_eq!(Field::from_ordinal(f.ordinal()), Some(f));
        }
        assert_eq!(Field::from_ordinal(200), None);
    }

    #[test]
    fn title_outboosts_elements_outboosts_docs() {
        assert!(Field::Title.boost() > Field::Elements.boost());
        assert!(Field::Elements.boost() > Field::Docs.boost());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = Field::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), Field::ALL.len());
    }
}
