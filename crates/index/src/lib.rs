//! # schemr-index
//!
//! A from-scratch inverted index over flattened schema documents — the
//! reproduction's substitute for the Apache Lucene index in the paper's
//! architecture (Figure 5).
//!
//! Per the paper, "each schema in the index is represented as a document,
//! for which we store a title, a summary, an ID, and a flattened
//! representation of each element in the schema", and the index itself
//! "stores a term dictionary of frequency data, proximity data, and
//! normalization factors, providing a fast and scalable filter for relevant
//! candidate schemas". This crate implements exactly that contract:
//!
//! * [`IndexDocument`] — the flattened per-schema document with
//!   [`Field`]-separated content,
//! * [`Index`] — a thread-safe inverted index with a term dictionary,
//!   positional postings, and per-field length norms,
//! * [`Index::search`] — disjunctive TF/IDF top-*n* retrieval with the
//!   paper's coordination factor (matched terms ÷ query terms),
//! * [`codec`] — a compact binary on-disk format (varint-delta postings),
//!   so the "offline indexer" can persist and reload its work.
//!
//! Scoring follows the paper's prescription: "match scores are computed
//! independently for each search term and summed" (no conjunctive
//! filtering, to preserve recall), then multiplied by the coordination
//! factor "to reward results which match the most terms".

pub mod codec;
pub mod document;
pub mod field;
pub mod metrics;
pub mod postings;
pub mod search;

mod memory;
mod segment;
mod snapshot;

pub use document::{IndexDocument, ELEMENT_POSITION_GAP};
pub use field::Field;
pub use memory::{
    Index, IndexIntrospection, IndexRevision, IndexStats, MergeOutcome, PostingsListStats,
};
pub use metrics::IndexMetrics;
pub use search::{Hit, ProbeStats, SearchOptions};

/// Internal dense document ordinal (position in insertion order).
pub(crate) type DocOrd = u32;
