//! Index segments: the immutable unit of the Lucene-style index layout.
//!
//! A [`SegmentData`] is one self-contained slice of the corpus — a term
//! dictionary per field, a document table with per-field lengths, the
//! forward index (`doc_terms`), and an id map. The *mutable head* the
//! writer appends into is a `SegmentData` too; sealing wraps it in an
//! `Arc` and freezes it forever. Documents tombstoned **after** a segment
//! seals are recorded in a copy-on-write [`LiveOverlay`] next to the
//! frozen data, so a tombstone costs O(overlay), never a segment rebuild.
//!
//! A [`Segment`] pairs one frozen `SegmentData` with the overlay that was
//! current when its snapshot was published: the pair is immutable, so a
//! search holding it can never observe a torn state.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use schemr_model::SchemaId;
use schemr_obs::DeepSize;

use crate::field::Field;
use crate::postings::PostingsList;
use crate::DocOrd;

/// Per-document bookkeeping: external id, per-field token counts, liveness.
///
/// `deleted` here is the *baked* flag — tombstones applied while the
/// document's segment was still the mutable head. Post-seal tombstones
/// live in the segment's [`LiveOverlay`] instead.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DocEntry {
    pub id: SchemaId,
    pub field_lengths: [u32; Field::COUNT],
    pub deleted: bool,
}

/// One segment's frozen (or, for the head, still-growing) contents. The
/// term dictionary is one `BTreeMap` per field, indexed by field ordinal:
/// `String`-keyed maps support borrowed `&str` lookups, so the query hot
/// path never clones a term just to probe the dictionary, and `BTreeMap`
/// keeps codec output deterministic.
///
/// `doc_terms` is a forward index: for every document slot, the distinct
/// `(field, term)` keys it contributed postings to. It exists so a
/// tombstone can decrement the live document frequency of exactly the
/// postings lists that mention the document — O(terms of the doc) instead
/// of a dictionary-wide scan.
///
/// `live_docs` counts documents that are live *by the baked flags*; the
/// overlay's `dead_docs` is subtracted on top for the true live count.
#[derive(Debug, Clone, Default)]
pub(crate) struct SegmentData {
    pub terms: [BTreeMap<String, PostingsList>; Field::COUNT],
    pub docs: Vec<DocEntry>,
    pub by_id: HashMap<SchemaId, DocOrd>,
    pub doc_terms: Vec<Vec<(u8, String)>>,
    pub live_docs: usize,
}

impl SegmentData {
    /// One field's term dictionary — a borrowed lookup takes `&str`, no
    /// allocation.
    pub(crate) fn field_terms(&self, field: Field) -> &BTreeMap<String, PostingsList> {
        &self.terms[field.ordinal() as usize]
    }

    /// Decrement the live df of every postings list `ord` appears in.
    /// Head-only: called exactly once per tombstoned document while the
    /// segment is still mutable.
    pub(crate) fn note_tombstoned(&mut self, ord: DocOrd) {
        for (field, term) in &self.doc_terms[ord as usize] {
            if let Some(pl) = self.terms[*field as usize].get_mut(term.as_str()) {
                pl.note_doc_tombstoned();
            }
        }
    }

    /// Estimated heap bytes of this segment: the term dictionary with its
    /// postings, the document table, the id map, and the forward index.
    /// Map overheads are approximated the same way the obs `DeepSize`
    /// container impls do.
    pub(crate) fn deep_bytes(&self) -> usize {
        use std::mem::size_of;
        let terms: usize = self
            .terms
            .iter()
            .flat_map(|map| map.iter())
            .map(|(term, pl)| {
                size_of::<String>()
                    + size_of::<PostingsList>()
                    + 2 * size_of::<usize>()
                    + term.capacity()
                    + pl.deep_size_of_children()
            })
            .sum();
        let docs = self.docs.capacity() * size_of::<DocEntry>();
        let by_id = self.by_id.capacity() * (size_of::<SchemaId>() + size_of::<DocOrd>() + 1);
        let doc_terms: usize = self.doc_terms.capacity() * size_of::<Vec<(u8, String)>>()
            + self
                .doc_terms
                .iter()
                .map(|keys| {
                    keys.capacity() * size_of::<(u8, String)>()
                        + keys.iter().map(|(_, t)| t.capacity()).sum::<usize>()
                })
                .sum::<usize>();
        terms + docs + by_id + doc_terms
    }
}

/// Tombstones applied to a segment *after* it sealed, published
/// copy-on-write alongside the frozen data. `dead_df` mirrors the head's
/// incremental live-df maintenance: per field, how many of each term's
/// postings point at overlay-dead documents, so the scorer's live df is
/// `list live df − overlay dead df` without a postings rescan.
#[derive(Debug, Default)]
pub(crate) struct LiveOverlay {
    bits: Vec<u64>,
    dead_df: [HashMap<String, u32>; Field::COUNT],
    pub(crate) dead_docs: usize,
}

impl LiveOverlay {
    /// Is `ord` tombstoned by this overlay?
    #[inline]
    pub(crate) fn is_dead(&self, ord: DocOrd) -> bool {
        self.bits
            .get(ord as usize / 64)
            .is_some_and(|w| w & (1u64 << (ord as usize % 64)) != 0)
    }

    /// How many of the `(field, term)` list's postings this overlay kills.
    #[inline]
    pub(crate) fn dead_df(&self, field_ord: usize, term: &str) -> usize {
        if self.dead_docs == 0 {
            return 0;
        }
        self.dead_df[field_ord].get(term).copied().unwrap_or(0) as usize
    }
}

/// The process-wide empty overlay, shared by every head segment and every
/// freshly merged segment — publishing never allocates for the common
/// "no post-seal tombstones" case.
pub(crate) fn empty_overlay() -> Arc<LiveOverlay> {
    static EMPTY: std::sync::OnceLock<Arc<LiveOverlay>> = std::sync::OnceLock::new();
    EMPTY
        .get_or_init(|| Arc::new(LiveOverlay::default()))
        .clone()
}

/// One immutable segment as a snapshot sees it: frozen data plus the
/// overlay current at publish time.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    pub data: Arc<SegmentData>,
    pub live: Arc<LiveOverlay>,
}

impl Segment {
    /// Is the document at `ord` deleted, by baked flag or overlay?
    #[inline]
    pub(crate) fn is_deleted(&self, ord: DocOrd) -> bool {
        self.data.docs[ord as usize].deleted || (self.live.dead_docs > 0 && self.live.is_dead(ord))
    }

    /// The scorer's live document frequency for one of this segment's
    /// postings lists.
    #[inline]
    pub(crate) fn live_df(&self, field_ord: usize, term: &str, pl: &PostingsList) -> usize {
        pl.live_doc_freq() - self.live.dead_df(field_ord, term)
    }

    /// Live documents in this segment (baked live minus overlay dead).
    pub(crate) fn live_docs(&self) -> usize {
        self.data.live_docs - self.live.dead_docs
    }
}

/// The writer's view of a sealed segment: the frozen data plus the
/// *mutable master* overlay state. `overlay()` clones it into an immutable
/// `Arc` on demand (cached until the next tombstone), which is what makes
/// publishing O(changed overlays), not O(corpus).
#[derive(Debug)]
pub(crate) struct SealedSegment {
    pub data: Arc<SegmentData>,
    bits: Vec<u64>,
    dead_df: [HashMap<String, u32>; Field::COUNT],
    pub dead_docs: usize,
    cached: Option<Arc<LiveOverlay>>,
}

impl SealedSegment {
    pub(crate) fn new(data: Arc<SegmentData>) -> Self {
        SealedSegment {
            data,
            bits: Vec::new(),
            dead_df: Default::default(),
            dead_docs: 0,
            cached: None,
        }
    }

    /// Is `ord` dead (baked flag or overlay bit)?
    pub(crate) fn is_dead(&self, ord: DocOrd) -> bool {
        self.data.docs[ord as usize].deleted
            || self
                .bits
                .get(ord as usize / 64)
                .is_some_and(|w| w & (1u64 << (ord as usize % 64)) != 0)
    }

    /// Tombstone a (currently live) document: set the overlay bit and
    /// decrement the dead-df bookkeeping for every list it appears in.
    pub(crate) fn tombstone(&mut self, ord: DocOrd) {
        debug_assert!(!self.is_dead(ord));
        let word = ord as usize / 64;
        if self.bits.len() <= word {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1u64 << (ord as usize % 64);
        self.dead_docs += 1;
        for (field, term) in &self.data.doc_terms[ord as usize] {
            *self.dead_df[*field as usize]
                .entry(term.clone())
                .or_insert(0) += 1;
        }
        self.cached = None;
    }

    /// The overlay bitset words (for merge diffing).
    pub(crate) fn dead_bits(&self) -> &[u64] {
        &self.bits
    }

    /// Live documents (baked live minus overlay dead).
    pub(crate) fn live_count(&self) -> usize {
        self.data.live_docs - self.dead_docs
    }

    /// Total document slots including tombstones.
    pub(crate) fn total_count(&self) -> usize {
        self.data.docs.len()
    }

    /// The immutable overlay to publish, cached across publishes while no
    /// new tombstone lands on this segment.
    pub(crate) fn overlay(&mut self) -> Arc<LiveOverlay> {
        if let Some(o) = &self.cached {
            return o.clone();
        }
        let o = if self.dead_docs == 0 {
            empty_overlay()
        } else {
            Arc::new(LiveOverlay {
                bits: self.bits.clone(),
                dead_df: self.dead_df.clone(),
                dead_docs: self.dead_docs,
            })
        };
        self.cached = Some(o.clone());
        o
    }
}

/// Is bit `ord` set in `bits`?
fn bit(bits: &[u64], ord: usize) -> bool {
    bits.get(ord / 64)
        .is_some_and(|w| w & (1u64 << (ord % 64)) != 0)
}

/// Compact a list of segments (with their dead bitsets) into one fresh,
/// fully-live `SegmentData` with tight impact bounds.
///
/// Documents keep their relative order (parts in order, ordinals ascending
/// within each part), so every surviving document accumulates the exact
/// same f64 additions in the exact same order afterwards — compaction is
/// bitwise invisible to search, the invariant the segmented-vs-monolithic
/// oracle asserts across merges.
pub(crate) fn compact(parts: &[(Arc<SegmentData>, Vec<u64>)]) -> SegmentData {
    let mut out = SegmentData::default();
    let mut remaps: Vec<Vec<Option<DocOrd>>> = Vec::with_capacity(parts.len());
    for (data, dead) in parts {
        let mut remap = Vec::with_capacity(data.docs.len());
        for (ord, entry) in data.docs.iter().enumerate() {
            if entry.deleted || bit(dead, ord) {
                remap.push(None);
            } else {
                remap.push(Some(out.docs.len() as DocOrd));
                out.docs.push(DocEntry {
                    id: entry.id,
                    field_lengths: entry.field_lengths,
                    deleted: false,
                });
                // A live document keeps every one of its postings, so its
                // forward-index keys carry over unchanged.
                out.doc_terms.push(data.doc_terms[ord].clone());
            }
        }
        remaps.push(remap);
    }
    for field_ord in 0..Field::COUNT {
        // Merge the parts' dictionaries in term order; within one output
        // list, parts contribute in input order, so remapped ordinals are
        // strictly ascending and `push_occurrence` rebuilds tight bounds.
        let mut merged: BTreeMap<&str, Vec<(usize, &PostingsList)>> = BTreeMap::new();
        for (pi, (data, _)) in parts.iter().enumerate() {
            for (term, pl) in &data.terms[field_ord] {
                merged.entry(term.as_str()).or_default().push((pi, pl));
            }
        }
        for (term, lists) in merged {
            let mut outpl = PostingsList::new();
            for (pi, pl) in lists {
                for posting in pl.iter() {
                    if let Some(new_ord) = remaps[pi][posting.doc as usize] {
                        let field_len = out.docs[new_ord as usize].field_lengths[field_ord];
                        for &pos in &posting.positions {
                            outpl.push_occurrence(new_ord, pos, field_len);
                        }
                    }
                }
            }
            if outpl.doc_freq() > 0 {
                out.terms[field_ord].insert(term.to_string(), outpl);
            }
        }
    }
    out.by_id = out
        .docs
        .iter()
        .enumerate()
        .map(|(i, d)| (d.id, i as DocOrd))
        .collect();
    out.live_docs = out.docs.len();
    out
}

/// Ordinals that are dead in `now` but were not in `then` — the
/// tombstones that raced a background merge and must be re-applied to the
/// compacted segment before it is published.
pub(crate) fn late_tombstones(then: &[u64], now: &[u64]) -> Vec<DocOrd> {
    let mut out = Vec::new();
    for (w, &now_word) in now.iter().enumerate() {
        let then_word = then.get(w).copied().unwrap_or(0);
        let mut fresh = now_word & !then_word;
        while fresh != 0 {
            let b = fresh.trailing_zeros();
            out.push((w * 64) as DocOrd + b);
            fresh &= fresh - 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with(ids: &[u64]) -> SegmentData {
        let mut d = SegmentData::default();
        for &id in ids {
            let ord = d.docs.len() as DocOrd;
            d.docs.push(DocEntry {
                id: SchemaId(id),
                field_lengths: [1, 0, 0, 0],
                deleted: false,
            });
            d.doc_terms.push(vec![(0, "t".to_string())]);
            d.terms[0]
                .entry("t".to_string())
                .or_default()
                .push_occurrence(ord, 0, 1);
            d.by_id.insert(SchemaId(id), ord);
            d.live_docs += 1;
        }
        d
    }

    #[test]
    fn overlay_tombstone_updates_dead_df_and_bits() {
        let mut seg = SealedSegment::new(Arc::new(data_with(&[1, 2, 3])));
        assert!(!seg.is_dead(1));
        seg.tombstone(1);
        assert!(seg.is_dead(1));
        assert_eq!(seg.live_count(), 2);
        let o = seg.overlay();
        assert!(o.is_dead(1));
        assert!(!o.is_dead(0));
        assert_eq!(o.dead_df(0, "t"), 1);
        assert_eq!(o.dead_df(0, "missing"), 0);
    }

    #[test]
    fn overlay_arc_is_cached_until_the_next_tombstone() {
        let mut seg = SealedSegment::new(Arc::new(data_with(&[1, 2])));
        let a = seg.overlay();
        let b = seg.overlay();
        assert!(Arc::ptr_eq(&a, &b));
        seg.tombstone(0);
        let c = seg.overlay();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn compact_drops_dead_docs_and_remaps_ordinals() {
        let data = Arc::new(data_with(&[10, 20, 30]));
        let mut dead = vec![0u64];
        dead[0] |= 1 << 1; // kill ordinal 1 (id 20)
        let out = compact(&[(data, dead)]);
        assert_eq!(out.docs.len(), 2);
        assert_eq!(out.live_docs, 2);
        assert_eq!(out.docs[0].id, SchemaId(10));
        assert_eq!(out.docs[1].id, SchemaId(30));
        let pl = out.terms[0].get("t").unwrap();
        assert_eq!(pl.doc_freq(), 2);
        assert_eq!(pl.live_doc_freq(), 2);
        assert_eq!(out.by_id[&SchemaId(30)], 1);
    }

    #[test]
    fn compact_concatenates_parts_in_order() {
        let a = Arc::new(data_with(&[1, 2]));
        let b = Arc::new(data_with(&[3]));
        let out = compact(&[(a, Vec::new()), (b, Vec::new())]);
        let ids: Vec<u64> = out.docs.iter().map(|d| d.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        let pl = out.terms[0].get("t").unwrap();
        assert_eq!(pl.doc_freq(), 3);
    }

    #[test]
    fn late_tombstone_diff_finds_new_bits_only() {
        let then = vec![0b0101u64];
        let now = vec![0b1101u64, 1 << 3];
        assert_eq!(late_tombstones(&then, &now), vec![3, 64 + 3]);
        assert!(late_tombstones(&now, &now).is_empty());
        assert_eq!(late_tombstones(&[], &[1]), vec![0]);
    }
}
