//! The thread-safe inverted index: sealed immutable segments + a small
//! mutable head, searched entirely over an atomically published snapshot.
//!
//! ## Write path
//!
//! A single writer state (head segment, sealed segments, overlay
//! tombstones) lives behind a `Mutex`. Every logical mutation — add,
//! tombstone, forced vacuum — mutates it and then *publishes*: builds a
//! fresh immutable [`IndexSnapshot`] (sealed `Arc`s are reused; the head
//! is cloned, bounded by the seal threshold) and swaps it into place.
//! When the head reaches the seal threshold it is frozen into a sealed
//! segment in O(1).
//!
//! ## Read path
//!
//! Searches clone the published `Arc` once and never touch a lock again:
//! a background merge, a vacuum, or a churning writer can all run
//! concurrently without blocking a single query. Queries in flight keep
//! their old snapshot alive through the `Arc`.
//!
//! ## Merge
//!
//! [`Index::merge`] replaces the old stop-the-world vacuum on the
//! maintenance path: it captures the tombstoned segments under the writer
//! lock, compacts them **off-lock**, then re-acquires the lock only to
//! re-apply tombstones that raced the compaction and swap the segment
//! list. Merges do not bump the epoch — they are bitwise invisible to
//! search — so revision-keyed caches stay warm across them. The forced
//! [`Index::vacuum`] still exists, compacts everything, and *does* count
//! as a mutation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use schemr_model::SchemaId;
use schemr_obs::{DeepSize, SpanGuard};
use schemr_text::Analyzer;

use crate::document::IndexDocument;
use crate::field::Field;
use crate::metrics::IndexMetrics;
use crate::postings::PostingsList;
use crate::search::{idf_weight, impact, search_postings, Hit, SearchOptions};
use crate::segment::{
    compact, empty_overlay, late_tombstones, DocEntry, SealedSegment, Segment, SegmentData,
};
use crate::snapshot::IndexSnapshot;
use crate::DocOrd;

/// Documents the mutable head accumulates before it is sealed into an
/// immutable segment. Bounds the head-clone cost of a publish; small
/// enough that per-mutation publishing stays cheap, large enough that a
/// typical corpus spans only a handful of segments.
const DEFAULT_SEAL_THRESHOLD: usize = 1024;

/// Sealed-segment count past which a maintenance merge compacts even
/// without tombstone pressure, bounding per-query segment fan-out.
const MAX_SEGMENTS: usize = 8;

/// Identifies one exact state of one index instance: which in-memory index
/// (`instance` is unique per [`Index`] constructed in this process) at
/// which mutation count. Equal revisions imply identical search results,
/// which is what makes this the key of the engine's candidate cache.
/// Background merges change the physical layout without changing results,
/// so they deliberately do **not** move the revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexRevision {
    /// Process-unique id of the index instance.
    pub instance: u64,
    /// Logical mutations (adds, tombstones, forced vacuums) applied so far.
    pub mutations: u64,
}

/// Source of process-unique index instance ids.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// What a background merge accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Tombstoned document slots reclaimed.
    pub docs_reclaimed: usize,
    /// Segments (sealed + head) before the merge.
    pub segments_before: usize,
    /// Segments (sealed + head) after the merge.
    pub segments_after: usize,
}

/// The writer's private state: the mutable head plus the sealed segments
/// with their master overlays. Guarded by the `Index`'s writer mutex;
/// readers never touch it.
struct Writer {
    head: SegmentData,
    sealed: Vec<SealedSegment>,
    epoch: u64,
}

impl Writer {
    /// Tombstone the live copy of `id`, wherever it lives. At most one
    /// live copy exists (replacement tombstones the old version at add
    /// time), so dead copies in other segments are simply skipped.
    fn tombstone_existing(&mut self, id: SchemaId) -> bool {
        if let Some(&ord) = self.head.by_id.get(&id) {
            if !self.head.docs[ord as usize].deleted {
                self.head.docs[ord as usize].deleted = true;
                self.head.live_docs -= 1;
                self.head.note_tombstoned(ord);
                return true;
            }
            // The head holds the newest copy; if it is dead, the id is
            // gone everywhere.
            return false;
        }
        for seg in self.sealed.iter_mut() {
            if let Some(&ord) = seg.data.by_id.get(&id) {
                if !seg.is_dead(ord) {
                    seg.tombstone(ord);
                    return true;
                }
            }
        }
        false
    }

    /// Append an analyzed document to the head (replacing any live copy
    /// of the same id) and count the mutation.
    fn put(&mut self, a: AnalyzedDoc) {
        self.tombstone_existing(a.id);
        let ord = self.head.docs.len() as DocOrd;
        for (field_ord, occurrences) in a.occurrences.into_iter().enumerate() {
            let field_len = a.field_lengths[field_ord];
            for (term, pos) in occurrences {
                self.head.terms[field_ord]
                    .entry(term)
                    .or_default()
                    .push_occurrence(ord, pos, field_len);
            }
        }
        self.head.docs.push(DocEntry {
            id: a.id,
            field_lengths: a.field_lengths,
            deleted: false,
        });
        self.head.doc_terms.push(a.keys);
        self.head.by_id.insert(a.id, ord);
        self.head.live_docs += 1;
        self.epoch += 1;
    }

    /// Freeze the head into a sealed segment (O(1) — a move) and start a
    /// fresh one. Head-internal tombstones ride along as baked flags.
    fn seal(&mut self) {
        let data = std::mem::take(&mut self.head);
        self.sealed.push(SealedSegment::new(Arc::new(data)));
    }

    fn total_docs(&self) -> usize {
        self.sealed.iter().map(|s| s.total_count()).sum::<usize>() + self.head.docs.len()
    }

    fn live_docs(&self) -> usize {
        self.sealed.iter().map(|s| s.live_count()).sum::<usize>() + self.head.live_docs
    }
}

/// One document analyzed into per-field positioned terms, ready to apply
/// under the writer lock. Analysis (the expensive part) runs before the
/// lock is taken.
struct AnalyzedDoc {
    id: SchemaId,
    field_lengths: [u32; Field::COUNT],
    /// Distinct `(field, term)` forward-index keys.
    keys: Vec<(u8, String)>,
    /// Positioned occurrences per field ordinal.
    occurrences: [Vec<(String, u32)>; Field::COUNT],
}

/// A thread-safe inverted index over flattened schema documents.
///
/// Writers serialize on an internal mutex; searches run lock-free over the
/// published snapshot. Re-adding a document with an id already present
/// replaces it (tombstone + append), which is how the scheduled re-indexer
/// applies repository changes.
pub struct Index {
    published: RwLock<Arc<IndexSnapshot>>,
    writer: Mutex<Writer>,
    instance: u64,
    seal_threshold: usize,
    names: Analyzer,
    prose: Analyzer,
    metrics: IndexMetrics,
}

impl Default for Index {
    fn default() -> Self {
        Self::new()
    }
}

impl Index {
    /// An empty index with the standard analyzers.
    pub fn new() -> Self {
        Self::with_analyzers(Analyzer::for_names(), Analyzer::for_documents())
    }

    /// An empty index with custom analyzers (ablation experiments use
    /// [`Analyzer::plain`] here).
    pub fn with_analyzers(names: Analyzer, prose: Analyzer) -> Self {
        Index {
            published: RwLock::new(Arc::new(IndexSnapshot::default())),
            writer: Mutex::new(Writer {
                head: SegmentData::default(),
                sealed: Vec::new(),
                epoch: 0,
            }),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            seal_threshold: DEFAULT_SEAL_THRESHOLD,
            names,
            prose,
            metrics: IndexMetrics::default(),
        }
    }

    /// Override the head seal threshold (builder-style). `usize::MAX`
    /// keeps everything in one segment forever — the monolithic mode the
    /// segmented-vs-monolithic oracles compare against; small values
    /// force multi-segment layouts in tests.
    pub fn with_seal_threshold(mut self, threshold: usize) -> Self {
        self.seal_threshold = threshold.max(1);
        self
    }

    /// The current published snapshot — one `Arc` clone, no lock held
    /// afterwards.
    pub(crate) fn snapshot(&self) -> Arc<IndexSnapshot> {
        self.published.read().clone()
    }

    /// Build an index whose entire corpus is one pre-built sealed segment
    /// (the codec load path).
    pub(crate) fn from_sealed(data: SegmentData) -> Self {
        let index = Index::new();
        {
            let mut w = index.writer.lock();
            if !data.docs.is_empty() {
                w.sealed.push(SealedSegment::new(Arc::new(data)));
            }
            index.publish(&mut w);
        }
        index
    }

    /// The index's current revision: `(instance, mutation count)`. Two
    /// equal revisions guarantee identical search results, so callers can
    /// key caches on it; any add, tombstone, or forced vacuum changes it,
    /// and a freshly built or loaded index gets a new `instance`.
    /// Background merges keep it — their results are bitwise identical.
    pub fn revision(&self) -> IndexRevision {
        IndexRevision {
            instance: self.instance,
            mutations: self.published.read().epoch,
        }
    }

    /// Attach shared observability counters (builder-style). The engine
    /// threads one registered [`IndexMetrics`] into every index it
    /// builds so the exported series stay monotone across re-indexes.
    pub fn with_metrics(mut self, metrics: IndexMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Replace the counters on an existing index (used after
    /// [`crate::codec::load_from`] reconstructs one from disk).
    pub fn set_metrics(&mut self, metrics: IndexMetrics) {
        self.metrics = metrics;
    }

    /// The index's observability counters.
    pub fn metrics(&self) -> &IndexMetrics {
        &self.metrics
    }

    /// The analyzer applied to element names and query terms.
    pub fn name_analyzer(&self) -> &Analyzer {
        &self.names
    }

    /// Number of segments in the published snapshot (sealed + head).
    pub fn segment_count(&self) -> usize {
        self.published.read().segments.len()
    }

    /// Analyze a document into the per-field positioned terms and
    /// forward-index keys `Writer::put` applies.
    fn analyze(&self, doc: &IndexDocument) -> AnalyzedDoc {
        let mut field_lengths = [0u32; Field::COUNT];
        let mut keys: Vec<(u8, String)> = Vec::new();
        let mut occurrences: [Vec<(String, u32)>; Field::COUNT] = Default::default();
        for field in Field::ALL {
            let terms = doc.field_terms_positioned(field, &self.names, &self.prose);
            field_lengths[field.ordinal() as usize] = terms.len() as u32;
            // Forward-index entry: the distinct (field, term) keys this
            // document contributes to, so remove() can decrement their
            // live df without scanning the dictionary.
            let mut distinct: Vec<&str> = terms.iter().map(|(t, _)| t.as_str()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            keys.extend(
                distinct
                    .into_iter()
                    .map(|t| (field.ordinal(), t.to_string())),
            );
            occurrences[field.ordinal() as usize] = terms;
        }
        AnalyzedDoc {
            id: doc.id,
            field_lengths,
            keys,
            occurrences,
        }
    }

    /// Build and swap in a fresh snapshot from the writer's state. Sealed
    /// segments are republished as `Arc` clones (overlays cached while
    /// unchanged); only the head is deep-cloned, bounded by the seal
    /// threshold.
    fn publish(&self, w: &mut Writer) {
        let mut segments = Vec::with_capacity(w.sealed.len() + 1);
        for sealed in &mut w.sealed {
            segments.push(Segment {
                data: sealed.data.clone(),
                live: sealed.overlay(),
            });
        }
        if !w.head.docs.is_empty() {
            segments.push(Segment {
                data: Arc::new(w.head.clone()),
                live: empty_overlay(),
            });
        }
        let live_docs = segments.iter().map(Segment::live_docs).sum();
        let total_docs = segments.iter().map(|s| s.data.docs.len()).sum();
        let fresh = Arc::new(IndexSnapshot {
            segments,
            epoch: w.epoch,
            live_docs,
            total_docs,
        });
        // Swap the pointer under the lock but tear the old snapshot down
        // *after* releasing it: when this publish retires the last refs
        // to merged-away segments, dropping them inside the write hold
        // would stall every arriving search behind a multi-ms teardown
        // (readers queue once a writer holds the lock).
        let stale = std::mem::replace(&mut *self.published.write(), fresh);
        drop(stale);
    }

    /// Add (or replace) a document.
    pub fn add(&self, doc: &IndexDocument) {
        let analyzed = self.analyze(doc);
        let mut w = self.writer.lock();
        w.put(analyzed);
        if w.head.docs.len() >= self.seal_threshold {
            w.seal();
        }
        self.publish(&mut w);
    }

    /// Add many documents under one writer lock with one publish at the
    /// end — the bulk build path (full reindex, codec-scale loads).
    pub fn add_all<'a>(&self, docs: impl IntoIterator<Item = &'a IndexDocument>) {
        let analyzed: Vec<AnalyzedDoc> = docs.into_iter().map(|d| self.analyze(d)).collect();
        let mut w = self.writer.lock();
        for a in analyzed {
            w.put(a);
            if w.head.docs.len() >= self.seal_threshold {
                w.seal();
            }
        }
        self.publish(&mut w);
    }

    /// Tombstone a document by schema id. Returns whether it was present.
    /// A failed remove is not a mutation and does not move the revision.
    pub fn remove(&self, id: SchemaId) -> bool {
        let mut w = self.writer.lock();
        if w.tombstone_existing(id) {
            w.epoch += 1;
            self.publish(&mut w);
            true
        } else {
            false
        }
    }

    /// Number of live (non-deleted) documents.
    pub fn len(&self) -> usize {
        self.published.read().live_docs
    }

    /// True when no live documents exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is `id` currently indexed (live)?
    pub fn contains(&self, id: SchemaId) -> bool {
        let snap = self.snapshot();
        snap.segments.iter().any(|seg| {
            seg.data
                .by_id
                .get(&id)
                .is_some_and(|&ord| !seg.is_deleted(ord))
        })
    }

    /// Search with raw query strings (each analyzed through the name
    /// pipeline — queries are element names and keywords).
    pub fn search(&self, query: &[&str], options: &SearchOptions) -> Vec<Hit> {
        self.search_traced(query, options, None)
    }

    /// [`Index::search`] with an optional trace span to annotate with
    /// probe statistics (distinct terms, postings scanned, hits).
    pub fn search_traced(
        &self,
        query: &[&str],
        options: &SearchOptions,
        span: Option<&SpanGuard<'_>>,
    ) -> Vec<Hit> {
        let terms: Vec<String> = query.iter().flat_map(|q| self.names.analyze(q)).collect();
        self.search_terms_traced(&terms, options, span)
    }

    /// Search with pre-analyzed terms.
    pub fn search_terms(&self, terms: &[String], options: &SearchOptions) -> Vec<Hit> {
        self.search_terms_traced(terms, options, None)
    }

    /// [`Index::search_terms`] with an optional trace span to annotate.
    pub fn search_terms_traced(
        &self,
        terms: &[String],
        options: &SearchOptions,
        span: Option<&SpanGuard<'_>>,
    ) -> Vec<Hit> {
        self.search_terms_versioned(terms, options, span).0
    }

    /// [`Index::search_terms_traced`], also returning the [`IndexRevision`]
    /// the results were computed against. The snapshot carries its epoch,
    /// so the pair is consistent by construction even while writers,
    /// sealers, and mergers run concurrently — no lock is held during the
    /// scan. This is the safe way to populate a revision-keyed cache.
    pub fn search_terms_versioned(
        &self,
        terms: &[String],
        options: &SearchOptions,
        span: Option<&SpanGuard<'_>>,
    ) -> (Vec<Hit>, IndexRevision) {
        let snap = self.snapshot();
        let revision = IndexRevision {
            instance: self.instance,
            mutations: snap.epoch,
        };
        let (hits, stats) = search_postings(&snap, terms, options, &self.metrics);
        if let Some(span) = span {
            span.annotate("distinct_terms", stats.distinct_terms);
            span.annotate("postings_scanned", stats.postings_scanned);
            span.annotate("hits", hits.len());
            if stats.pruned_lists > 0 || stats.pruned_postings > 0 {
                span.annotate("pruned_lists", stats.pruned_lists);
                span.annotate("pruned_postings", stats.pruned_postings);
            }
        }
        (hits, revision)
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        self.snapshot().stats()
    }

    /// Document frequency of an (already analyzed) term in a field,
    /// summed across segments and including tombstoned postings (they
    /// stay until a merge or vacuum reclaims them). Exposed for tests and
    /// the ablation benches. Borrowed lookup — no per-call allocation.
    pub fn doc_freq(&self, field: Field, term: &str) -> usize {
        self.snapshot()
            .segments
            .iter()
            .filter_map(|seg| seg.data.field_terms(field).get(term))
            .map(PostingsList::doc_freq)
            .sum()
    }

    /// Drop all tombstoned documents everywhere and rebuild contiguous
    /// ordinals in one sealed segment — the forced, synchronous
    /// compaction. Counts as a mutation (the revision moves). The
    /// maintenance path uses [`Index::merge`] instead, which compacts
    /// off-lock and leaves the revision alone.
    pub fn vacuum(&self) {
        let mut w = self.writer.lock();
        let mut parts: Vec<(Arc<SegmentData>, Vec<u64>)> = w
            .sealed
            .iter()
            .map(|s| (s.data.clone(), s.dead_bits().to_vec()))
            .collect();
        if !w.head.docs.is_empty() {
            parts.push((Arc::new(std::mem::take(&mut w.head)), Vec::new()));
        }
        let compacted = compact(&parts);
        w.sealed.clear();
        w.head = SegmentData::default();
        if !compacted.docs.is_empty() {
            w.sealed.push(SealedSegment::new(Arc::new(compacted)));
        }
        w.epoch += 1;
        self.metrics.vacuums.inc();
        self.publish(&mut w);
    }

    /// Background merge: compact tombstoned segments off-lock and publish
    /// the new layout with a single pointer swap. Returns what was done,
    /// or `None` when the tombstone ratio is below `threshold` (and the
    /// segment count is within bounds), or when a concurrent vacuum
    /// replaced the captured segments mid-merge (the merge simply aborts;
    /// nothing was lost).
    ///
    /// The writer lock is held only to capture victims and to commit —
    /// the compaction itself runs with no lock at all, and searches never
    /// block on any phase. Tombstones that land on a victim during the
    /// off-lock compaction are re-applied to the merged segment before it
    /// is published. Merges do not move the revision: results are bitwise
    /// identical before and after, so revision-keyed caches stay warm.
    pub fn merge(&self, threshold: f64) -> Option<MergeOutcome> {
        // Phase A — capture victims under the writer lock.
        let (victims, segments_before) = {
            let mut w = self.writer.lock();
            if w.head.docs.len() > w.head.live_docs {
                // Head tombstones can only be reclaimed from a sealed
                // segment; sealing is O(1).
                w.seal();
            }
            let total = w.total_docs();
            let live = w.live_docs();
            let dead = total - live;
            let over_threshold =
                threshold > 0.0 && total > 0 && dead as f64 >= threshold * total as f64;
            let crowded = w.sealed.len() > MAX_SEGMENTS;
            if !over_threshold && !crowded {
                return None;
            }
            let victims: Vec<(usize, Arc<SegmentData>, Vec<u64>)> = w
                .sealed
                .iter()
                .enumerate()
                .filter(|(_, s)| crowded || s.live_count() < s.total_count())
                .map(|(slot, s)| (slot, s.data.clone(), s.dead_bits().to_vec()))
                .collect();
            if victims.is_empty() {
                return None;
            }
            let before = w.sealed.len() + usize::from(!w.head.docs.is_empty());
            (victims, before)
        };

        // Phase B — compact with no lock held. Searches and writers both
        // proceed freely; the captured Arcs keep the victim data alive.
        let parts: Vec<(Arc<SegmentData>, Vec<u64>)> = victims
            .iter()
            .map(|(_, data, bits)| (data.clone(), bits.clone()))
            .collect();
        let compacted = compact(&parts);

        // Phase C — commit under the writer lock.
        let mut w = self.writer.lock();
        for (slot, data, _) in &victims {
            let still_there = w
                .sealed
                .get(*slot)
                .is_some_and(|s| Arc::ptr_eq(&s.data, data));
            if !still_there {
                // A concurrent vacuum rebuilt the segment list; this
                // merge's inputs are stale. Abort — the vacuum already
                // reclaimed everything.
                return None;
            }
        }
        let docs_before: usize = victims.iter().map(|(_, d, _)| d.docs.len()).sum();
        let mut merged = SealedSegment::new(Arc::new(compacted));
        // Re-apply tombstones that raced the off-lock compaction.
        for (slot, data, captured_bits) in &victims {
            for ord in late_tombstones(captured_bits, w.sealed[*slot].dead_bits()) {
                let id = data.docs[ord as usize].id;
                if let Some(&new_ord) = merged.data.by_id.get(&id) {
                    if !merged.is_dead(new_ord) {
                        merged.tombstone(new_ord);
                    }
                }
            }
        }
        let victim_slots: Vec<usize> = victims.iter().map(|(slot, _, _)| *slot).collect();
        let mut slot_iter = 0usize;
        w.sealed.retain(|_| {
            let keep = !victim_slots.contains(&slot_iter);
            slot_iter += 1;
            keep
        });
        let docs_reclaimed = docs_before - merged.total_count();
        if merged.total_count() > 0 {
            w.sealed.push(merged);
        }
        self.metrics.merges.inc();
        self.publish(&mut w);
        Some(MergeOutcome {
            docs_reclaimed,
            segments_before,
            segments_after: w.sealed.len() + usize::from(!w.head.docs.is_empty()),
        })
    }
}

impl DeepSize for Index {
    /// Reads the published snapshot — concurrent searches are unaffected.
    fn deep_size_of_children(&self) -> usize {
        self.snapshot().deep_bytes()
    }
}

impl Index {
    /// Data-plane introspection: per-postings-list statistics for the
    /// `top_lists` largest lists (by live document frequency) plus
    /// corpus-level aggregates, computed on demand over the published
    /// snapshot — concurrent searches are never blocked. Lists split
    /// across segments are aggregated into one logical entry, so the
    /// report is layout-independent.
    ///
    /// Each list's `max_impact` is the largest Phase 1 score any of its
    /// live postings can contribute, computed with the scorer's own
    /// `impact` arithmetic — the per-list upper bound WAND/MaxScore
    /// pruning uses.
    pub fn introspect(&self, top_lists: usize) -> IndexIntrospection {
        let snap = self.snapshot();
        let n_docs = snap.live_docs as f64;
        let mut lists: Vec<PostingsListStats> = Vec::new();
        for field_ord in 0..Field::COUNT {
            let field = Field::from_ordinal(field_ord as u8).unwrap_or(Field::Elements);
            for (term, portions) in snap.merged_terms(field_ord) {
                let live_df: usize = portions
                    .iter()
                    .map(|&(si, pl)| snap.segments[si].live_df(field_ord, term, pl))
                    .sum();
                let doc_freq: usize = portions.iter().map(|&(_, pl)| pl.doc_freq()).sum();
                let idf = idf_weight(live_df, n_docs);
                let max_impact = portions
                    .iter()
                    .flat_map(|&(si, pl)| {
                        let seg = &snap.segments[si];
                        pl.iter().filter(|p| !seg.is_deleted(p.doc)).map(move |p| {
                            let field_len = seg.data.docs[p.doc as usize].field_lengths[field_ord];
                            impact(field, p.term_freq(), idf, field_len)
                        })
                    })
                    .fold(0.0f64, f64::max);
                let stored_bound = portions
                    .iter()
                    .map(|&(_, pl)| pl.max_impact_bound(field.boost(), idf))
                    .fold(0.0f64, f64::max);
                let tombstone_ratio = if doc_freq == 0 {
                    0.0
                } else {
                    (doc_freq - live_df) as f64 / doc_freq as f64
                };
                lists.push(PostingsListStats {
                    field,
                    term: term.to_string(),
                    doc_freq,
                    live_doc_freq: live_df,
                    tombstone_ratio,
                    approx_bytes: portions.iter().map(|&(_, pl)| pl.deep_size_of()).sum(),
                    max_impact,
                    stored_bound,
                });
            }
        }
        let postings_bytes: usize = lists.iter().map(|l| l.approx_bytes).sum();
        lists.sort_by(|a, b| {
            b.live_doc_freq
                .cmp(&a.live_doc_freq)
                .then_with(|| a.term.cmp(&b.term))
                .then_with(|| a.field.ordinal().cmp(&b.field.ordinal()))
        });
        lists.truncate(top_lists);
        let stats = snap.stats();
        let tombstone_ratio = if stats.total_docs == 0 {
            0.0
        } else {
            (stats.total_docs - stats.live_docs) as f64 / stats.total_docs as f64
        };
        IndexIntrospection {
            stats,
            revision: snap.epoch,
            tombstone_ratio,
            segments: snap.segments.len(),
            postings_bytes,
            deep_bytes: snap.deep_bytes(),
            top_lists: lists,
        }
    }
}

/// Per-postings-list statistics (`/debug/index`).
#[derive(Debug, Clone, PartialEq)]
pub struct PostingsListStats {
    /// The field the list belongs to.
    pub field: Field,
    /// The analyzed term.
    pub term: String,
    /// Postings including tombstoned documents, across all segments.
    pub doc_freq: usize,
    /// Postings whose document is live (the scorer's df).
    pub live_doc_freq: usize,
    /// Fraction of postings awaiting merge reclamation.
    pub tombstone_ratio: f64,
    /// Estimated heap bytes held by the list.
    pub approx_bytes: usize,
    /// Largest Phase 1 score any live posting of this list can
    /// contribute, recomputed tight for this snapshot — the ideal
    /// WAND/MaxScore upper bound.
    pub max_impact: f64,
    /// The bound the live pruner actually uses: maintained incrementally
    /// on writes, left stale-high by tombstones, rebuilt tight by merges
    /// and the codec load path. Invariant: `stored_bound ≥ max_impact`.
    pub stored_bound: f64,
}

/// Corpus-level introspection (`/debug/index`): aggregates plus the
/// heaviest postings lists.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexIntrospection {
    /// The same aggregates [`Index::stats`] reports.
    pub stats: IndexStats,
    /// Mutation count at the time of the snapshot.
    pub revision: u64,
    /// Fraction of document slots that are tombstones.
    pub tombstone_ratio: f64,
    /// Segments in the published snapshot (sealed + head).
    pub segments: usize,
    /// Estimated heap bytes across all postings lists.
    pub postings_bytes: usize,
    /// Estimated heap bytes of the whole in-memory index.
    pub deep_bytes: usize,
    /// The `top_lists` largest lists by live document frequency.
    pub top_lists: Vec<PostingsListStats>,
}

/// Aggregate statistics about an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Live documents.
    pub live_docs: usize,
    /// Total document slots including tombstones.
    pub total_docs: usize,
    /// Distinct `(field, term)` dictionary entries (merged across
    /// segments).
    pub distinct_terms: usize,
    /// Total postings (document entries across all terms).
    pub postings: usize,
    /// Total term occurrences.
    pub occurrences: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, title: &str, elements: &[&str]) -> IndexDocument {
        IndexDocument {
            id: SchemaId(id),
            title: title.to_string(),
            summary: String::new(),
            elements: elements.iter().map(|s| s.to_string()).collect(),
            docs: vec![],
        }
    }

    #[test]
    fn add_search_roundtrip() {
        let index = Index::new();
        index.add(&doc(
            1,
            "clinic",
            &["patient", "patient.height", "patient.gender"],
        ));
        index.add(&doc(2, "store", &["order", "order.total"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, SchemaId(1));
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn replacement_tombstones_the_old_version() {
        let index = Index::new();
        index.add(&doc(1, "v1", &["alpha"]));
        index.add(&doc(1, "v2", &["beta"]));
        assert_eq!(index.len(), 1);
        assert!(index
            .search(&["alpha"], &SearchOptions::default())
            .is_empty());
        assert_eq!(index.search(&["beta"], &SearchOptions::default()).len(), 1);
    }

    #[test]
    fn remove_hides_documents() {
        let index = Index::new();
        index.add(&doc(1, "a", &["x"]));
        assert!(index.remove(SchemaId(1)));
        assert!(!index.remove(SchemaId(1)));
        assert!(index.is_empty());
        assert!(index.search(&["x"], &SearchOptions::default()).is_empty());
        assert!(!index.contains(SchemaId(1)));
    }

    #[test]
    fn stats_count_terms_and_postings() {
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient"]));
        index.add(&doc(2, "clinic", &["patient", "doctor"]));
        let st = index.stats();
        assert_eq!(st.live_docs, 2);
        // (Title, clinic), (Elements, patient), (Elements, doctor)
        assert_eq!(st.distinct_terms, 3);
        assert_eq!(st.postings, 5);
        assert_eq!(st.occurrences, 5);
    }

    #[test]
    fn vacuum_preserves_search_results() {
        let index = Index::new();
        index.add(&doc(1, "a", &["patient"]));
        index.add(&doc(2, "b", &["patient", "doctor"]));
        index.add(&doc(1, "a2", &["patient"])); // replaces 1
        index.remove(SchemaId(2));
        index.vacuum();
        let st = index.stats();
        assert_eq!(st.live_docs, 1);
        assert_eq!(st.total_docs, 1);
        let hits = index.search(&["patient"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, SchemaId(1));
        assert!(index
            .search(&["doctor"], &SearchOptions::default())
            .is_empty());
        assert!(index.contains(SchemaId(1)));
    }

    #[test]
    fn doc_freq_reflects_live_state() {
        let index = Index::new();
        index.add(&doc(1, "t", &["patient"]));
        index.add(&doc(2, "t", &["patient"]));
        assert_eq!(index.doc_freq(Field::Elements, "patient"), 2);
    }

    #[test]
    fn search_counters_observe_lookup_work() {
        let reg = schemr_obs::MetricsRegistry::new();
        let index = Index::new().with_metrics(IndexMetrics::registered(&reg));
        index.add(&doc(1, "clinic", &["patient", "height"]));
        index.add(&doc(2, "store", &["order", "total"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        // Two distinct terms probed, one candidate returned, and at
        // least the two matching postings scanned.
        assert_eq!(
            reg.counter_value("schemr_index_terms_looked_up_total", &[]),
            Some(2)
        );
        assert_eq!(
            reg.counter_value("schemr_index_candidates_returned_total", &[]),
            Some(1)
        );
        assert!(
            reg.counter_value("schemr_index_postings_scanned_total", &[])
                .unwrap()
                >= 2
        );
        // A second search keeps accumulating on the same counters.
        index.search(&["order"], &SearchOptions::default());
        assert_eq!(
            reg.counter_value("schemr_index_terms_looked_up_total", &[]),
            Some(3)
        );
    }

    #[test]
    fn abbreviations_meet_expansions_in_the_index() {
        // `pat_ht` indexes as patient/height, so the full-word query hits.
        let index = Index::new();
        index.add(&doc(1, "t", &["pat_ht"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn introspection_surfaces_per_list_and_corpus_stats() {
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient", "patient.height"]));
        index.add(&doc(2, "hospital", &["patient", "ward"]));
        index.add(&doc(3, "store", &["order"]));
        let truncated = index.introspect(4);
        assert_eq!(truncated.top_lists.len(), 4, "top_lists honors the cap");
        let report = index.introspect(usize::MAX);
        assert_eq!(report.stats, index.stats());
        assert_eq!(report.tombstone_ratio, 0.0);
        assert!(report.postings_bytes > 0);
        assert!(report.deep_bytes > report.postings_bytes);
        // Truncation keeps the heaviest lists and their stats intact.
        assert_eq!(truncated.top_lists[..], report.top_lists[..4]);
        assert_eq!(truncated.postings_bytes, report.postings_bytes);
        // `patient` (elements field, df 2) is the heaviest list.
        let heaviest = &report.top_lists[0];
        assert_eq!(heaviest.term, "patient");
        assert_eq!(heaviest.field, Field::Elements);
        assert_eq!(heaviest.live_doc_freq, 2);
        assert!(heaviest.max_impact > 0.0);
        // Rarer terms carry higher idf, so their max impact beats an
        // equally-frequent-per-doc common term in the same field.
        let order = report
            .top_lists
            .iter()
            .find(|l| l.term == "order" && l.field == Field::Elements)
            .expect("df-1 elements list present");
        assert!(order.max_impact > heaviest.max_impact);
    }

    #[test]
    fn stored_bound_dominates_tight_max_impact() {
        // The incrementally-maintained bound the pruner consults must
        // dominate the introspection plane's tight recomputation — under
        // fresh builds, churn, vacuum, and codec-style rebuilds alike.
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient", "patient.height", "share"]));
        index.add(&doc(2, "hospital", &["patient", "ward", "share"]));
        index.add(&doc(1, "v2", &["beta", "share"])); // replace → tombstone
        index.remove(SchemaId(2));
        for (label, report) in [
            ("churned", index.introspect(usize::MAX)),
            ("vacuumed", {
                index.vacuum();
                index.introspect(usize::MAX)
            }),
        ] {
            for l in &report.top_lists {
                assert!(
                    l.stored_bound >= l.max_impact - 1e-12,
                    "{label}: stored bound {} must dominate tight max {} for {:?}/{}",
                    l.stored_bound,
                    l.max_impact,
                    l.field,
                    l.term
                );
            }
        }
    }

    #[test]
    fn introspection_max_impact_bounds_observed_scores() {
        // The published per-list max impact must upper-bound any actual
        // Phase 1 contribution — the WAND/MaxScore contract.
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient", "patient.height"]));
        index.add(&doc(2, "hospital", &["patient"]));
        let report = index.introspect(usize::MAX);
        let bound: f64 = report
            .top_lists
            .iter()
            .filter(|l| l.term == "patient")
            .map(|l| l.max_impact)
            .sum();
        let hits = index.search(&["patient"], &SearchOptions::default());
        // Single-term query: no coordination penalty, no proximity bonus.
        assert!(hits[0].score <= bound + 1e-9);
    }

    #[test]
    fn introspection_tracks_tombstones_and_vacuum() {
        let index = Index::new();
        index.add(&doc(1, "v1", &["alpha", "shared"]));
        index.add(&doc(2, "other", &["shared"]));
        index.add(&doc(1, "v2", &["beta", "shared"]));
        let before = index.introspect(usize::MAX);
        assert!(before.tombstone_ratio > 0.0);
        // The analyzer stems, so `shared` indexes as `share`.
        let shared = before
            .top_lists
            .iter()
            .find(|l| l.term == "share" && l.field == Field::Elements)
            .unwrap();
        assert_eq!(shared.doc_freq, 3);
        assert_eq!(shared.live_doc_freq, 2);
        assert!(shared.tombstone_ratio > 0.0);
        // Tombstoned docs contribute nothing to max impact, but the
        // incrementally-maintained bound stays stale-high (still a valid
        // upper bound — the pruner skips df-0 lists before consulting it).
        let alpha = before.top_lists.iter().find(|l| l.term == "alpha").unwrap();
        assert_eq!(alpha.live_doc_freq, 0);
        assert_eq!(alpha.max_impact, 0.0);
        assert!(alpha.stored_bound > 0.0);
        index.vacuum();
        let after = index.introspect(usize::MAX);
        assert_eq!(after.tombstone_ratio, 0.0);
        assert!(after.top_lists.iter().all(|l| l.tombstone_ratio == 0.0));
        assert!(after.top_lists.iter().all(|l| l.term != "alpha"));
    }

    #[test]
    fn deep_size_covers_the_whole_structure() {
        use schemr_obs::DeepSize;
        let index = Index::new();
        let empty = index.deep_size_of_children();
        index.add(&doc(1, "clinic", &["patient", "patient.height"]));
        index.add(&doc(2, "store", &["order", "order.total"]));
        let populated = index.deep_size_of_children();
        assert!(populated > empty);
        // The forward index and term dictionary both hold term text, so
        // the deep size exceeds postings bytes alone.
        assert!(populated > index.introspect(0).postings_bytes);
    }

    #[test]
    fn sealing_splits_the_corpus_without_changing_results() {
        let segmented = Index::new().with_seal_threshold(2);
        let monolith = Index::new().with_seal_threshold(usize::MAX);
        for i in 0..7 {
            let d = doc(i, "t", &["patient", "height"]);
            segmented.add(&d);
            monolith.add(&d);
        }
        assert!(segmented.segment_count() > 1, "threshold 2 must seal");
        assert_eq!(monolith.segment_count(), 1);
        assert_eq!(segmented.stats(), monolith.stats());
        let q = ["patient", "height"];
        let a = segmented.search(&q, &SearchOptions::default());
        let b = monolith.search(&q, &SearchOptions::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "bitwise identity");
            assert_eq!(x.matched_terms, y.matched_terms);
        }
    }

    #[test]
    fn merge_reclaims_tombstones_without_moving_the_revision() {
        let index = Index::new().with_seal_threshold(4);
        for i in 0..10 {
            index.add(&doc(i, "t", &["patient"]));
        }
        for i in 0..5 {
            assert!(index.remove(SchemaId(i)));
        }
        let before = index.revision();
        let hits_before = index.search(&["patient"], &SearchOptions::default());
        let outcome = index.merge(0.3).expect("half the corpus is tombstoned");
        assert!(outcome.docs_reclaimed >= 5);
        assert_eq!(index.revision(), before, "merge is not a logical mutation");
        let st = index.stats();
        assert_eq!(st.live_docs, 5);
        assert_eq!(st.total_docs, 5, "all tombstones reclaimed");
        let hits_after = index.search(&["patient"], &SearchOptions::default());
        assert_eq!(hits_before.len(), hits_after.len());
        for (x, y) in hits_before.iter().zip(&hits_after) {
            assert_eq!(x.id, y.id);
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "merge is bitwise invisible"
            );
        }
        // Below-threshold state: nothing left to do.
        assert!(index.merge(0.3).is_none());
    }

    #[test]
    fn merge_compacts_crowded_segment_lists() {
        let index = Index::new().with_seal_threshold(1);
        for i in 0..20 {
            index.add(&doc(i, "t", &["patient"]));
        }
        assert!(index.segment_count() > MAX_SEGMENTS);
        let outcome = index.merge(0.5).expect("crowding alone triggers a merge");
        assert_eq!(outcome.docs_reclaimed, 0, "no tombstones to drop");
        assert!(index.segment_count() <= 2);
        assert_eq!(index.stats().live_docs, 20);
    }

    #[test]
    fn vacuum_still_moves_the_revision() {
        let index = Index::new();
        index.add(&doc(1, "t", &["patient"]));
        index.remove(SchemaId(1));
        let before = index.revision();
        index.vacuum();
        assert_ne!(index.revision(), before, "forced vacuum is a mutation");
        assert_eq!(index.stats().total_docs, 0);
    }
}
