//! The thread-safe inverted index.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use schemr_model::SchemaId;
use schemr_obs::{DeepSize, SpanGuard};
use schemr_text::Analyzer;

use crate::document::IndexDocument;
use crate::field::Field;
use crate::metrics::IndexMetrics;
use crate::postings::PostingsList;
use crate::search::{idf_weight, impact, search_postings, Hit, SearchOptions};
use crate::DocOrd;

/// Per-document bookkeeping: external id, per-field token counts, liveness.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DocEntry {
    pub id: SchemaId,
    pub field_lengths: [u32; 4],
    pub deleted: bool,
}

/// The index's mutable core. The term dictionary is one `BTreeMap` per
/// field, indexed by field ordinal: `String`-keyed maps support borrowed
/// `&str` lookups, so the query hot path never clones a term just to probe
/// the dictionary, and `BTreeMap` keeps the codec output deterministic
/// (iterating the array then each map reproduces the old `(field, term)`
/// key order exactly).
///
/// `doc_terms` is a forward index: for every document slot, the distinct
/// `(field, term)` keys it contributed postings to. It exists so a
/// tombstone can decrement the live document frequency of exactly the
/// postings lists that mention the document — O(terms of the doc) instead
/// of a dictionary-wide scan — and it is rebuilt by `vacuum()` and the
/// codec load path.
///
/// `revision` counts mutations (adds, tombstones, vacuums). It is read and
/// written strictly under this struct's lock, so a search result paired
/// with the revision observed by the *same* lock hold is exactly the
/// output the index would produce for that revision — the candidate
/// cache's invalidation rule.
#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub terms: [BTreeMap<String, PostingsList>; 4],
    pub docs: Vec<DocEntry>,
    pub by_id: HashMap<SchemaId, DocOrd>,
    pub doc_terms: Vec<Vec<(u8, String)>>,
    pub live_docs: usize,
    pub revision: u64,
}

impl Inner {
    /// One field's term dictionary — a borrowed lookup takes `&str`, no
    /// allocation.
    pub(crate) fn field_terms(&self, field: Field) -> &BTreeMap<String, PostingsList> {
        &self.terms[field.ordinal() as usize]
    }

    /// All `(field ordinal, term, list)` entries in the deterministic
    /// `(field, term)` order the codec serializes.
    pub(crate) fn iter_terms(&self) -> impl Iterator<Item = (u8, &String, &PostingsList)> {
        self.terms
            .iter()
            .enumerate()
            .flat_map(|(f, map)| map.iter().map(move |(t, pl)| (f as u8, t, pl)))
    }

    /// Distinct `(field, term)` dictionary entries across all fields.
    pub(crate) fn term_count(&self) -> usize {
        self.terms.iter().map(BTreeMap::len).sum()
    }

    /// Decrement the live df of every postings list `ord` appears in.
    /// Called exactly once per tombstoned document.
    fn note_tombstoned(&mut self, ord: DocOrd) {
        for (field, term) in &self.doc_terms[ord as usize] {
            if let Some(pl) = self.terms[*field as usize].get_mut(term.as_str()) {
                pl.note_doc_tombstoned();
            }
        }
    }
}

/// Identifies one exact state of one index instance: which in-memory index
/// (`instance` is unique per [`Index`] constructed in this process) at
/// which mutation count. Equal revisions imply identical search results,
/// which is what makes this the key of the engine's candidate cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndexRevision {
    /// Process-unique id of the index instance.
    pub instance: u64,
    /// Mutations (adds, tombstones, vacuums) applied so far.
    pub mutations: u64,
}

/// Source of process-unique index instance ids.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

/// A thread-safe inverted index over flattened schema documents.
///
/// Writers and readers synchronize through an internal `RwLock`; searches
/// proceed concurrently. Re-adding a document with an id already present
/// replaces it (tombstone + append), which is how the scheduled re-indexer
/// applies repository changes.
pub struct Index {
    pub(crate) inner: RwLock<Inner>,
    instance: u64,
    names: Analyzer,
    prose: Analyzer,
    metrics: IndexMetrics,
}

impl Default for Index {
    fn default() -> Self {
        Self::new()
    }
}

impl Index {
    /// An empty index with the standard analyzers.
    pub fn new() -> Self {
        Index {
            inner: RwLock::new(Inner::default()),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            names: Analyzer::for_names(),
            prose: Analyzer::for_documents(),
            metrics: IndexMetrics::default(),
        }
    }

    /// An empty index with custom analyzers (ablation experiments use
    /// [`Analyzer::plain`] here).
    pub fn with_analyzers(names: Analyzer, prose: Analyzer) -> Self {
        Index {
            inner: RwLock::new(Inner::default()),
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            names,
            prose,
            metrics: IndexMetrics::default(),
        }
    }

    /// The index's current revision: `(instance, mutation count)`. Two
    /// equal revisions guarantee identical search results, so callers can
    /// key caches on it; any add, tombstone, or vacuum changes it, and a
    /// freshly built or loaded index gets a new `instance`.
    pub fn revision(&self) -> IndexRevision {
        IndexRevision {
            instance: self.instance,
            mutations: self.inner.read().revision,
        }
    }

    /// Attach shared observability counters (builder-style). The engine
    /// threads one registered [`IndexMetrics`] into every index it
    /// builds so the exported series stay monotone across re-indexes.
    pub fn with_metrics(mut self, metrics: IndexMetrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Replace the counters on an existing index (used after
    /// [`crate::codec::load_from`] reconstructs one from disk).
    pub fn set_metrics(&mut self, metrics: IndexMetrics) {
        self.metrics = metrics;
    }

    /// The index's observability counters.
    pub fn metrics(&self) -> &IndexMetrics {
        &self.metrics
    }

    /// The analyzer applied to element names and query terms.
    pub fn name_analyzer(&self) -> &Analyzer {
        &self.names
    }

    /// Add (or replace) a document.
    pub fn add(&self, doc: &IndexDocument) {
        let mut inner = self.inner.write();
        if let Some(&old) = inner.by_id.get(&doc.id) {
            if !inner.docs[old as usize].deleted {
                inner.docs[old as usize].deleted = true;
                inner.live_docs -= 1;
                inner.note_tombstoned(old);
            }
        }
        let ord = inner.docs.len() as DocOrd;
        let mut field_lengths = [0u32; 4];
        let mut keys: Vec<(u8, String)> = Vec::new();
        for field in Field::ALL {
            let terms = doc.field_terms_positioned(field, &self.names, &self.prose);
            field_lengths[field.ordinal() as usize] = terms.len() as u32;
            // Forward-index entry: the distinct (field, term) keys this
            // document contributes to, so remove() can decrement their
            // live df without scanning the dictionary.
            let mut distinct: Vec<&str> = terms.iter().map(|(t, _)| t.as_str()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            keys.extend(
                distinct
                    .into_iter()
                    .map(|t| (field.ordinal(), t.to_string())),
            );
            let field_len = field_lengths[field.ordinal() as usize];
            for (term, pos) in terms {
                inner.terms[field.ordinal() as usize]
                    .entry(term)
                    .or_default()
                    .push_occurrence(ord, pos, field_len);
            }
        }
        inner.docs.push(DocEntry {
            id: doc.id,
            field_lengths,
            deleted: false,
        });
        inner.doc_terms.push(keys);
        inner.by_id.insert(doc.id, ord);
        inner.live_docs += 1;
        inner.revision += 1;
    }

    /// Add many documents.
    pub fn add_all<'a>(&self, docs: impl IntoIterator<Item = &'a IndexDocument>) {
        for d in docs {
            self.add(d);
        }
    }

    /// Tombstone a document by schema id. Returns whether it was present.
    pub fn remove(&self, id: SchemaId) -> bool {
        let mut inner = self.inner.write();
        match inner.by_id.get(&id).copied() {
            Some(ord) if !inner.docs[ord as usize].deleted => {
                inner.docs[ord as usize].deleted = true;
                inner.live_docs -= 1;
                inner.note_tombstoned(ord);
                inner.revision += 1;
                true
            }
            _ => false,
        }
    }

    /// Number of live (non-deleted) documents.
    pub fn len(&self) -> usize {
        self.inner.read().live_docs
    }

    /// True when no live documents exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is `id` currently indexed (live)?
    pub fn contains(&self, id: SchemaId) -> bool {
        let inner = self.inner.read();
        inner
            .by_id
            .get(&id)
            .is_some_and(|&ord| !inner.docs[ord as usize].deleted)
    }

    /// Search with raw query strings (each analyzed through the name
    /// pipeline — queries are element names and keywords).
    pub fn search(&self, query: &[&str], options: &SearchOptions) -> Vec<Hit> {
        self.search_traced(query, options, None)
    }

    /// [`Index::search`] with an optional trace span to annotate with
    /// probe statistics (distinct terms, postings scanned, hits).
    pub fn search_traced(
        &self,
        query: &[&str],
        options: &SearchOptions,
        span: Option<&SpanGuard<'_>>,
    ) -> Vec<Hit> {
        let terms: Vec<String> = query.iter().flat_map(|q| self.names.analyze(q)).collect();
        self.search_terms_traced(&terms, options, span)
    }

    /// Search with pre-analyzed terms.
    pub fn search_terms(&self, terms: &[String], options: &SearchOptions) -> Vec<Hit> {
        self.search_terms_traced(terms, options, None)
    }

    /// [`Index::search_terms`] with an optional trace span to annotate.
    pub fn search_terms_traced(
        &self,
        terms: &[String],
        options: &SearchOptions,
        span: Option<&SpanGuard<'_>>,
    ) -> Vec<Hit> {
        self.search_terms_versioned(terms, options, span).0
    }

    /// [`Index::search_terms_traced`], also returning the [`IndexRevision`]
    /// the results were computed against. Revision and results are read
    /// under one lock hold, so the pair is consistent even while writers
    /// mutate concurrently — this is the safe way to populate a
    /// revision-keyed cache.
    pub fn search_terms_versioned(
        &self,
        terms: &[String],
        options: &SearchOptions,
        span: Option<&SpanGuard<'_>>,
    ) -> (Vec<Hit>, IndexRevision) {
        let inner = self.inner.read();
        let revision = IndexRevision {
            instance: self.instance,
            mutations: inner.revision,
        };
        let (hits, stats) = search_postings(&inner, terms, options, &self.metrics);
        if let Some(span) = span {
            span.annotate("distinct_terms", stats.distinct_terms);
            span.annotate("postings_scanned", stats.postings_scanned);
            span.annotate("hits", hits.len());
            if stats.pruned_lists > 0 || stats.pruned_postings > 0 {
                span.annotate("pruned_lists", stats.pruned_lists);
                span.annotate("pruned_postings", stats.pruned_postings);
            }
        }
        (hits, revision)
    }

    /// Index statistics.
    pub fn stats(&self) -> IndexStats {
        let inner = self.inner.read();
        IndexStats {
            live_docs: inner.live_docs,
            total_docs: inner.docs.len(),
            distinct_terms: inner.term_count(),
            postings: inner.iter_terms().map(|(_, _, pl)| pl.doc_freq()).sum(),
            occurrences: inner
                .iter_terms()
                .map(|(_, _, pl)| pl.total_term_freq())
                .sum(),
        }
    }

    /// Document frequency of an (already analyzed) term in a field.
    /// Exposed for tests and the ablation benches. Borrowed lookup — no
    /// per-call allocation.
    pub fn doc_freq(&self, field: Field, term: &str) -> usize {
        self.inner
            .read()
            .field_terms(field)
            .get(term)
            .map_or(0, PostingsList::doc_freq)
    }

    /// Drop all tombstoned documents and rebuild contiguous ordinals.
    ///
    /// The scheduled indexer calls this after large update batches; search
    /// correctness never depends on it (tombstones are filtered at query
    /// time), only memory usage does.
    pub fn vacuum(&self) {
        let mut inner = self.inner.write();
        let mut remap: Vec<Option<DocOrd>> = Vec::with_capacity(inner.docs.len());
        let mut new_docs = Vec::with_capacity(inner.live_docs);
        for entry in &inner.docs {
            if entry.deleted {
                remap.push(None);
            } else {
                remap.push(Some(new_docs.len() as DocOrd));
                new_docs.push(entry.clone());
            }
        }
        let mut new_terms: [BTreeMap<String, PostingsList>; 4] = Default::default();
        // Forward index rebuilt alongside: every posting that survives the
        // remap is by construction live, so `push_occurrence`'s live-df
        // accounting — and its tight impact-bound accounting — is already
        // correct for the compacted lists.
        let mut new_doc_terms: Vec<Vec<(u8, String)>> = vec![Vec::new(); new_docs.len()];
        for (field_ord, map) in inner.terms.iter().enumerate() {
            for (term, pl) in map {
                let mut out = PostingsList::new();
                for posting in pl.iter() {
                    if let Some(new_ord) = remap[posting.doc as usize] {
                        if out.last_doc() != Some(new_ord) {
                            new_doc_terms[new_ord as usize].push((field_ord as u8, term.clone()));
                        }
                        let field_len = new_docs[new_ord as usize].field_lengths[field_ord];
                        for &pos in &posting.positions {
                            out.push_occurrence(new_ord, pos, field_len);
                        }
                    }
                }
                if out.doc_freq() > 0 {
                    new_terms[field_ord].insert(term.clone(), out);
                }
            }
        }
        inner.by_id = new_docs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.id, i as DocOrd))
            .collect();
        inner.live_docs = new_docs.len();
        inner.docs = new_docs;
        inner.terms = new_terms;
        inner.doc_terms = new_doc_terms;
        inner.revision += 1;
        self.metrics.vacuums.inc();
    }
}

impl Inner {
    /// Estimated heap bytes of the whole in-memory index: the term
    /// dictionary with its postings, the document table, the id map,
    /// and the forward index. Map overheads are approximated the same
    /// way the obs `DeepSize` container impls do.
    fn deep_bytes(&self) -> usize {
        use std::mem::size_of;
        let terms: usize = self
            .iter_terms()
            .map(|(_, term, pl)| {
                size_of::<String>()
                    + size_of::<PostingsList>()
                    + 2 * size_of::<usize>()
                    + term.capacity()
                    + pl.deep_size_of_children()
            })
            .sum();
        let docs = self.docs.capacity() * size_of::<DocEntry>();
        let by_id = self.by_id.capacity() * (size_of::<SchemaId>() + size_of::<DocOrd>() + 1);
        let doc_terms: usize = self.doc_terms.capacity() * size_of::<Vec<(u8, String)>>()
            + self
                .doc_terms
                .iter()
                .map(|keys| {
                    keys.capacity() * size_of::<(u8, String)>()
                        + keys.iter().map(|(_, t)| t.capacity()).sum::<usize>()
                })
                .sum::<usize>();
        terms + docs + by_id + doc_terms
    }
}

impl DeepSize for Index {
    /// Takes the index's read lock briefly; concurrent searches (also
    /// readers) are unaffected.
    fn deep_size_of_children(&self) -> usize {
        self.inner.read().deep_bytes()
    }
}

impl Index {
    /// Data-plane introspection: per-postings-list statistics for the
    /// `top_lists` largest lists (by live document frequency) plus
    /// corpus-level aggregates, computed on demand under one read lock
    /// — concurrent searches share the lock and are not blocked.
    ///
    /// Each list's `max_impact` is the largest Phase 1 score any of its
    /// live postings can contribute, computed with the scorer's own
    /// `impact` arithmetic — the per-list upper bound WAND/MaxScore
    /// pruning needs (ROADMAP item 4).
    pub fn introspect(&self, top_lists: usize) -> IndexIntrospection {
        let inner = self.inner.read();
        let n_docs = inner.live_docs as f64;
        let mut lists: Vec<PostingsListStats> = inner
            .iter_terms()
            .map(|(field_ord, term, pl)| {
                let field = Field::from_ordinal(field_ord).unwrap_or(Field::Elements);
                let live_df = pl.live_doc_freq();
                let idf = idf_weight(live_df, n_docs);
                let max_impact = pl
                    .iter()
                    .filter(|p| !inner.docs[p.doc as usize].deleted)
                    .map(|p| {
                        let field_len =
                            inner.docs[p.doc as usize].field_lengths[field.ordinal() as usize];
                        impact(field, p.term_freq(), idf, field_len)
                    })
                    .fold(0.0f64, f64::max);
                PostingsListStats {
                    field,
                    term: term.clone(),
                    doc_freq: pl.doc_freq(),
                    live_doc_freq: live_df,
                    tombstone_ratio: pl.tombstone_ratio(),
                    approx_bytes: pl.deep_size_of(),
                    max_impact,
                    stored_bound: pl.max_impact_bound(field.boost(), idf),
                }
            })
            .collect();
        let postings_bytes: usize = lists.iter().map(|l| l.approx_bytes).sum();
        lists.sort_by(|a, b| {
            b.live_doc_freq
                .cmp(&a.live_doc_freq)
                .then_with(|| a.term.cmp(&b.term))
                .then_with(|| a.field.ordinal().cmp(&b.field.ordinal()))
        });
        lists.truncate(top_lists);
        let stats = IndexStats {
            live_docs: inner.live_docs,
            total_docs: inner.docs.len(),
            distinct_terms: inner.term_count(),
            postings: inner.iter_terms().map(|(_, _, pl)| pl.doc_freq()).sum(),
            occurrences: inner
                .iter_terms()
                .map(|(_, _, pl)| pl.total_term_freq())
                .sum(),
        };
        let tombstone_ratio = if stats.total_docs == 0 {
            0.0
        } else {
            (stats.total_docs - stats.live_docs) as f64 / stats.total_docs as f64
        };
        IndexIntrospection {
            stats,
            revision: inner.revision,
            tombstone_ratio,
            postings_bytes,
            deep_bytes: inner.deep_bytes(),
            top_lists: lists,
        }
    }
}

/// Per-postings-list statistics (`/debug/index`).
#[derive(Debug, Clone, PartialEq)]
pub struct PostingsListStats {
    /// The field the list belongs to.
    pub field: Field,
    /// The analyzed term.
    pub term: String,
    /// Postings including tombstoned documents.
    pub doc_freq: usize,
    /// Postings whose document is live (the scorer's df).
    pub live_doc_freq: usize,
    /// Fraction of postings awaiting vacuum.
    pub tombstone_ratio: f64,
    /// Estimated heap bytes held by the list.
    pub approx_bytes: usize,
    /// Largest Phase 1 score any live posting of this list can
    /// contribute, recomputed tight for this snapshot — the ideal
    /// WAND/MaxScore upper bound.
    pub max_impact: f64,
    /// The bound the live pruner actually uses: maintained incrementally
    /// on writes, left stale-high by tombstones, rebuilt tight by vacuum
    /// and the codec load path. Invariant: `stored_bound ≥ max_impact`.
    pub stored_bound: f64,
}

/// Corpus-level introspection (`/debug/index`): aggregates plus the
/// heaviest postings lists.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexIntrospection {
    /// The same aggregates [`Index::stats`] reports.
    pub stats: IndexStats,
    /// Mutation count at the time of the snapshot.
    pub revision: u64,
    /// Fraction of document slots that are tombstones.
    pub tombstone_ratio: f64,
    /// Estimated heap bytes across all postings lists.
    pub postings_bytes: usize,
    /// Estimated heap bytes of the whole in-memory index.
    pub deep_bytes: usize,
    /// The `top_lists` largest lists by live document frequency.
    pub top_lists: Vec<PostingsListStats>,
}

/// Aggregate statistics about an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Live documents.
    pub live_docs: usize,
    /// Total document slots including tombstones.
    pub total_docs: usize,
    /// Distinct `(field, term)` dictionary entries.
    pub distinct_terms: usize,
    /// Total postings (document entries across all terms).
    pub postings: usize,
    /// Total term occurrences.
    pub occurrences: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, title: &str, elements: &[&str]) -> IndexDocument {
        IndexDocument {
            id: SchemaId(id),
            title: title.to_string(),
            summary: String::new(),
            elements: elements.iter().map(|s| s.to_string()).collect(),
            docs: vec![],
        }
    }

    #[test]
    fn add_search_roundtrip() {
        let index = Index::new();
        index.add(&doc(
            1,
            "clinic",
            &["patient", "patient.height", "patient.gender"],
        ));
        index.add(&doc(2, "store", &["order", "order.total"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, SchemaId(1));
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn replacement_tombstones_the_old_version() {
        let index = Index::new();
        index.add(&doc(1, "v1", &["alpha"]));
        index.add(&doc(1, "v2", &["beta"]));
        assert_eq!(index.len(), 1);
        assert!(index
            .search(&["alpha"], &SearchOptions::default())
            .is_empty());
        assert_eq!(index.search(&["beta"], &SearchOptions::default()).len(), 1);
    }

    #[test]
    fn remove_hides_documents() {
        let index = Index::new();
        index.add(&doc(1, "a", &["x"]));
        assert!(index.remove(SchemaId(1)));
        assert!(!index.remove(SchemaId(1)));
        assert!(index.is_empty());
        assert!(index.search(&["x"], &SearchOptions::default()).is_empty());
        assert!(!index.contains(SchemaId(1)));
    }

    #[test]
    fn stats_count_terms_and_postings() {
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient"]));
        index.add(&doc(2, "clinic", &["patient", "doctor"]));
        let st = index.stats();
        assert_eq!(st.live_docs, 2);
        // (Title, clinic), (Elements, patient), (Elements, doctor)
        assert_eq!(st.distinct_terms, 3);
        assert_eq!(st.postings, 5);
        assert_eq!(st.occurrences, 5);
    }

    #[test]
    fn vacuum_preserves_search_results() {
        let index = Index::new();
        index.add(&doc(1, "a", &["patient"]));
        index.add(&doc(2, "b", &["patient", "doctor"]));
        index.add(&doc(1, "a2", &["patient"])); // replaces 1
        index.remove(SchemaId(2));
        index.vacuum();
        let st = index.stats();
        assert_eq!(st.live_docs, 1);
        assert_eq!(st.total_docs, 1);
        let hits = index.search(&["patient"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, SchemaId(1));
        assert!(index
            .search(&["doctor"], &SearchOptions::default())
            .is_empty());
        assert!(index.contains(SchemaId(1)));
    }

    #[test]
    fn doc_freq_reflects_live_state() {
        let index = Index::new();
        index.add(&doc(1, "t", &["patient"]));
        index.add(&doc(2, "t", &["patient"]));
        assert_eq!(index.doc_freq(Field::Elements, "patient"), 2);
    }

    #[test]
    fn search_counters_observe_lookup_work() {
        let reg = schemr_obs::MetricsRegistry::new();
        let index = Index::new().with_metrics(IndexMetrics::registered(&reg));
        index.add(&doc(1, "clinic", &["patient", "height"]));
        index.add(&doc(2, "store", &["order", "total"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
        // Two distinct terms probed, one candidate returned, and at
        // least the two matching postings scanned.
        assert_eq!(
            reg.counter_value("schemr_index_terms_looked_up_total", &[]),
            Some(2)
        );
        assert_eq!(
            reg.counter_value("schemr_index_candidates_returned_total", &[]),
            Some(1)
        );
        assert!(
            reg.counter_value("schemr_index_postings_scanned_total", &[])
                .unwrap()
                >= 2
        );
        // A second search keeps accumulating on the same counters.
        index.search(&["order"], &SearchOptions::default());
        assert_eq!(
            reg.counter_value("schemr_index_terms_looked_up_total", &[]),
            Some(3)
        );
    }

    #[test]
    fn abbreviations_meet_expansions_in_the_index() {
        // `pat_ht` indexes as patient/height, so the full-word query hits.
        let index = Index::new();
        index.add(&doc(1, "t", &["pat_ht"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn introspection_surfaces_per_list_and_corpus_stats() {
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient", "patient.height"]));
        index.add(&doc(2, "hospital", &["patient", "ward"]));
        index.add(&doc(3, "store", &["order"]));
        let truncated = index.introspect(4);
        assert_eq!(truncated.top_lists.len(), 4, "top_lists honors the cap");
        let report = index.introspect(usize::MAX);
        assert_eq!(report.stats, index.stats());
        assert_eq!(report.tombstone_ratio, 0.0);
        assert!(report.postings_bytes > 0);
        assert!(report.deep_bytes > report.postings_bytes);
        // Truncation keeps the heaviest lists and their stats intact.
        assert_eq!(truncated.top_lists[..], report.top_lists[..4]);
        assert_eq!(truncated.postings_bytes, report.postings_bytes);
        // `patient` (elements field, df 2) is the heaviest list.
        let heaviest = &report.top_lists[0];
        assert_eq!(heaviest.term, "patient");
        assert_eq!(heaviest.field, Field::Elements);
        assert_eq!(heaviest.live_doc_freq, 2);
        assert!(heaviest.max_impact > 0.0);
        // Rarer terms carry higher idf, so their max impact beats an
        // equally-frequent-per-doc common term in the same field.
        let order = report
            .top_lists
            .iter()
            .find(|l| l.term == "order" && l.field == Field::Elements)
            .expect("df-1 elements list present");
        assert!(order.max_impact > heaviest.max_impact);
    }

    #[test]
    fn stored_bound_dominates_tight_max_impact() {
        // The incrementally-maintained bound the pruner consults must
        // dominate the introspection plane's tight recomputation — under
        // fresh builds, churn, vacuum, and codec-style rebuilds alike.
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient", "patient.height", "share"]));
        index.add(&doc(2, "hospital", &["patient", "ward", "share"]));
        index.add(&doc(1, "v2", &["beta", "share"])); // replace → tombstone
        index.remove(SchemaId(2));
        for (label, report) in [
            ("churned", index.introspect(usize::MAX)),
            ("vacuumed", {
                index.vacuum();
                index.introspect(usize::MAX)
            }),
        ] {
            for l in &report.top_lists {
                assert!(
                    l.stored_bound >= l.max_impact - 1e-12,
                    "{label}: stored bound {} must dominate tight max {} for {:?}/{}",
                    l.stored_bound,
                    l.max_impact,
                    l.field,
                    l.term
                );
            }
        }
    }

    #[test]
    fn introspection_max_impact_bounds_observed_scores() {
        // The published per-list max impact must upper-bound any actual
        // Phase 1 contribution — the WAND/MaxScore contract.
        let index = Index::new();
        index.add(&doc(1, "clinic", &["patient", "patient.height"]));
        index.add(&doc(2, "hospital", &["patient"]));
        let report = index.introspect(usize::MAX);
        let bound: f64 = report
            .top_lists
            .iter()
            .filter(|l| l.term == "patient")
            .map(|l| l.max_impact)
            .sum();
        let hits = index.search(&["patient"], &SearchOptions::default());
        // Single-term query: no coordination penalty, no proximity bonus.
        assert!(hits[0].score <= bound + 1e-9);
    }

    #[test]
    fn introspection_tracks_tombstones_and_vacuum() {
        let index = Index::new();
        index.add(&doc(1, "v1", &["alpha", "shared"]));
        index.add(&doc(2, "other", &["shared"]));
        index.add(&doc(1, "v2", &["beta", "shared"]));
        let before = index.introspect(usize::MAX);
        assert!(before.tombstone_ratio > 0.0);
        // The analyzer stems, so `shared` indexes as `share`.
        let shared = before
            .top_lists
            .iter()
            .find(|l| l.term == "share" && l.field == Field::Elements)
            .unwrap();
        assert_eq!(shared.doc_freq, 3);
        assert_eq!(shared.live_doc_freq, 2);
        assert!(shared.tombstone_ratio > 0.0);
        // Tombstoned docs contribute nothing to max impact, but the
        // incrementally-maintained bound stays stale-high (still a valid
        // upper bound — the pruner skips df-0 lists before consulting it).
        let alpha = before.top_lists.iter().find(|l| l.term == "alpha").unwrap();
        assert_eq!(alpha.live_doc_freq, 0);
        assert_eq!(alpha.max_impact, 0.0);
        assert!(alpha.stored_bound > 0.0);
        index.vacuum();
        let after = index.introspect(usize::MAX);
        assert_eq!(after.tombstone_ratio, 0.0);
        assert!(after.top_lists.iter().all(|l| l.tombstone_ratio == 0.0));
        assert!(after.top_lists.iter().all(|l| l.term != "alpha"));
    }

    #[test]
    fn deep_size_covers_the_whole_structure() {
        use schemr_obs::DeepSize;
        let index = Index::new();
        let empty = index.deep_size_of_children();
        index.add(&doc(1, "clinic", &["patient", "patient.height"]));
        index.add(&doc(2, "store", &["order", "order.total"]));
        let populated = index.deep_size_of_children();
        assert!(populated > empty);
        // The forward index and term dictionary both hold term text, so
        // the deep size exceeds postings bytes alone.
        assert!(populated > index.introspect(0).postings_bytes);
    }
}
