//! Postings lists: per-term document occurrences with positions.

use schemr_obs::DeepSize;
use serde::{Deserialize, Serialize};

use crate::DocOrd;

/// Postings are grouped into fixed-size blocks of this many documents for
/// block-max pruning: each block carries its own `√tf/√field_len` ceiling
/// so the scorer can skip a whole block when even its best posting cannot
/// reach the current top-n floor.
pub const BLOCK_POSTINGS: usize = 64;

/// The idf- and boost-independent part of a posting's impact:
/// `√tf / √field_len`. Per-list and per-block maxima of this quantity are
/// what the index stores; multiplying by `boost · idf` at query time yields
/// the WAND/MaxScore upper bound with the scorer's own arithmetic.
pub(crate) fn tf_norm(term_freq: u32, field_len: u32) -> f64 {
    (term_freq as f64).sqrt() / (field_len.max(1) as f64).sqrt()
}

/// One document's occurrence record for a term in a field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Dense document ordinal.
    pub doc: DocOrd,
    /// Token positions of the term within the field (sorted ascending) —
    /// the "proximity data" the paper's index stores.
    pub positions: Vec<u32>,
}

impl Posting {
    /// Term frequency in this document/field.
    pub fn term_freq(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// A term's postings within one field: documents sorted by ordinal.
///
/// Alongside the postings themselves the list maintains a **live document
/// frequency** — the number of postings whose document is not tombstoned.
/// Writers keep it incrementally up to date (`push_occurrence` counts the
/// new document as live; the index decrements it when a document is
/// tombstoned) so the scorer never has to rescan postings against the
/// tombstone table just to compute df.
///
/// It also maintains **impact upper bounds** for WAND/MaxScore pruning:
/// the largest `√tf/√field_len` over the whole list and per 64-posting
/// block. Bounds grow incrementally on `push_occurrence`; tombstoning
/// leaves them stale-high (still a valid upper bound, merely loose), and
/// `vacuum()` / the codec load path rebuild them tight over live postings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PostingsList {
    postings: Vec<Posting>,
    live: usize,
    max_tf_norm: f64,
    block_max: Vec<f64>,
}

impl PostingsList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Document frequency: how many documents contain the term, including
    /// tombstoned ones still awaiting vacuum.
    pub fn doc_freq(&self) -> usize {
        self.postings.len()
    }

    /// Live document frequency: postings whose document is not deleted.
    /// This is the df the TF/IDF scorer uses.
    pub fn live_doc_freq(&self) -> usize {
        self.live
    }

    /// The postings, sorted by document ordinal.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.postings.iter()
    }

    /// The last (largest) document ordinal present, if any.
    pub fn last_doc(&self) -> Option<DocOrd> {
        self.postings.last().map(|p| p.doc)
    }

    /// Record an occurrence of the term at `position` in `doc`, whose
    /// field holds `field_len` tokens. Returns `true` when this was the
    /// first occurrence for `doc` (a new posting was appended).
    ///
    /// Documents must be added in non-decreasing ordinal order (the writer
    /// guarantees this); positions in non-decreasing order per document.
    /// The document being written is assumed live, so a new posting
    /// increments the live document frequency.
    pub fn push_occurrence(&mut self, doc: DocOrd, position: u32, field_len: u32) -> bool {
        let appended = match self.postings.last_mut() {
            Some(last) if last.doc == doc => {
                last.positions.push(position);
                false
            }
            Some(last) => {
                debug_assert!(last.doc < doc, "documents must arrive in order");
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
                self.live += 1;
                true
            }
            None => {
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
                self.live += 1;
                true
            }
        };
        let tf = self.postings.last().map_or(0, Posting::term_freq);
        self.note_bound(self.postings.len() - 1, tf_norm(tf, field_len));
        appended
    }

    /// Raise the list-wide and per-block impact bounds to cover a posting
    /// at index `idx` whose `√tf/√field_len` is `norm`.
    fn note_bound(&mut self, idx: usize, norm: f64) {
        if norm > self.max_tf_norm {
            self.max_tf_norm = norm;
        }
        let b = idx / BLOCK_POSTINGS;
        if b >= self.block_max.len() {
            self.block_max.resize(b + 1, 0.0);
        }
        if norm > self.block_max[b] {
            self.block_max[b] = norm;
        }
    }

    /// One of this list's documents was tombstoned: drop it from the live
    /// document frequency. The impact bounds are deliberately left alone —
    /// a stale-high bound is still a valid upper bound — and are rebuilt
    /// tight by vacuum or a codec reload.
    pub(crate) fn note_doc_tombstoned(&mut self) {
        debug_assert!(self.live > 0, "live df underflow");
        self.live = self.live.saturating_sub(1);
    }

    /// Overwrite the live document frequency (codec load path, where
    /// liveness is only known after the document table is decoded).
    pub(crate) fn set_live_doc_freq(&mut self, live: usize) {
        debug_assert!(live <= self.postings.len());
        self.live = live;
    }

    /// Recompute the list-wide and per-block impact bounds tightly over
    /// live postings, given the owner's knowledge of per-document field
    /// lengths and liveness (codec load path, after the document table is
    /// decoded).
    pub(crate) fn rebuild_bounds<F, L>(&mut self, field_len_of: F, is_live: L)
    where
        F: Fn(DocOrd) -> u32,
        L: Fn(DocOrd) -> bool,
    {
        self.max_tf_norm = 0.0;
        self.block_max.clear();
        self.block_max
            .resize(self.postings.len().div_ceil(BLOCK_POSTINGS), 0.0);
        for (i, p) in self.postings.iter().enumerate() {
            if !is_live(p.doc) {
                continue;
            }
            let norm = tf_norm(p.term_freq(), field_len_of(p.doc));
            let b = i / BLOCK_POSTINGS;
            if norm > self.block_max[b] {
                self.block_max[b] = norm;
            }
            if norm > self.max_tf_norm {
                self.max_tf_norm = norm;
            }
        }
    }

    /// Upper bound on the Phase 1 impact any posting of this list can
    /// contribute, for a field boost and query-time idf. Computed from the
    /// maintained `√tf/√field_len` ceiling with the scorer's own factors.
    pub fn max_impact_bound(&self, boost: f64, idf: f64) -> f64 {
        boost * idf * self.max_tf_norm
    }

    /// Number of fixed-size posting blocks ([`BLOCK_POSTINGS`] each).
    pub fn block_count(&self) -> usize {
        self.block_max.len()
    }

    /// The postings of block `b` (document-ordered slice).
    pub fn block(&self, b: usize) -> &[Posting] {
        let start = b * BLOCK_POSTINGS;
        let end = ((b + 1) * BLOCK_POSTINGS).min(self.postings.len());
        &self.postings[start..end]
    }

    /// Upper bound on the impact any posting of block `b` can contribute.
    pub fn block_impact_bound(&self, b: usize, boost: f64, idf: f64) -> f64 {
        boost * idf * self.block_max[b]
    }

    /// Binary-search the posting for `doc`.
    pub fn get(&self, doc: DocOrd) -> Option<&Posting> {
        self.postings
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &self.postings[i])
    }

    /// Construct from pre-sorted postings (codec path). Until
    /// [`PostingsList::set_live_doc_freq`] corrects it, every posting is
    /// presumed live. Impact bounds are initialized pessimistically with
    /// `field_len = 1` (an upper bound for any real length ≥ 1); call
    /// [`PostingsList::rebuild_bounds`] once field lengths are known.
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].doc < w[1].doc));
        let live = postings.len();
        let mut pl = PostingsList {
            postings,
            live,
            max_tf_norm: 0.0,
            block_max: Vec::new(),
        };
        for i in 0..pl.postings.len() {
            let norm = tf_norm(pl.postings[i].term_freq(), 1);
            pl.note_bound(i, norm);
        }
        pl
    }

    /// Total occurrences across all documents.
    pub fn total_term_freq(&self) -> u64 {
        self.postings.iter().map(|p| p.term_freq() as u64).sum()
    }

    /// Tombstone ratio: the fraction of postings whose document awaits
    /// vacuum. 0 for an empty list.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.postings.is_empty() {
            return 0.0;
        }
        (self.postings.len() - self.live) as f64 / self.postings.len() as f64
    }

    /// Largest single-document term frequency across all postings —
    /// an upper bound input for per-list impact scores.
    pub fn max_term_freq(&self) -> u32 {
        self.postings
            .iter()
            .map(Posting::term_freq)
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap bytes held by this list: the postings vector
    /// at capacity plus every position vector at capacity, plus the
    /// per-block bound table.
    pub fn approx_bytes(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Posting>()
            + self
                .postings
                .iter()
                .map(|p| p.positions.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
            + self.block_max.capacity() * std::mem::size_of::<f64>()
    }
}

impl DeepSize for PostingsList {
    fn deep_size_of_children(&self) -> usize {
        self.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_group_by_document() {
        let mut pl = PostingsList::new();
        assert!(pl.push_occurrence(0, 1, 4));
        assert!(!pl.push_occurrence(0, 5, 4));
        assert!(pl.push_occurrence(2, 0, 4));
        assert_eq!(pl.doc_freq(), 2);
        assert_eq!(pl.get(0).unwrap().term_freq(), 2);
        assert_eq!(pl.get(0).unwrap().positions, [1, 5]);
        assert_eq!(pl.get(2).unwrap().term_freq(), 1);
        assert!(pl.get(1).is_none());
        assert_eq!(pl.total_term_freq(), 3);
        assert_eq!(pl.last_doc(), Some(2));
    }

    #[test]
    fn iteration_is_in_document_order() {
        let mut pl = PostingsList::new();
        for d in [0u32, 3, 7] {
            pl.push_occurrence(d, 0, 1);
        }
        let docs: Vec<_> = pl.iter().map(|p| p.doc).collect();
        assert_eq!(docs, [0, 3, 7]);
    }

    #[test]
    fn empty_list() {
        let pl = PostingsList::new();
        assert_eq!(pl.doc_freq(), 0);
        assert_eq!(pl.live_doc_freq(), 0);
        assert_eq!(pl.total_term_freq(), 0);
        assert!(pl.get(0).is_none());
        assert!(pl.last_doc().is_none());
        assert_eq!(pl.block_count(), 0);
        assert_eq!(pl.max_impact_bound(2.0, 1.5), 0.0);
    }

    #[test]
    fn live_df_tracks_tombstones() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 0, 2);
        pl.push_occurrence(0, 3, 2);
        pl.push_occurrence(1, 0, 2);
        pl.push_occurrence(4, 2, 2);
        assert_eq!(pl.live_doc_freq(), 3);
        pl.note_doc_tombstoned();
        assert_eq!(pl.live_doc_freq(), 2);
        assert_eq!(pl.doc_freq(), 3, "postings themselves stay until vacuum");
        pl.set_live_doc_freq(1);
        assert_eq!(pl.live_doc_freq(), 1);
    }

    #[test]
    fn introspection_helpers_report_the_list_shape() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 0, 10);
        pl.push_occurrence(0, 4, 10);
        pl.push_occurrence(0, 9, 10);
        pl.push_occurrence(2, 1, 10);
        assert_eq!(pl.max_term_freq(), 3);
        assert_eq!(pl.tombstone_ratio(), 0.0);
        pl.note_doc_tombstoned();
        assert_eq!(pl.tombstone_ratio(), 0.5);
        assert!(pl.approx_bytes() >= 2 * std::mem::size_of::<Posting>() + 4 * 4);
        assert_eq!(PostingsList::new().tombstone_ratio(), 0.0);
        assert_eq!(PostingsList::new().max_term_freq(), 0);
    }

    #[test]
    fn from_postings_presumes_live() {
        let pl = PostingsList::from_postings(vec![
            Posting {
                doc: 0,
                positions: vec![0],
            },
            Posting {
                doc: 5,
                positions: vec![1, 2],
            },
        ]);
        assert_eq!(pl.live_doc_freq(), 2);
    }

    #[test]
    fn bounds_track_the_best_posting() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 0, 16); // tf 1, len 16 → 1/4
        assert!((pl.max_impact_bound(1.0, 1.0) - 0.25).abs() < 1e-12);
        pl.push_occurrence(1, 0, 4); // tf 1, len 4 → 1/2
        pl.push_occurrence(1, 1, 4); // tf 2, len 4 → √2/2
        let expect = (2.0f64).sqrt() / 2.0;
        assert!((pl.max_impact_bound(1.0, 1.0) - expect).abs() < 1e-12);
        // Boost and idf multiply straight through.
        assert!((pl.max_impact_bound(2.0, 3.0) - 6.0 * expect).abs() < 1e-12);
    }

    #[test]
    fn blocks_partition_postings_with_local_bounds() {
        let mut pl = PostingsList::new();
        for d in 0..(BLOCK_POSTINGS as u32 + 10) {
            pl.push_occurrence(d, 0, 4);
        }
        // The best posting lands in the second block: tf 2.
        pl.push_occurrence(BLOCK_POSTINGS as u32 + 10, 0, 4);
        pl.push_occurrence(BLOCK_POSTINGS as u32 + 10, 1, 4);
        assert_eq!(pl.block_count(), 2);
        assert_eq!(pl.block(0).len(), BLOCK_POSTINGS);
        assert_eq!(pl.block(1).len(), 11);
        assert!(pl.block_impact_bound(1, 1.0, 1.0) > pl.block_impact_bound(0, 1.0, 1.0));
        // The list bound equals the best block bound.
        assert!((pl.max_impact_bound(1.0, 1.0) - pl.block_impact_bound(1, 1.0, 1.0)).abs() < 1e-15);
        // Every posting's tf_norm is dominated by its block's bound.
        for b in 0..pl.block_count() {
            let bound = pl.block_impact_bound(b, 1.0, 1.0);
            for p in pl.block(b) {
                assert!(tf_norm(p.term_freq(), 4) <= bound + 1e-15);
            }
        }
    }

    #[test]
    fn tombstones_leave_bounds_stale_high_and_rebuild_tightens() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 0, 1); // tf 1, len 1 → 1.0 (the best)
        pl.push_occurrence(1, 0, 4); // tf 1, len 4 → 0.5
        pl.note_doc_tombstoned(); // pretend doc 0 died
                                  // Stale-high: still 1.0, a valid (loose) bound.
        assert!((pl.max_impact_bound(1.0, 1.0) - 1.0).abs() < 1e-12);
        // Rebuild with doc 0 dead tightens to doc 1's norm.
        pl.rebuild_bounds(|d| if d == 0 { 1 } else { 4 }, |d| d != 0);
        assert!((pl.max_impact_bound(1.0, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(pl.block_count(), 1);
        assert!((pl.block_impact_bound(0, 1.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_postings_bounds_are_pessimistic_but_valid() {
        // Without field lengths the constructor assumes len 1 — an upper
        // bound for any real length.
        let pl = PostingsList::from_postings(vec![Posting {
            doc: 0,
            positions: vec![0, 5],
        }]);
        assert!((pl.max_impact_bound(1.0, 1.0) - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(pl.block_count(), 1);
    }
}
