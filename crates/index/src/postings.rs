//! Postings lists: per-term document occurrences with positions.

use schemr_obs::DeepSize;
use serde::{Deserialize, Serialize};

use crate::DocOrd;

/// One document's occurrence record for a term in a field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Dense document ordinal.
    pub doc: DocOrd,
    /// Token positions of the term within the field (sorted ascending) —
    /// the "proximity data" the paper's index stores.
    pub positions: Vec<u32>,
}

impl Posting {
    /// Term frequency in this document/field.
    pub fn term_freq(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// A term's postings within one field: documents sorted by ordinal.
///
/// Alongside the postings themselves the list maintains a **live document
/// frequency** — the number of postings whose document is not tombstoned.
/// Writers keep it incrementally up to date (`push_occurrence` counts the
/// new document as live; the index decrements it when a document is
/// tombstoned) so the scorer never has to rescan postings against the
/// tombstone table just to compute df.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingsList {
    postings: Vec<Posting>,
    live: usize,
}

impl PostingsList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Document frequency: how many documents contain the term, including
    /// tombstoned ones still awaiting vacuum.
    pub fn doc_freq(&self) -> usize {
        self.postings.len()
    }

    /// Live document frequency: postings whose document is not deleted.
    /// This is the df the TF/IDF scorer uses.
    pub fn live_doc_freq(&self) -> usize {
        self.live
    }

    /// The postings, sorted by document ordinal.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.postings.iter()
    }

    /// The last (largest) document ordinal present, if any.
    pub fn last_doc(&self) -> Option<DocOrd> {
        self.postings.last().map(|p| p.doc)
    }

    /// Record an occurrence of the term at `position` in `doc`. Returns
    /// `true` when this was the first occurrence for `doc` (a new posting
    /// was appended).
    ///
    /// Documents must be added in non-decreasing ordinal order (the writer
    /// guarantees this); positions in non-decreasing order per document.
    /// The document being written is assumed live, so a new posting
    /// increments the live document frequency.
    pub fn push_occurrence(&mut self, doc: DocOrd, position: u32) -> bool {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => {
                last.positions.push(position);
                false
            }
            Some(last) => {
                debug_assert!(last.doc < doc, "documents must arrive in order");
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
                self.live += 1;
                true
            }
            None => {
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
                self.live += 1;
                true
            }
        }
    }

    /// One of this list's documents was tombstoned: drop it from the live
    /// document frequency.
    pub(crate) fn note_doc_tombstoned(&mut self) {
        debug_assert!(self.live > 0, "live df underflow");
        self.live = self.live.saturating_sub(1);
    }

    /// Overwrite the live document frequency (codec load path, where
    /// liveness is only known after the document table is decoded).
    pub(crate) fn set_live_doc_freq(&mut self, live: usize) {
        debug_assert!(live <= self.postings.len());
        self.live = live;
    }

    /// Binary-search the posting for `doc`.
    pub fn get(&self, doc: DocOrd) -> Option<&Posting> {
        self.postings
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &self.postings[i])
    }

    /// Construct from pre-sorted postings (codec path). Until
    /// [`PostingsList::set_live_doc_freq`] corrects it, every posting is
    /// presumed live.
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].doc < w[1].doc));
        let live = postings.len();
        PostingsList { postings, live }
    }

    /// Total occurrences across all documents.
    pub fn total_term_freq(&self) -> u64 {
        self.postings.iter().map(|p| p.term_freq() as u64).sum()
    }

    /// Tombstone ratio: the fraction of postings whose document awaits
    /// vacuum. 0 for an empty list.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.postings.is_empty() {
            return 0.0;
        }
        (self.postings.len() - self.live) as f64 / self.postings.len() as f64
    }

    /// Largest single-document term frequency across all postings —
    /// an upper bound input for per-list impact scores.
    pub fn max_term_freq(&self) -> u32 {
        self.postings
            .iter()
            .map(Posting::term_freq)
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap bytes held by this list: the postings vector
    /// at capacity plus every position vector at capacity.
    pub fn approx_bytes(&self) -> usize {
        self.postings.capacity() * std::mem::size_of::<Posting>()
            + self
                .postings
                .iter()
                .map(|p| p.positions.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

impl DeepSize for PostingsList {
    fn deep_size_of_children(&self) -> usize {
        self.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_group_by_document() {
        let mut pl = PostingsList::new();
        assert!(pl.push_occurrence(0, 1));
        assert!(!pl.push_occurrence(0, 5));
        assert!(pl.push_occurrence(2, 0));
        assert_eq!(pl.doc_freq(), 2);
        assert_eq!(pl.get(0).unwrap().term_freq(), 2);
        assert_eq!(pl.get(0).unwrap().positions, [1, 5]);
        assert_eq!(pl.get(2).unwrap().term_freq(), 1);
        assert!(pl.get(1).is_none());
        assert_eq!(pl.total_term_freq(), 3);
        assert_eq!(pl.last_doc(), Some(2));
    }

    #[test]
    fn iteration_is_in_document_order() {
        let mut pl = PostingsList::new();
        for d in [0u32, 3, 7] {
            pl.push_occurrence(d, 0);
        }
        let docs: Vec<_> = pl.iter().map(|p| p.doc).collect();
        assert_eq!(docs, [0, 3, 7]);
    }

    #[test]
    fn empty_list() {
        let pl = PostingsList::new();
        assert_eq!(pl.doc_freq(), 0);
        assert_eq!(pl.live_doc_freq(), 0);
        assert_eq!(pl.total_term_freq(), 0);
        assert!(pl.get(0).is_none());
        assert!(pl.last_doc().is_none());
    }

    #[test]
    fn live_df_tracks_tombstones() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 0);
        pl.push_occurrence(0, 3);
        pl.push_occurrence(1, 0);
        pl.push_occurrence(4, 2);
        assert_eq!(pl.live_doc_freq(), 3);
        pl.note_doc_tombstoned();
        assert_eq!(pl.live_doc_freq(), 2);
        assert_eq!(pl.doc_freq(), 3, "postings themselves stay until vacuum");
        pl.set_live_doc_freq(1);
        assert_eq!(pl.live_doc_freq(), 1);
    }

    #[test]
    fn introspection_helpers_report_the_list_shape() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 0);
        pl.push_occurrence(0, 4);
        pl.push_occurrence(0, 9);
        pl.push_occurrence(2, 1);
        assert_eq!(pl.max_term_freq(), 3);
        assert_eq!(pl.tombstone_ratio(), 0.0);
        pl.note_doc_tombstoned();
        assert_eq!(pl.tombstone_ratio(), 0.5);
        assert!(pl.approx_bytes() >= 2 * std::mem::size_of::<Posting>() + 4 * 4);
        assert_eq!(PostingsList::new().tombstone_ratio(), 0.0);
        assert_eq!(PostingsList::new().max_term_freq(), 0);
    }

    #[test]
    fn from_postings_presumes_live() {
        let pl = PostingsList::from_postings(vec![
            Posting {
                doc: 0,
                positions: vec![0],
            },
            Posting {
                doc: 5,
                positions: vec![1, 2],
            },
        ]);
        assert_eq!(pl.live_doc_freq(), 2);
    }
}
