//! Postings lists: per-term document occurrences with positions.

use serde::{Deserialize, Serialize};

use crate::DocOrd;

/// One document's occurrence record for a term in a field.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// Dense document ordinal.
    pub doc: DocOrd,
    /// Token positions of the term within the field (sorted ascending) —
    /// the "proximity data" the paper's index stores.
    pub positions: Vec<u32>,
}

impl Posting {
    /// Term frequency in this document/field.
    pub fn term_freq(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// A term's postings within one field: documents sorted by ordinal.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostingsList {
    postings: Vec<Posting>,
}

impl PostingsList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Document frequency: how many documents contain the term.
    pub fn doc_freq(&self) -> usize {
        self.postings.len()
    }

    /// The postings, sorted by document ordinal.
    pub fn iter(&self) -> impl Iterator<Item = &Posting> {
        self.postings.iter()
    }

    /// Record an occurrence of the term at `position` in `doc`.
    ///
    /// Documents must be added in non-decreasing ordinal order (the writer
    /// guarantees this); positions in non-decreasing order per document.
    pub fn push_occurrence(&mut self, doc: DocOrd, position: u32) {
        match self.postings.last_mut() {
            Some(last) if last.doc == doc => last.positions.push(position),
            Some(last) => {
                debug_assert!(last.doc < doc, "documents must arrive in order");
                self.postings.push(Posting {
                    doc,
                    positions: vec![position],
                });
            }
            None => self.postings.push(Posting {
                doc,
                positions: vec![position],
            }),
        }
    }

    /// Binary-search the posting for `doc`.
    pub fn get(&self, doc: DocOrd) -> Option<&Posting> {
        self.postings
            .binary_search_by_key(&doc, |p| p.doc)
            .ok()
            .map(|i| &self.postings[i])
    }

    /// Construct from pre-sorted postings (codec path).
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].doc < w[1].doc));
        PostingsList { postings }
    }

    /// Total occurrences across all documents.
    pub fn total_term_freq(&self) -> u64 {
        self.postings.iter().map(|p| p.term_freq() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_group_by_document() {
        let mut pl = PostingsList::new();
        pl.push_occurrence(0, 1);
        pl.push_occurrence(0, 5);
        pl.push_occurrence(2, 0);
        assert_eq!(pl.doc_freq(), 2);
        assert_eq!(pl.get(0).unwrap().term_freq(), 2);
        assert_eq!(pl.get(0).unwrap().positions, [1, 5]);
        assert_eq!(pl.get(2).unwrap().term_freq(), 1);
        assert!(pl.get(1).is_none());
        assert_eq!(pl.total_term_freq(), 3);
    }

    #[test]
    fn iteration_is_in_document_order() {
        let mut pl = PostingsList::new();
        for d in [0u32, 3, 7] {
            pl.push_occurrence(d, 0);
        }
        let docs: Vec<_> = pl.iter().map(|p| p.doc).collect();
        assert_eq!(docs, [0, 3, 7]);
    }

    #[test]
    fn empty_list() {
        let pl = PostingsList::new();
        assert_eq!(pl.doc_freq(), 0);
        assert_eq!(pl.total_term_freq(), 0);
        assert!(pl.get(0).is_none());
    }
}
