//! Disjunctive TF/IDF scoring with the coordination factor — Phase 1 of the
//! paper's search algorithm (Candidate Extraction) — plus WAND/MaxScore
//! top-n pruning over the maintained per-list and per-block impact bounds.
//!
//! ## Segmented scanning
//!
//! The scorer runs over an immutable [`IndexSnapshot`] — no lock is held
//! anywhere in this module. Segments are scanned sequentially; inside each
//! segment the query's list portions are processed in the *global*
//! deterministic order (strongest `boost · idf` term first), and idf is
//! computed from corpus-wide live document frequencies. A document lives
//! in exactly one segment, so it accumulates the exact same f64 additions
//! in the exact same order as a monolithic index over the same corpus —
//! results are **bitwise identical** across any segment layout, the
//! invariant the segmented-vs-monolithic oracle asserts.
//!
//! The top-n floor θ is shared across segments: the running top-n heap is
//! carried from segment to segment and its scores (exact, final) extend
//! the floor selection, so a later segment starts pruning at full
//! strength instead of warming a fresh floor from nothing. Per-segment
//! bounds (suffix sums, distinct-term caps, proximity ceilings) are
//! computed over the segment's own portions — tighter than any global
//! bound, and valid because a document can only gain from lists in its
//! own segment.
//!
//! ## How pruning works
//!
//! Every query (term, field) list carries an upper bound on the impact any
//! single posting can contribute: `boost · idf · max(√tf/√field_len)`, with
//! the `√tf/√field_len` ceiling maintained incrementally by the index (see
//! [`crate::postings::PostingsList`]). Lists are processed in descending
//! bound order. After each list, the scorer selects the top-n *lower*
//! bounds among touched documents and carried hits (partial score ×
//! matched/total when coordination is on — monotonically nondecreasing,
//! hence a valid lower bound on each document's final score) as the floor
//! θ. From then on:
//!
//! - a document whose partial score plus the summed bounds of all
//!   remaining lists plus the maximum attainable proximity credit is below
//!   θ is dropped from the candidate set;
//! - a posting block whose block bound plus the remaining-list bounds plus
//!   the proximity ceiling is below θ cannot admit *new* documents, so the
//!   scorer only probes surviving candidates inside it (binary search) —
//!   or skips it outright when no candidate falls in its range.
//!
//! Two scoring subtleties make the bound derivation non-trivial: the
//! coordination factor multiplies afterwards (≤ 1, so ignoring it keeps
//! upper bounds valid), but the **proximity bonus adds afterwards**, so
//! every upper bound must include the query's maximum attainable proximity
//! credit — `proximity_weight · Σ field boosts` over adjacent distinct
//! query-term pairs whose lists both exist with live postings in the
//! segment at hand.
//!
//! Pruned and exhaustive modes share the bound-sorted list order, so a
//! returned document accumulates the exact same f64 additions in the exact
//! same order in both — results are bitwise identical, which the
//! `pruning_oracle` integration suite asserts.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use schemr_model::SchemaId;

use crate::field::Field;
use crate::metrics::IndexMetrics;
use crate::postings::PostingsList;
use crate::segment::Segment;
use crate::snapshot::IndexSnapshot;

/// Multiplied into every stored upper bound before comparison: the bound's
/// arithmetic differs from the scorer's by a handful of f64 ops (≈1e-16
/// relative), so 1e-9 of slack leaves six orders of margin while staying
/// far too small to admit real extra work.
const BOUND_SLACK: f64 = 1.0 + 1e-9;
/// The pruning floor is deflated by the same margin before use, so every
/// bound-vs-floor comparison is doubly safe against rounding.
const FLOOR_SLACK: f64 = 1.0 - 1e-9;

/// Options controlling candidate extraction.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Return at most this many hits (the paper's top-*n* candidates).
    pub top_n: usize,
    /// Multiply scores by the coordination factor — "the number of terms
    /// matched divided by the number of terms in the query". Ablated in
    /// experiment E5.
    pub coordination: bool,
    /// Weight of the adjacency (proximity) bonus. The index stores
    /// "proximity data" per the paper; consecutive query terms found at
    /// adjacent positions in a field (the tokens of one compound element
    /// name like `patient_height`) earn this extra credit. 0 disables.
    pub proximity_weight: f64,
    /// Enable WAND/MaxScore top-n pruning: skip postings (whole lists and
    /// whole blocks) that provably cannot place a document in the top n.
    /// Results are bitwise identical either way; `false` forces the
    /// exhaustive scan (the pruning bench's baseline).
    pub prune: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            top_n: 50,
            coordination: true,
            proximity_weight: 0.25,
            prune: true,
        }
    }
}

/// A scored candidate document.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The schema's repository id.
    pub id: SchemaId,
    /// Coarse-grain relevance score.
    pub score: f64,
    /// How many distinct query terms matched.
    pub matched_terms: usize,
}

/// How much work one Phase 1 probe did — annotated onto the request's
/// `candidate_extraction` span when tracing is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Distinct analyzed query terms probed.
    pub distinct_terms: usize,
    /// Postings entries scanned across all term/field lookups.
    pub postings_scanned: u64,
    /// Query list portions the pruner skipped entirely (no posting
    /// visited).
    pub pruned_lists: usize,
    /// Posting entries the pruner proved irrelevant and never visited.
    pub pruned_postings: u64,
}

/// Min-heap entry for top-n selection (reverse ordering on score). Carries
/// the matched-term count along so building a hit never needs a side
/// lookup over the full scored set.
struct HeapEntry {
    score: f64,
    id: SchemaId,
    matched: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        // Derived from `cmp` so Eq and Ord can never disagree — the
        // `BinaryHeap` consistency contract.
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score so the max-heap's root is the *worst* hit; ties
        // break on the external id (larger id is worse), matching the
        // final result ordering so truncation is always a prefix of the
        // full ranking. Scores are never NaN, so `total_cmp` agrees with
        // IEEE comparison while keeping the ordering total. The (score,
        // id) order is layout-independent, so carrying the heap across
        // segments selects the same top n as one corpus-wide pass.
        other
            .score
            .total_cmp(&self.score)
            .then(self.id.cmp(&other.id))
    }
}

/// Per-thread scratch buffers for the scoring loop, reused across queries
/// (and across the segments of one query — `begin` is called once per
/// segment, so accumulators are segment-ordinal-indexed).
///
/// Accumulators are dense, ordinal-indexed arrays instead of hash maps:
/// every access is a direct index, and "clearing" between queries is an
/// epoch-stamp bump, so reset cost is O(docs touched by the previous
/// query), not O(corpus). `doc_stamp[ord] == query stamp` means the slot's
/// `score`/`matched` values belong to the current query; `term_stamp`
/// guards the matched-count increment so each distinct term counts a
/// document at most once across fields; `pruned[ord] == query stamp` marks
/// a document the pruner proved unable to rank. Stamps are `u64` and never
/// reset, so they cannot collide within a process lifetime.
#[derive(Default)]
struct Scratch {
    score: Vec<f64>,
    matched: Vec<u32>,
    doc_stamp: Vec<u64>,
    term_stamp: Vec<u64>,
    pruned: Vec<u64>,
    /// Ordinals touched by the current (query, segment) pass, in
    /// first-touch order — drives top-n selection without scanning the
    /// whole segment.
    touched: Vec<u32>,
    /// Per-distinct-term stamps for the current pass, pre-assigned
    /// because the bound-sorted walk interleaves terms' field lists.
    term_ids: Vec<u64>,
    /// Floor-selection buffer (per-document lower bounds).
    lower: Vec<f64>,
    /// Surviving candidate ordinals, sorted ascending — the documents a
    /// suppressed block still has to probe for.
    cands: Vec<u32>,
    stamp: u64,
}

impl Scratch {
    /// Start a new pass over `n_docs` document slots with `n_terms`
    /// distinct terms; returns the pass stamp.
    fn begin(&mut self, n_docs: usize, n_terms: usize) -> u64 {
        if self.score.len() < n_docs {
            self.score.resize(n_docs, 0.0);
            self.matched.resize(n_docs, 0);
            self.doc_stamp.resize(n_docs, 0);
            self.term_stamp.resize(n_docs, 0);
            self.pruned.resize(n_docs, 0);
        }
        self.touched.clear();
        self.stamp += 1;
        let q = self.stamp;
        self.term_ids.clear();
        self.term_ids.extend((1..=n_terms as u64).map(|i| q + i));
        self.stamp += n_terms as u64;
        q
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// The scorer's inverse document frequency for a term with `live_df`
/// live postings in a corpus of `n_docs` live documents. Both inputs are
/// corpus-wide (summed across segments), so idf — and every score — is a
/// function of live content only, never of segment layout.
pub(crate) fn idf_weight(live_df: usize, n_docs: f64) -> f64 {
    1.0 + (n_docs / (1.0 + live_df as f64)).ln()
}

/// One posting's Phase 1 score contribution for `field`:
/// `boost · √tf · idf · 1/√field_len`. Shared between the scan loop and
/// the introspection plane's per-list max-impact bound (the WAND
/// precursor), so the published bound is computed with the scorer's own
/// arithmetic and can never drift from it.
pub(crate) fn impact(field: Field, term_freq: u32, idf: f64, field_len: u32) -> f64 {
    let tf = (term_freq as f64).sqrt();
    let norm = 1.0 / (field_len.max(1) as f64).sqrt();
    field.boost() * tf * idf * norm
}

/// Is any position in `b` exactly one after a position in `a`? Both
/// slices are sorted ascending; two-pointer scan, O(|a| + |b|).
fn has_adjacent(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let want = a[i] + 1;
        match b[j].cmp(&want) {
            Ordering::Equal => return true,
            Ordering::Less => j += 1,
            Ordering::Greater => i += 1,
        }
    }
    false
}

/// One (term, field) query list with its global idf and the per-segment
/// portions that hold live postings for it.
struct QueryList<'a> {
    term_idx: usize,
    field: Field,
    idf: f64,
    /// `(segment index, portion)` for every segment where the list has
    /// live postings, in segment order.
    portions: Vec<(usize, &'a PostingsList)>,
}

/// One portion of a query list inside the segment currently being
/// scanned, with its slacked per-segment impact upper bound.
struct SegList<'a, 'b> {
    list: &'b QueryList<'a>,
    pl: &'a PostingsList,
    bound: f64,
}

/// Recompute the pruning floor θ at a list boundary: the top-n-th largest
/// per-document *lower* bound among surviving touched documents plus the
/// (exact, final) scores already in the carried cross-segment heap,
/// deflated by [`FLOOR_SLACK`]. Also re-derives the surviving candidate
/// set — documents whose upper bound cannot reach θ are marked pruned for
/// this pass. The upper bound is `(score + headroom)` (headroom =
/// remaining list bounds + proximity ceiling), and with coordination on
/// it is additionally scaled by the best coordination factor the document
/// can still attain: `min(total, matched + distinct_remaining) / total`.
/// Without that scaling the floor (which IS coordinated) sits a factor of
/// up to `total_terms` below every uncoordinated upper bound and pruning
/// never fires on multi-term queries. Returns `NEG_INFINITY` (pruning
/// inert) while fewer than top-n documents survive, which keeps
/// tiny-corpus behavior exhaustive.
fn refresh_floor(
    scratch: &mut Scratch,
    q_stamp: u64,
    options: &SearchOptions,
    total_terms: usize,
    headroom: f64,
    distinct_remaining: usize,
    carried: &BinaryHeap<HeapEntry>,
) -> f64 {
    let Scratch {
        score,
        matched,
        pruned,
        touched,
        lower,
        cands,
        ..
    } = scratch;
    lower.clear();
    // Hits carried from earlier segments are final scores — the strongest
    // possible lower bounds, and what lets a later segment prune from its
    // very first list.
    lower.extend(carried.iter().map(|e| e.score));
    for &ord in touched.iter() {
        let o = ord as usize;
        if pruned[o] == q_stamp {
            continue;
        }
        // Monotone lower bound on the final score: the partial sum only
        // grows, matched/total only grows, and proximity only adds.
        let lb = if options.coordination {
            score[o] * (matched[o] as f64 / total_terms as f64)
        } else {
            score[o]
        };
        lower.push(lb);
    }
    if lower.len() < options.top_n {
        return f64::NEG_INFINITY;
    }
    let k = options.top_n - 1;
    let (_, kth, _) = lower.select_nth_unstable_by(k, |a, b| b.total_cmp(a));
    let floor = *kth * FLOOR_SLACK;
    cands.clear();
    for &ord in touched.iter() {
        let o = ord as usize;
        if pruned[o] == q_stamp {
            continue;
        }
        // Best attainable final score. For documents whose tracked score
        // is exact-so-far this dominates their true final (score and
        // matched only grow by what the remaining lists hold); documents
        // that entered understated via a suppressed block were already
        // proven unable to reach the (monotone) floor when first
        // suppressed, so pruning them here is sound regardless.
        let upper = if options.coordination {
            let best_matched = (matched[o] as usize + distinct_remaining).min(total_terms);
            (score[o] + headroom) * (best_matched as f64 / total_terms as f64)
        } else {
            score[o] + headroom
        };
        if upper < floor {
            pruned[o] = q_stamp;
        } else {
            cands.push(ord);
        }
    }
    cands.sort_unstable();
    floor
}

/// Score every document against the analyzed query terms and return the top
/// `options.top_n` by score.
///
/// Per the paper: each term scores independently (pure disjunction — "the
/// candidate extraction algorithm need not match all search terms"), the
/// per-term scores are summed, and the coordination factor is multiplied
/// in afterwards. With `options.prune` the scan skips lists and blocks
/// that provably cannot place a document in the top n; the returned hits
/// are bitwise identical to the exhaustive scan's — and to a monolithic
/// index's, whatever the segment layout.
pub(crate) fn search_postings(
    snap: &IndexSnapshot,
    terms: &[String],
    options: &SearchOptions,
    metrics: &IndexMetrics,
) -> (Vec<Hit>, ProbeStats) {
    if terms.is_empty() || snap.live_docs == 0 || options.top_n == 0 {
        return (Vec::new(), ProbeStats::default());
    }
    // Distinct terms: a query repeating a word is one semantic term both
    // for scoring and for the coordination denominator.
    let mut distinct: Vec<&String> = terms.iter().collect();
    distinct.sort();
    distinct.dedup();
    metrics.terms_looked_up.add(distinct.len() as u64);
    // Accumulated locally and published once — the scan loop stays free
    // of atomic traffic.
    let mut postings_scanned = 0u64;
    let mut pruned_postings = 0u64;
    let mut pruned_lists = 0usize;

    let n_docs = snap.live_docs as f64;
    let total_terms = distinct.len();

    // Gather the query's (term, field) lists with their live portions.
    // Borrowed dictionary lookups: no term is cloned to probe the maps.
    // df is corpus-wide (summed across segments) so idf is content-
    // determined; a portion whose segment-live df is zero holds only
    // tombstoned postings and is dropped here, exactly as a monolith
    // drops a df-0 list.
    let mut lists: Vec<QueryList<'_>> = Vec::new();
    for (term_idx, term) in distinct.iter().enumerate() {
        for field in Field::ALL {
            let field_ord = field.ordinal() as usize;
            let mut portions: Vec<(usize, &PostingsList)> = Vec::new();
            let mut df = 0usize;
            for (si, seg) in snap.segments.iter().enumerate() {
                let Some(pl) = seg.data.field_terms(field).get(term.as_str()) else {
                    continue;
                };
                // Live document frequency, maintained incrementally by
                // the writers — no tombstone rescan per query.
                let live = seg.live_df(field_ord, term, pl);
                if live == 0 {
                    continue;
                }
                df += live;
                portions.push((si, pl));
            }
            if df == 0 {
                continue;
            }
            lists.push(QueryList {
                term_idx,
                field,
                idf: idf_weight(df, n_docs),
                portions,
            });
        }
    }
    // Process lists term-major — every field list of a term adjacent —
    // with terms ordered by their strongest `boost · idf` descending
    // (ties broken by term, then field within a term; all deterministic).
    //
    // Term-major is a correctness requirement: the matched-term counter
    // uses one stamp per document, which only stays exact while a term's
    // lists are processed consecutively (an intervening term's list would
    // reset the stamp and double-count the first term, inflating the
    // coordination factor past 1).
    //
    // Priority order is what makes pruning effective: rare, high-impact
    // terms build the top-n floor early so long common-term lists are
    // prunable by the time they come up. `boost · idf` tracks the bound's
    // magnitude but depends only on live content (live df, live doc
    // count), never on physical index state, so per-document accumulation
    // sequences — and therefore result bit patterns — are identical
    // between the pruned and exhaustive modes and across churned,
    // sealed, merged, vacuumed, and freshly loaded copies of the same
    // corpus, which ordering by the stale-high stored bounds could not
    // guarantee.
    let mut term_prio = vec![0.0f64; total_terms];
    for l in &lists {
        let p = l.field.boost() * l.idf;
        if p > term_prio[l.term_idx] {
            term_prio[l.term_idx] = p;
        }
    }
    lists.sort_by(|a, b| {
        term_prio[b.term_idx]
            .total_cmp(&term_prio[a.term_idx])
            .then_with(|| distinct[a.term_idx].cmp(distinct[b.term_idx]))
            .then_with(|| a.field.ordinal().cmp(&b.field.ordinal()))
    });

    let mut hits = SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        // The cross-segment top-n heap: hits survive from one segment to
        // the next, so the floor a later segment starts from is the real
        // global floor, not a per-segment restart.
        let mut carried: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(
            options
                .top_n
                .saturating_add(1)
                .min(snap.total_docs.saturating_add(1)),
        );

        for (si, seg) in snap.segments.iter().enumerate() {
            if seg.live_docs() == 0 {
                continue;
            }
            // This segment's portions, in the global list order.
            let seg_lists: Vec<SegList<'_, '_>> = lists
                .iter()
                .filter_map(|l| {
                    l.portions
                        .iter()
                        .find(|&&(s, _)| s == si)
                        .map(|&(_, pl)| SegList {
                            list: l,
                            pl,
                            bound: l.pl_bound(pl),
                        })
                })
                .collect();
            if seg_lists.is_empty() {
                continue;
            }
            scan_segment(
                seg,
                &seg_lists,
                terms,
                options,
                total_terms,
                &mut scratch,
                &mut carried,
                &mut postings_scanned,
                &mut pruned_postings,
                &mut pruned_lists,
            );
        }

        carried
            .into_iter()
            .map(|e| Hit {
                id: e.id,
                score: e.score,
                matched_terms: e.matched as usize,
            })
            .collect::<Vec<Hit>>()
    });
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
    metrics.postings_scanned.add(postings_scanned);
    metrics.candidates_returned.add(hits.len() as u64);
    metrics.lists_pruned.add(pruned_lists as u64);
    metrics.postings_pruned.add(pruned_postings);
    (
        hits,
        ProbeStats {
            distinct_terms: total_terms,
            postings_scanned,
            pruned_lists,
            pruned_postings,
        },
    )
}

impl QueryList<'_> {
    /// The slacked impact upper bound of one of this list's portions.
    fn pl_bound(&self, pl: &PostingsList) -> f64 {
        pl.max_impact_bound(self.field.boost(), self.idf) * BOUND_SLACK
    }
}

/// Scan one segment: score its portions in global list order, apply the
/// proximity walk, and fold survivors into the carried cross-segment
/// top-n heap.
#[allow(clippy::too_many_arguments)]
fn scan_segment(
    seg: &Segment,
    seg_lists: &[SegList<'_, '_>],
    terms: &[String],
    options: &SearchOptions,
    total_terms: usize,
    scratch: &mut Scratch,
    carried: &mut BinaryHeap<HeapEntry>,
    postings_scanned: &mut u64,
    pruned_postings: &mut u64,
    pruned_lists: &mut usize,
) {
    let docs = &seg.data.docs;
    let overlay = &*seg.live;
    let overlay_dirty = overlay.dead_docs > 0;

    // suffix[i]: upper bound on what this segment's portions i.. can
    // still add to any one document's score. Per-segment — a document
    // can only gain from lists in its own segment, so this is tighter
    // than any global sum while staying a valid bound.
    let mut suffix = vec![0.0f64; seg_lists.len() + 1];
    for i in (0..seg_lists.len()).rev() {
        suffix[i] = suffix[i + 1] + seg_lists[i].bound;
    }
    // distinct_from[i]: how many distinct query terms still have a
    // portion in this segment at position i or later. A document first
    // touched at portion i appears in no earlier portion, and every term
    // it matches has at least one live portion here, so its final matched
    // count — and with coordination on, its coordination factor — is
    // capped by this value. Scaling admission bounds by it is what lets
    // pruning fire on multi-term coordinated queries at all: the floor is
    // a *coordinated* score, so comparing it against uncoordinated impact
    // sums would leave a factor-of-`total_terms` gap no bound could ever
    // close.
    let mut distinct_from = vec![0usize; seg_lists.len() + 1];
    {
        let mut seen = vec![false; total_terms];
        let mut count = 0usize;
        for i in (0..seg_lists.len()).rev() {
            if !seen[seg_lists[i].list.term_idx] {
                seen[seg_lists[i].list.term_idx] = true;
                count += 1;
            }
            distinct_from[i] = count;
        }
    }
    // Maximum attainable proximity credit for any single document in this
    // segment: one adjacency bonus per adjacent distinct query-term pair
    // per field where both lists have live postings *here*. The proximity
    // bonus adds *after* the impact sum, so it must ride along in every
    // upper bound or pruning would silently reorder results.
    let pair_alive = |field: Field, t: &String| {
        seg.data
            .field_terms(field)
            .get(t.as_str())
            .is_some_and(|p| seg.live_df(field.ordinal() as usize, t, p) > 0)
    };
    let mut prox_bound = 0.0f64;
    if options.proximity_weight > 0.0 {
        for pair in terms.windows(2) {
            if pair[0] == pair[1] {
                continue;
            }
            for field in Field::ALL {
                if pair_alive(field, &pair[0]) && pair_alive(field, &pair[1]) {
                    prox_bound += options.proximity_weight * field.boost();
                }
            }
        }
        prox_bound *= BOUND_SLACK;
    }

    let q_stamp = scratch.begin(docs.len(), total_terms);

    // θ (deflated): NEG_INFINITY means "no floor yet — scan
    // exhaustively", which is also the permanent state when pruning is
    // off. With carried hits from earlier segments the floor activates
    // before this segment's very first portion.
    let mut floor = f64::NEG_INFINITY;
    for (li, sl) in seg_lists.iter().enumerate() {
        if options.prune && (li > 0 || !carried.is_empty()) {
            floor = refresh_floor(
                scratch,
                q_stamp,
                options,
                total_terms,
                suffix[li] + prox_bound,
                distinct_from[li],
                carried,
            );
        }
        let l = sl.list;
        let t_stamp = scratch.term_ids[l.term_idx];
        let Scratch {
            score,
            matched,
            doc_stamp,
            term_stamp,
            touched,
            cands,
            ..
        } = &mut *scratch;
        let field_ord = l.field.ordinal() as usize;
        let mut visited = 0u64;
        if floor == f64::NEG_INFINITY {
            visited += sl.pl.doc_freq() as u64;
            for posting in sl.pl.iter() {
                let entry = &docs[posting.doc as usize];
                if entry.deleted || (overlay_dirty && overlay.is_dead(posting.doc)) {
                    continue;
                }
                let o = posting.doc as usize;
                if doc_stamp[o] != q_stamp {
                    doc_stamp[o] = q_stamp;
                    score[o] = 0.0;
                    matched[o] = 0;
                    touched.push(posting.doc);
                }
                score[o] += impact(
                    l.field,
                    posting.term_freq(),
                    l.idf,
                    entry.field_lengths[field_ord],
                );
                if term_stamp[o] != t_stamp {
                    term_stamp[o] = t_stamp;
                    matched[o] += 1;
                }
            }
        } else {
            let boost = l.field.boost();
            // Best coordination factor any document *first seen here*
            // can reach: it matches at most the distinct terms with a
            // portion at or after this position.
            let admit_scale = if options.coordination {
                distinct_from[li] as f64 / total_terms as f64
            } else {
                1.0
            };
            // If even the whole-portion bound cannot reach the floor, no
            // block of it can admit new documents.
            let list_admits = (sl.bound + suffix[li + 1] + prox_bound) * admit_scale >= floor;
            let mut ci = 0usize;
            for b in 0..sl.pl.block_count() {
                let blk = sl.pl.block(b);
                let first = blk[0].doc;
                let last = blk[blk.len() - 1].doc;
                while ci < cands.len() && cands[ci] < first {
                    ci += 1;
                }
                let admits = list_admits
                    && (sl.pl.block_impact_bound(b, boost, l.idf) * BOUND_SLACK
                        + suffix[li + 1]
                        + prox_bound)
                        * admit_scale
                        >= floor;
                if admits {
                    // The block might hold a document able to reach the
                    // top n: scan it in full.
                    visited += blk.len() as u64;
                    for posting in blk {
                        let entry = &docs[posting.doc as usize];
                        if entry.deleted || (overlay_dirty && overlay.is_dead(posting.doc)) {
                            continue;
                        }
                        let o = posting.doc as usize;
                        if doc_stamp[o] != q_stamp {
                            doc_stamp[o] = q_stamp;
                            score[o] = 0.0;
                            matched[o] = 0;
                            touched.push(posting.doc);
                        }
                        score[o] += impact(
                            l.field,
                            posting.term_freq(),
                            l.idf,
                            entry.field_lengths[field_ord],
                        );
                        if term_stamp[o] != t_stamp {
                            term_stamp[o] = t_stamp;
                            matched[o] += 1;
                        }
                    }
                } else {
                    // The block cannot admit new documents — only
                    // surviving candidates need their scores kept exact,
                    // and they are probed by binary search.
                    let mut probes = 0u64;
                    while ci < cands.len() && cands[ci] <= last {
                        if let Ok(pos) = blk.binary_search_by_key(&cands[ci], |p| p.doc) {
                            let p = &blk[pos];
                            let o = p.doc as usize;
                            debug_assert_eq!(doc_stamp[o], q_stamp);
                            score[o] += impact(
                                l.field,
                                p.term_freq(),
                                l.idf,
                                docs[o].field_lengths[field_ord],
                            );
                            if term_stamp[o] != t_stamp {
                                term_stamp[o] = t_stamp;
                                matched[o] += 1;
                            }
                        }
                        probes += 1;
                        ci += 1;
                    }
                    visited += probes;
                    *pruned_postings += (blk.len() as u64).saturating_sub(probes);
                }
            }
            if visited == 0 {
                *pruned_lists += 1;
            }
        }
        *postings_scanned += visited;
    }

    // Proximity bonus: consecutive query terms adjacent in a field — the
    // signature of an intact compound name.
    if options.proximity_weight > 0.0 {
        // With an active floor the pair walk is the last remaining score
        // source, so any document that cannot reach the floor even with
        // the full proximity ceiling is pruned now, and the walk
        // degenerates to probing the surviving candidates — the
        // full-list lockstep scan is otherwise the dominant cost pruning
        // cannot touch. Every surviving document still receives its
        // credits in the same (pair, field) order as the exhaustive
        // walk, so its additions — and its final bit pattern — are
        // unchanged.
        if options.prune {
            // No term lists remain: each document's coordination factor
            // is final, so `distinct_remaining` is 0 and only the
            // proximity ceiling is left as headroom.
            floor = refresh_floor(
                scratch,
                q_stamp,
                options,
                total_terms,
                prox_bound,
                0,
                carried,
            );
        }
        let probe = floor != f64::NEG_INFINITY;
        let Scratch {
            score,
            doc_stamp,
            cands,
            ..
        } = &mut *scratch;
        for pair in terms.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if a == b {
                continue;
            }
            for field in Field::ALL {
                let fterms = seg.data.field_terms(field);
                let (Some(pa), Some(pb)) = (fterms.get(a.as_str()), fterms.get(b.as_str())) else {
                    continue;
                };
                // All-tombstoned portions cannot yield a live adjacency;
                // walking them would only burn scan work under churn.
                let field_ord = field.ordinal() as usize;
                if seg.live_df(field_ord, a, pa) == 0 || seg.live_df(field_ord, b, pb) == 0 {
                    continue;
                }
                // Probing beats the lockstep walk only while the
                // candidate set is smaller than the lists; both paths
                // credit each document identically, so this is purely a
                // cost choice.
                if probe && 2 * cands.len() < pa.doc_freq() + pb.doc_freq() {
                    // Binary-search each surviving candidate in both
                    // lists; each probe pair is counted as scan work, the
                    // postings the lockstep walk would have visited are
                    // counted as pruned.
                    let mut probes = 0u64;
                    for &d in cands.iter() {
                        probes += 2;
                        let (Some(post_a), Some(post_b)) = (pa.get(d), pb.get(d)) else {
                            continue;
                        };
                        if docs[d as usize].deleted || (overlay_dirty && overlay.is_dead(d)) {
                            continue;
                        }
                        if has_adjacent(&post_a.positions, &post_b.positions) {
                            let ord = d as usize;
                            if doc_stamp[ord] == q_stamp {
                                score[ord] += options.proximity_weight * field.boost();
                            }
                        }
                    }
                    *postings_scanned += probes;
                    *pruned_postings +=
                        ((pa.doc_freq() + pb.doc_freq()) as u64).saturating_sub(probes);
                    continue;
                }
                // Walk the (sorted) postings in lockstep, counting every
                // posting the walk visits — this traversal is real scan
                // work and shows up in `postings_scanned`.
                let mut ia = pa.iter().peekable();
                for post_b in pb.iter() {
                    *postings_scanned += 1;
                    while ia.peek().is_some_and(|p| p.doc < post_b.doc) {
                        ia.next();
                        *postings_scanned += 1;
                    }
                    let Some(post_a) = ia.peek() else { break };
                    if post_a.doc != post_b.doc {
                        continue;
                    }
                    if docs[post_b.doc as usize].deleted
                        || (overlay_dirty && overlay.is_dead(post_b.doc))
                    {
                        continue;
                    }
                    if has_adjacent(&post_a.positions, &post_b.positions) {
                        let ord = post_b.doc as usize;
                        if doc_stamp[ord] == q_stamp {
                            score[ord] += options.proximity_weight * field.boost();
                        }
                    }
                }
            }
        }
    }

    // Fold this segment's survivors into the carried top-n heap. The
    // (score, id) heap order is layout-independent, so incremental
    // folding selects exactly the set a single corpus-wide pass would.
    for &ord in &scratch.touched {
        if scratch.pruned[ord as usize] == q_stamp {
            continue;
        }
        let matched = scratch.matched[ord as usize];
        let coord = if options.coordination {
            matched as f64 / total_terms as f64
        } else {
            1.0
        };
        carried.push(HeapEntry {
            score: scratch.score[ord as usize] * coord,
            id: docs[ord as usize].id,
            matched,
        });
        if carried.len() > options.top_n {
            carried.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::IndexDocument;
    use crate::memory::Index;

    fn doc(id: u64, elements: &[&str]) -> IndexDocument {
        IndexDocument {
            id: SchemaId(id),
            title: format!("schema{id}"),
            summary: String::new(),
            elements: elements.iter().map(|s| s.to_string()).collect(),
            docs: vec![],
        }
    }

    fn build(docs: &[IndexDocument]) -> Index {
        let index = Index::new();
        index.add_all(docs);
        index
    }

    #[test]
    fn more_matched_terms_rank_higher_with_coordination() {
        let index = build(&[
            doc(1, &["patient", "height", "gender", "diagnosis"]),
            doc(2, &["patient", "address", "city", "zip"]),
        ]);
        let hits = index.search(
            &["patient", "height", "gender", "diagnosis"],
            &SearchOptions::default(),
        );
        assert_eq!(hits[0].id, SchemaId(1));
        assert_eq!(hits[0].matched_terms, 4);
        assert_eq!(hits[1].matched_terms, 1);
        assert!(hits[0].score > hits[1].score * 2.0);
    }

    #[test]
    fn disjunction_preserves_recall() {
        // A document matching only one of four terms still surfaces.
        let index = build(&[doc(1, &["diagnosis"]), doc(2, &["unrelated"])]);
        let hits = index.search(
            &["patient", "height", "gender", "diagnosis"],
            &SearchOptions::default(),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, SchemaId(1));
    }

    #[test]
    fn coordination_off_flattens_the_reward() {
        let index = build(&[
            doc(1, &["patient", "height"]),
            doc(2, &["patient", "other"]),
        ]);
        let on = index.search(&["patient", "height"], &SearchOptions::default());
        let off = index.search(
            &["patient", "height"],
            &SearchOptions {
                coordination: false,
                ..Default::default()
            },
        );
        let ratio_on = on[0].score / on[1].score;
        let ratio_off = off[0].score / off[1].score;
        assert!(ratio_on > ratio_off, "coordination should widen the gap");
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let mut docs: Vec<IndexDocument> = (0..20).map(|i| doc(i, &["common"])).collect();
        docs.push(doc(100, &["common", "rare"]));
        docs.push(doc(101, &["common", "common2"]));
        let index = build(&docs);
        let hits = index.search(&["rare"], &SearchOptions::default());
        assert_eq!(hits[0].id, SchemaId(100));
    }

    #[test]
    fn top_n_truncates_deterministically() {
        let docs: Vec<IndexDocument> = (0..30).map(|i| doc(i, &["patient"])).collect();
        let index = build(&docs);
        let hits = index.search(
            &["patient"],
            &SearchOptions {
                top_n: 10,
                ..Default::default()
            },
        );
        assert_eq!(hits.len(), 10);
        // Equal scores → lowest ids win the tie-break.
        let ids: Vec<u64> = hits.iter().map(|h| h.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_query_and_empty_index() {
        let index = build(&[doc(1, &["x"])]);
        assert!(index.search(&[], &SearchOptions::default()).is_empty());
        let empty = Index::new();
        assert!(empty.search(&["x"], &SearchOptions::default()).is_empty());
        assert!(index
            .search(
                &["x"],
                &SearchOptions {
                    top_n: 0,
                    ..Default::default()
                }
            )
            .is_empty());
    }

    #[test]
    fn repeated_query_words_count_once() {
        let index = build(&[doc(1, &["patient"]), doc(2, &["patient", "height"])]);
        let once = index.search(&["patient"], &SearchOptions::default());
        let thrice = index.search(
            &["patient", "patient", "patient"],
            &SearchOptions::default(),
        );
        assert_eq!(once.len(), thrice.len());
        assert!((once[0].score - thrice[0].score).abs() < 1e-9);
    }

    #[test]
    fn has_adjacent_two_pointer() {
        assert!(has_adjacent(&[0, 5, 9], &[6]));
        assert!(has_adjacent(&[3], &[4]));
        assert!(!has_adjacent(&[3], &[3]));
        assert!(!has_adjacent(&[4], &[3]));
        assert!(!has_adjacent(&[], &[1]));
        assert!(!has_adjacent(&[1], &[]));
        assert!(has_adjacent(&[1, 10, 20], &[0, 2, 30]));
    }

    #[test]
    fn intact_compound_names_earn_the_proximity_bonus() {
        // Both docs contain "patient" and "height"; only doc 1 has them as
        // one compound element (adjacent positions after analysis).
        let index = build(&[
            doc(1, &["patient_height", "gender"]),
            doc(2, &["patient", "room", "ceiling_height"]),
        ]);
        let with = index.search(&["patient_height"], &SearchOptions::default());
        assert_eq!(with[0].id, SchemaId(1));
        let margin_with = with[0].score - with[1].score;
        let without = index.search(
            &["patient_height"],
            &SearchOptions {
                proximity_weight: 0.0,
                ..Default::default()
            },
        );
        let margin_without = without[0].score - without[1].score;
        assert!(
            margin_with > margin_without + 0.1,
            "proximity should widen the margin: {margin_with} vs {margin_without}"
        );
    }

    #[test]
    fn separate_adjacent_elements_get_no_proximity_bonus() {
        // Both documents contain "patient" and "height" with identical
        // frequencies and field lengths; only doc 1 has them inside ONE
        // compound element name. The element-boundary position gap must
        // keep doc 2's two adjacent single-token elements from collecting
        // the compound-name bonus.
        let index = build(&[
            IndexDocument {
                id: SchemaId(1),
                title: String::new(),
                summary: String::new(),
                elements: vec!["patient_height".into()],
                docs: vec![],
            },
            IndexDocument {
                id: SchemaId(2),
                title: String::new(),
                summary: String::new(),
                elements: vec!["patient".into(), "height".into()],
                docs: vec![],
            },
        ]);
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, SchemaId(1), "only the intact compound wins");
        assert!(
            hits[0].score > hits[1].score + 1e-9,
            "compound must outscore separated elements: {} vs {}",
            hits[0].score,
            hits[1].score
        );
        // Without proximity the two documents are indistinguishable.
        let flat = index.search(
            &["patient", "height"],
            &SearchOptions {
                proximity_weight: 0.0,
                ..Default::default()
            },
        );
        assert!((flat[0].score - flat[1].score).abs() < 1e-9);
    }

    #[test]
    fn postings_scanned_counts_scoring_and_proximity_work() {
        let reg = schemr_obs::MetricsRegistry::new();
        let index = Index::new().with_metrics(crate::metrics::IndexMetrics::registered(&reg));
        index.add(&IndexDocument {
            id: SchemaId(1),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient_height".into()],
            docs: vec![],
        });
        index.add(&IndexDocument {
            id: SchemaId(2),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient".into()],
            docs: vec![],
        });
        index.search(&["patient", "height"], &SearchOptions::default());
        // Scoring walks (Elements, patient) = 2 postings and
        // (Elements, height) = 1 posting; the proximity lockstep walk over
        // the (patient, height) pair visits the single height posting.
        // 2 + 1 + 1 = 4 — the metric matches the work actually done.
        // (Fewer documents than top_n touched, so pruning stays inert and
        // the counts are the exhaustive ones.)
        assert_eq!(
            reg.counter_value("schemr_index_postings_scanned_total", &[]),
            Some(4)
        );
    }

    #[test]
    fn proximity_never_changes_the_matched_count() {
        let index = build(&[doc(1, &["patient_height"])]);
        let hits = index.search(&["patient_height"], &SearchOptions::default());
        assert_eq!(hits[0].matched_terms, 2); // patient + height
    }

    #[test]
    fn title_hits_outscore_element_hits() {
        let index = build(&[
            IndexDocument {
                id: SchemaId(1),
                title: "patient".into(),
                summary: String::new(),
                elements: vec!["x".into()],
                docs: vec![],
            },
            IndexDocument {
                id: SchemaId(2),
                title: "other".into(),
                summary: String::new(),
                elements: vec!["patient".into()],
                docs: vec![],
            },
        ]);
        let hits = index.search(&["patient"], &SearchOptions::default());
        assert_eq!(hits[0].id, SchemaId(1));
    }

    #[test]
    fn heap_entry_eq_agrees_with_cmp() {
        let a = HeapEntry {
            score: 1.0,
            id: SchemaId(1),
            matched: 1,
        };
        let b = HeapEntry {
            score: 1.0,
            id: SchemaId(2),
            matched: 1,
        };
        let c = HeapEntry {
            score: 1.0,
            id: SchemaId(1),
            matched: 9,
        };
        assert_ne!(a.cmp(&b), Ordering::Equal);
        assert!(
            a != b,
            "Eq must agree with Ord: different ids compare unequal"
        );
        assert!(a == c, "Eq must agree with Ord: same (score, id) is equal");
    }

    #[test]
    fn pruning_skips_hopeless_lists_and_is_bitwise_identical() {
        let reg = schemr_obs::MetricsRegistry::new();
        let index = Index::new().with_metrics(crate::metrics::IndexMetrics::registered(&reg));
        // One document holds the rare term; two hundred hold only the
        // common term. With top_n = 1 the rare hit alone sets a floor the
        // common-only documents can never reach.
        index.add(&doc(0, &["rare"]));
        for i in 1..=200 {
            index.add(&doc(i, &["common"]));
        }
        let opts = SearchOptions {
            top_n: 1,
            ..Default::default()
        };
        let pruned = index.search(&["rare", "common"], &opts);
        assert!(
            reg.counter_value("schemr_index_lists_pruned_total", &[])
                .unwrap()
                >= 1,
            "the common list should be skipped entirely"
        );
        assert!(
            reg.counter_value("schemr_index_postings_pruned_total", &[])
                .unwrap()
                >= 200,
            "all common postings should go unvisited"
        );
        let exhaustive = index.search(
            &["rare", "common"],
            &SearchOptions {
                prune: false,
                ..opts
            },
        );
        assert_eq!(pruned.len(), exhaustive.len());
        for (p, e) in pruned.iter().zip(&exhaustive) {
            assert_eq!(p.id, e.id);
            assert_eq!(p.score.to_bits(), e.score.to_bits(), "bitwise identity");
            assert_eq!(p.matched_terms, e.matched_terms);
        }
        assert_eq!(pruned[0].id, SchemaId(0));
    }

    #[test]
    fn pruning_stays_bitwise_identical_across_segments() {
        // Same corpus shape as above, but sealed into many segments: the
        // carried floor must activate in later segments without ever
        // changing a returned bit.
        let index = Index::new().with_seal_threshold(32);
        index.add(&doc(0, &["rare"]));
        for i in 1..=200 {
            index.add(&doc(i, &["common"]));
        }
        assert!(index.segment_count() > 1);
        let opts = SearchOptions {
            top_n: 1,
            ..Default::default()
        };
        let pruned = index.search(&["rare", "common"], &opts);
        let exhaustive = index.search(
            &["rare", "common"],
            &SearchOptions {
                prune: false,
                ..opts
            },
        );
        assert_eq!(pruned.len(), exhaustive.len());
        for (p, e) in pruned.iter().zip(&exhaustive) {
            assert_eq!(p.id, e.id);
            assert_eq!(p.score.to_bits(), e.score.to_bits(), "bitwise identity");
            assert_eq!(p.matched_terms, e.matched_terms);
        }
        assert_eq!(pruned[0].id, SchemaId(0));
    }

    #[test]
    fn dead_pair_lists_skip_the_proximity_walk() {
        // Every document holding the compound pair is tombstoned; the
        // proximity walk must not traverse their dead postings.
        let reg = schemr_obs::MetricsRegistry::new();
        let index = Index::new().with_metrics(crate::metrics::IndexMetrics::registered(&reg));
        for i in 0..50 {
            index.add(&doc(i, &["patient_height"]));
        }
        for i in 0..50 {
            index.remove(SchemaId(i));
        }
        index.add(&doc(100, &["unrelated"]));
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert!(hits.is_empty());
        // Scoring skips the df-0 lists before touching postings, and the
        // proximity walk now skips the dead (patient, height) pair too.
        assert_eq!(
            reg.counter_value("schemr_index_postings_scanned_total", &[]),
            Some(0)
        );
    }
}
