//! Disjunctive TF/IDF scoring with the coordination factor — Phase 1 of the
//! paper's search algorithm (Candidate Extraction).

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use schemr_model::SchemaId;

use crate::field::Field;
use crate::memory::Inner;
use crate::metrics::IndexMetrics;

/// Options controlling candidate extraction.
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Return at most this many hits (the paper's top-*n* candidates).
    pub top_n: usize,
    /// Multiply scores by the coordination factor — "the number of terms
    /// matched divided by the number of terms in the query". Ablated in
    /// experiment E5.
    pub coordination: bool,
    /// Weight of the adjacency (proximity) bonus. The index stores
    /// "proximity data" per the paper; consecutive query terms found at
    /// adjacent positions in a field (the tokens of one compound element
    /// name like `patient_height`) earn this extra credit. 0 disables.
    pub proximity_weight: f64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            top_n: 50,
            coordination: true,
            proximity_weight: 0.25,
        }
    }
}

/// A scored candidate document.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The schema's repository id.
    pub id: SchemaId,
    /// Coarse-grain relevance score.
    pub score: f64,
    /// How many distinct query terms matched.
    pub matched_terms: usize,
}

/// How much work one Phase 1 probe did — annotated onto the request's
/// `candidate_extraction` span when tracing is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Distinct analyzed query terms probed.
    pub distinct_terms: usize,
    /// Postings entries scanned across all term/field lookups.
    pub postings_scanned: u64,
}

/// Min-heap entry for top-n selection (reverse ordering on score). Carries
/// the matched-term count along so building a hit never needs a side
/// lookup over the full scored set.
struct HeapEntry {
    score: f64,
    ord: u32,
    id: SchemaId,
    matched: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.ord == other.ord
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score so the max-heap's root is the *worst* hit; ties
        // break on the external id (larger id is worse), matching the
        // final result ordering so truncation is always a prefix of the
        // full ranking.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

/// Per-thread scratch buffers for the scoring loop, reused across queries.
///
/// Accumulators are dense, ordinal-indexed arrays instead of hash maps:
/// every access is a direct index, and "clearing" between queries is an
/// epoch-stamp bump, so reset cost is O(docs touched by the previous
/// query), not O(corpus). `doc_stamp[ord] == query stamp` means the slot's
/// `score`/`matched` values belong to the current query; `term_stamp`
/// guards the matched-count increment so each distinct term counts a
/// document at most once across fields. Stamps are `u64` and never reset,
/// so they cannot collide within a process lifetime.
#[derive(Default)]
struct Scratch {
    score: Vec<f64>,
    matched: Vec<u32>,
    doc_stamp: Vec<u64>,
    term_stamp: Vec<u64>,
    /// Ordinals touched by the current query, in first-touch order —
    /// drives top-n selection without scanning the whole corpus.
    touched: Vec<u32>,
    stamp: u64,
}

impl Scratch {
    /// Start a new query over `n_docs` document slots; returns the query
    /// stamp.
    fn begin(&mut self, n_docs: usize) -> u64 {
        if self.score.len() < n_docs {
            self.score.resize(n_docs, 0.0);
            self.matched.resize(n_docs, 0);
            self.doc_stamp.resize(n_docs, 0);
            self.term_stamp.resize(n_docs, 0);
        }
        self.touched.clear();
        self.stamp += 1;
        self.stamp
    }

    /// A fresh stamp for the next distinct query term.
    fn next_term(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// The scorer's inverse document frequency for a term with `live_df`
/// live postings in a corpus of `n_docs` live documents.
pub(crate) fn idf_weight(live_df: usize, n_docs: f64) -> f64 {
    1.0 + (n_docs / (1.0 + live_df as f64)).ln()
}

/// One posting's Phase 1 score contribution for `field`:
/// `boost · √tf · idf · 1/√field_len`. Shared between the scan loop and
/// the introspection plane's per-list max-impact bound (the WAND
/// precursor), so the published bound is computed with the scorer's own
/// arithmetic and can never drift from it.
pub(crate) fn impact(field: Field, term_freq: u32, idf: f64, field_len: u32) -> f64 {
    let tf = (term_freq as f64).sqrt();
    let norm = 1.0 / (field_len.max(1) as f64).sqrt();
    field.boost() * tf * idf * norm
}

/// Is any position in `b` exactly one after a position in `a`? Both
/// slices are sorted ascending; two-pointer scan, O(|a| + |b|).
fn has_adjacent(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let want = a[i] + 1;
        match b[j].cmp(&want) {
            Ordering::Equal => return true,
            Ordering::Less => j += 1,
            Ordering::Greater => i += 1,
        }
    }
    false
}

/// Score every document against the analyzed query terms and return the top
/// `options.top_n` by score.
///
/// Per the paper: each term scores independently (pure disjunction — "the
/// candidate extraction algorithm need not match all search terms"), the
/// per-term scores are summed, and the coordination factor is multiplied
/// in afterwards.
pub(crate) fn search_postings(
    inner: &Inner,
    terms: &[String],
    options: &SearchOptions,
    metrics: &IndexMetrics,
) -> (Vec<Hit>, ProbeStats) {
    if terms.is_empty() || inner.live_docs == 0 || options.top_n == 0 {
        return (Vec::new(), ProbeStats::default());
    }
    // Distinct terms: a query repeating a word is one semantic term both
    // for scoring and for the coordination denominator.
    let mut distinct: Vec<&String> = terms.iter().collect();
    distinct.sort();
    distinct.dedup();
    metrics.terms_looked_up.add(distinct.len() as u64);
    // Accumulated locally and published once — the scan loop stays free
    // of atomic traffic.
    let mut postings_scanned = 0u64;

    let n_docs = inner.live_docs as f64;
    let total_terms = distinct.len();

    let mut hits = SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let q_stamp = scratch.begin(inner.docs.len());

        for term in &distinct {
            let t_stamp = scratch.next_term();
            for field in Field::ALL {
                let Some(pl) = inner.terms.get(&(field.ordinal(), (*term).clone())) else {
                    continue;
                };
                // Live document frequency, maintained incrementally by the
                // writers — no tombstone rescan per query.
                let df = pl.live_doc_freq();
                if df == 0 {
                    continue;
                }
                let idf = idf_weight(df, n_docs);
                postings_scanned += pl.doc_freq() as u64;
                for posting in pl.iter() {
                    let entry = &inner.docs[posting.doc as usize];
                    if entry.deleted {
                        continue;
                    }
                    let ord = posting.doc as usize;
                    let field_len = entry.field_lengths[field.ordinal() as usize];
                    if scratch.doc_stamp[ord] != q_stamp {
                        scratch.doc_stamp[ord] = q_stamp;
                        scratch.score[ord] = 0.0;
                        scratch.matched[ord] = 0;
                        scratch.touched.push(posting.doc);
                    }
                    scratch.score[ord] += impact(field, posting.term_freq(), idf, field_len);
                    if scratch.term_stamp[ord] != t_stamp {
                        scratch.term_stamp[ord] = t_stamp;
                        scratch.matched[ord] += 1;
                    }
                }
            }
        }

        // Proximity bonus: consecutive query terms adjacent in a field —
        // the signature of an intact compound name.
        if options.proximity_weight > 0.0 {
            for pair in terms.windows(2) {
                let (a, b) = (&pair[0], &pair[1]);
                if a == b {
                    continue;
                }
                for field in Field::ALL {
                    let (Some(pa), Some(pb)) = (
                        inner.terms.get(&(field.ordinal(), a.clone())),
                        inner.terms.get(&(field.ordinal(), b.clone())),
                    ) else {
                        continue;
                    };
                    // Walk the (sorted) postings in lockstep, counting
                    // every posting the walk visits — this traversal is
                    // real scan work and shows up in `postings_scanned`.
                    let mut ia = pa.iter().peekable();
                    for post_b in pb.iter() {
                        postings_scanned += 1;
                        while ia.peek().is_some_and(|p| p.doc < post_b.doc) {
                            ia.next();
                            postings_scanned += 1;
                        }
                        let Some(post_a) = ia.peek() else { break };
                        if post_a.doc != post_b.doc {
                            continue;
                        }
                        if inner.docs[post_b.doc as usize].deleted {
                            continue;
                        }
                        if has_adjacent(&post_a.positions, &post_b.positions) {
                            let ord = post_b.doc as usize;
                            if scratch.doc_stamp[ord] == q_stamp {
                                scratch.score[ord] += options.proximity_weight * field.boost();
                            }
                        }
                    }
                }
            }
        }

        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(
            options
                .top_n
                .saturating_add(1)
                .min(scratch.touched.len() + 1),
        );
        for &ord in &scratch.touched {
            let matched = scratch.matched[ord as usize];
            let coord = if options.coordination {
                matched as f64 / total_terms as f64
            } else {
                1.0
            };
            heap.push(HeapEntry {
                score: scratch.score[ord as usize] * coord,
                ord,
                id: inner.docs[ord as usize].id,
                matched,
            });
            if heap.len() > options.top_n {
                heap.pop();
            }
        }

        heap.into_iter()
            .map(|e| Hit {
                id: e.id,
                score: e.score,
                matched_terms: e.matched as usize,
            })
            .collect::<Vec<Hit>>()
    });
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    metrics.postings_scanned.add(postings_scanned);
    metrics.candidates_returned.add(hits.len() as u64);
    (
        hits,
        ProbeStats {
            distinct_terms: total_terms,
            postings_scanned,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::IndexDocument;
    use crate::memory::Index;

    fn doc(id: u64, elements: &[&str]) -> IndexDocument {
        IndexDocument {
            id: SchemaId(id),
            title: format!("schema{id}"),
            summary: String::new(),
            elements: elements.iter().map(|s| s.to_string()).collect(),
            docs: vec![],
        }
    }

    fn build(docs: &[IndexDocument]) -> Index {
        let index = Index::new();
        index.add_all(docs);
        index
    }

    #[test]
    fn more_matched_terms_rank_higher_with_coordination() {
        let index = build(&[
            doc(1, &["patient", "height", "gender", "diagnosis"]),
            doc(2, &["patient", "address", "city", "zip"]),
        ]);
        let hits = index.search(
            &["patient", "height", "gender", "diagnosis"],
            &SearchOptions::default(),
        );
        assert_eq!(hits[0].id, SchemaId(1));
        assert_eq!(hits[0].matched_terms, 4);
        assert_eq!(hits[1].matched_terms, 1);
        assert!(hits[0].score > hits[1].score * 2.0);
    }

    #[test]
    fn disjunction_preserves_recall() {
        // A document matching only one of four terms still surfaces.
        let index = build(&[doc(1, &["diagnosis"]), doc(2, &["unrelated"])]);
        let hits = index.search(
            &["patient", "height", "gender", "diagnosis"],
            &SearchOptions::default(),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, SchemaId(1));
    }

    #[test]
    fn coordination_off_flattens_the_reward() {
        let index = build(&[
            doc(1, &["patient", "height"]),
            doc(2, &["patient", "other"]),
        ]);
        let on = index.search(&["patient", "height"], &SearchOptions::default());
        let off = index.search(
            &["patient", "height"],
            &SearchOptions {
                coordination: false,
                ..Default::default()
            },
        );
        let ratio_on = on[0].score / on[1].score;
        let ratio_off = off[0].score / off[1].score;
        assert!(ratio_on > ratio_off, "coordination should widen the gap");
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let mut docs: Vec<IndexDocument> = (0..20).map(|i| doc(i, &["common"])).collect();
        docs.push(doc(100, &["common", "rare"]));
        docs.push(doc(101, &["common", "common2"]));
        let index = build(&docs);
        let hits = index.search(&["rare"], &SearchOptions::default());
        assert_eq!(hits[0].id, SchemaId(100));
    }

    #[test]
    fn top_n_truncates_deterministically() {
        let docs: Vec<IndexDocument> = (0..30).map(|i| doc(i, &["patient"])).collect();
        let index = build(&docs);
        let hits = index.search(
            &["patient"],
            &SearchOptions {
                top_n: 10,
                ..Default::default()
            },
        );
        assert_eq!(hits.len(), 10);
        // Equal scores → lowest ids win the tie-break.
        let ids: Vec<u64> = hits.iter().map(|h| h.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_query_and_empty_index() {
        let index = build(&[doc(1, &["x"])]);
        assert!(index.search(&[], &SearchOptions::default()).is_empty());
        let empty = Index::new();
        assert!(empty.search(&["x"], &SearchOptions::default()).is_empty());
        assert!(index
            .search(
                &["x"],
                &SearchOptions {
                    top_n: 0,
                    ..Default::default()
                }
            )
            .is_empty());
    }

    #[test]
    fn repeated_query_words_count_once() {
        let index = build(&[doc(1, &["patient"]), doc(2, &["patient", "height"])]);
        let once = index.search(&["patient"], &SearchOptions::default());
        let thrice = index.search(
            &["patient", "patient", "patient"],
            &SearchOptions::default(),
        );
        assert_eq!(once.len(), thrice.len());
        assert!((once[0].score - thrice[0].score).abs() < 1e-9);
    }

    #[test]
    fn has_adjacent_two_pointer() {
        assert!(has_adjacent(&[0, 5, 9], &[6]));
        assert!(has_adjacent(&[3], &[4]));
        assert!(!has_adjacent(&[3], &[3]));
        assert!(!has_adjacent(&[4], &[3]));
        assert!(!has_adjacent(&[], &[1]));
        assert!(!has_adjacent(&[1], &[]));
        assert!(has_adjacent(&[1, 10, 20], &[0, 2, 30]));
    }

    #[test]
    fn intact_compound_names_earn_the_proximity_bonus() {
        // Both docs contain "patient" and "height"; only doc 1 has them as
        // one compound element (adjacent positions after analysis).
        let index = build(&[
            doc(1, &["patient_height", "gender"]),
            doc(2, &["patient", "room", "ceiling_height"]),
        ]);
        let with = index.search(&["patient_height"], &SearchOptions::default());
        assert_eq!(with[0].id, SchemaId(1));
        let margin_with = with[0].score - with[1].score;
        let without = index.search(
            &["patient_height"],
            &SearchOptions {
                proximity_weight: 0.0,
                ..Default::default()
            },
        );
        let margin_without = without[0].score - without[1].score;
        assert!(
            margin_with > margin_without + 0.1,
            "proximity should widen the margin: {margin_with} vs {margin_without}"
        );
    }

    #[test]
    fn separate_adjacent_elements_get_no_proximity_bonus() {
        // Both documents contain "patient" and "height" with identical
        // frequencies and field lengths; only doc 1 has them inside ONE
        // compound element name. The element-boundary position gap must
        // keep doc 2's two adjacent single-token elements from collecting
        // the compound-name bonus.
        let index = build(&[
            IndexDocument {
                id: SchemaId(1),
                title: String::new(),
                summary: String::new(),
                elements: vec!["patient_height".into()],
                docs: vec![],
            },
            IndexDocument {
                id: SchemaId(2),
                title: String::new(),
                summary: String::new(),
                elements: vec!["patient".into(), "height".into()],
                docs: vec![],
            },
        ]);
        let hits = index.search(&["patient", "height"], &SearchOptions::default());
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, SchemaId(1), "only the intact compound wins");
        assert!(
            hits[0].score > hits[1].score + 1e-9,
            "compound must outscore separated elements: {} vs {}",
            hits[0].score,
            hits[1].score
        );
        // Without proximity the two documents are indistinguishable.
        let flat = index.search(
            &["patient", "height"],
            &SearchOptions {
                proximity_weight: 0.0,
                ..Default::default()
            },
        );
        assert!((flat[0].score - flat[1].score).abs() < 1e-9);
    }

    #[test]
    fn postings_scanned_counts_scoring_and_proximity_work() {
        let reg = schemr_obs::MetricsRegistry::new();
        let index = Index::new().with_metrics(crate::metrics::IndexMetrics::registered(&reg));
        index.add(&IndexDocument {
            id: SchemaId(1),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient_height".into()],
            docs: vec![],
        });
        index.add(&IndexDocument {
            id: SchemaId(2),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient".into()],
            docs: vec![],
        });
        index.search(&["patient", "height"], &SearchOptions::default());
        // Scoring walks (Elements, patient) = 2 postings and
        // (Elements, height) = 1 posting; the proximity lockstep walk over
        // the (patient, height) pair visits the single height posting.
        // 2 + 1 + 1 = 4 — the metric matches the work actually done.
        assert_eq!(
            reg.counter_value("schemr_index_postings_scanned_total", &[]),
            Some(4)
        );
    }

    #[test]
    fn proximity_never_changes_the_matched_count() {
        let index = build(&[doc(1, &["patient_height"])]);
        let hits = index.search(&["patient_height"], &SearchOptions::default());
        assert_eq!(hits[0].matched_terms, 2); // patient + height
    }

    #[test]
    fn title_hits_outscore_element_hits() {
        let index = build(&[
            IndexDocument {
                id: SchemaId(1),
                title: "patient".into(),
                summary: String::new(),
                elements: vec!["x".into()],
                docs: vec![],
            },
            IndexDocument {
                id: SchemaId(2),
                title: "other".into(),
                summary: String::new(),
                elements: vec!["patient".into()],
                docs: vec![],
            },
        ]);
        let hits = index.search(&["patient"], &SearchOptions::default());
        assert_eq!(hits[0].id, SchemaId(1));
    }
}
