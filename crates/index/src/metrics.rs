//! Index-level observability counters.

use std::sync::Arc;

use schemr_obs::{Counter, MetricsRegistry};

/// Shared counters describing how much work the candidate-extraction
/// phase does inside the inverted index.
///
/// The handles are `Arc`s so one set of counters can outlive any single
/// [`crate::Index`] instance: the engine registers them once in its
/// [`MetricsRegistry`] and threads the same handles into every index it
/// (re)builds, keeping the exported series monotone across full
/// re-indexes.
#[derive(Debug, Clone)]
pub struct IndexMetrics {
    /// Distinct analyzed query terms probed against the term dictionary.
    pub terms_looked_up: Arc<Counter>,
    /// Posting entries scanned while scoring (live and tombstoned).
    pub postings_scanned: Arc<Counter>,
    /// Candidate hits returned to the caller after top-*n* selection.
    pub candidates_returned: Arc<Counter>,
    /// Vacuum compactions performed (tombstone reclamation).
    pub vacuums: Arc<Counter>,
    /// Background segment merges committed (off-lock tombstone
    /// reclamation and segment-count compaction).
    pub merges: Arc<Counter>,
    /// Query (term, field) lists the WAND/MaxScore pruner skipped without
    /// visiting a single posting.
    pub lists_pruned: Arc<Counter>,
    /// Posting entries the pruner proved unable to rank and never visited.
    pub postings_pruned: Arc<Counter>,
}

impl Default for IndexMetrics {
    /// Free-standing counters, not attached to any registry — the
    /// default for indexes built outside an engine (tests, tools).
    fn default() -> Self {
        IndexMetrics {
            terms_looked_up: Arc::new(Counter::new()),
            postings_scanned: Arc::new(Counter::new()),
            candidates_returned: Arc::new(Counter::new()),
            vacuums: Arc::new(Counter::new()),
            merges: Arc::new(Counter::new()),
            lists_pruned: Arc::new(Counter::new()),
            postings_pruned: Arc::new(Counter::new()),
        }
    }
}

impl IndexMetrics {
    /// Counters registered under the `schemr_index_*` names.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        IndexMetrics {
            terms_looked_up: registry.counter(
                "schemr_index_terms_looked_up_total",
                "Distinct analyzed query terms probed against the term dictionary.",
            ),
            postings_scanned: registry.counter(
                "schemr_index_postings_scanned_total",
                "Posting entries scanned while scoring candidate documents.",
            ),
            candidates_returned: registry.counter(
                "schemr_index_candidates_returned_total",
                "Candidate hits returned by Phase 1 after top-n selection.",
            ),
            vacuums: registry.counter(
                "schemr_index_vacuums_total",
                "Forced vacuum compactions that reclaimed tombstoned documents.",
            ),
            merges: registry.counter(
                "schemr_index_merges_total",
                "Background segment merges committed without blocking searches.",
            ),
            lists_pruned: registry.counter(
                "schemr_index_lists_pruned_total",
                "Query postings lists skipped entirely by WAND/MaxScore pruning.",
            ),
            postings_pruned: registry.counter(
                "schemr_index_postings_pruned_total",
                "Posting entries skipped by WAND/MaxScore pruning.",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_counters_render_under_index_names() {
        let reg = MetricsRegistry::new();
        let m = IndexMetrics::registered(&reg);
        m.terms_looked_up.add(3);
        m.candidates_returned.inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("schemr_index_terms_looked_up_total 3"),
            "{text}"
        );
        assert!(text.contains("schemr_index_candidates_returned_total 1"));
        assert!(text.contains("schemr_index_postings_scanned_total 0"));
        assert!(text.contains("schemr_index_vacuums_total 0"));
        assert!(text.contains("schemr_index_merges_total 0"));
        assert!(text.contains("schemr_index_lists_pruned_total 0"));
        assert!(text.contains("schemr_index_postings_pruned_total 0"));
    }

    #[test]
    fn default_counters_are_free_standing() {
        let a = IndexMetrics::default();
        let b = IndexMetrics::default();
        a.terms_looked_up.inc();
        assert_eq!(b.terms_looked_up.get(), 0);
    }
}
