//! Flattened schema documents.

use schemr_model::{Schema, SchemaId};
use schemr_text::Analyzer;

use crate::field::Field;

/// The indexable, flattened form of one schema: "a title, a summary, an ID,
/// and a flattened representation of each element in the schema".
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDocument {
    /// The repository id of the schema this document describes.
    pub id: SchemaId,
    /// Schema title.
    pub title: String,
    /// Human-written summary (may be empty).
    pub summary: String,
    /// One entry per element: its dotted path (`patient.height`).
    pub elements: Vec<String>,
    /// Element documentation strings, concatenated per element.
    pub docs: Vec<String>,
}

impl IndexDocument {
    /// Flatten a schema (plus repository metadata) into a document.
    pub fn from_schema(id: SchemaId, title: &str, summary: &str, schema: &Schema) -> Self {
        let mut elements = Vec::with_capacity(schema.len());
        let mut docs = Vec::new();
        for el_id in schema.ids() {
            elements.push(schema.path(el_id));
            if let Some(doc) = &schema.element(el_id).doc {
                docs.push(doc.clone());
            }
        }
        IndexDocument {
            id,
            title: title.to_string(),
            summary: summary.to_string(),
            elements,
            docs,
        }
    }

    /// Analyze one field into index terms, using the right pipeline per
    /// field (names use the name pipeline; prose uses the document
    /// pipeline).
    pub fn field_terms(&self, field: Field, names: &Analyzer, prose: &Analyzer) -> Vec<String> {
        match field {
            Field::Title => names.analyze(&self.title),
            Field::Summary => prose.analyze(&self.summary),
            Field::Elements => self
                .elements
                .iter()
                .flat_map(|e| names.analyze(e))
                .collect(),
            Field::Docs => self.docs.iter().flat_map(|d| prose.analyze(d)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn doc() -> IndexDocument {
        let schema = SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr_doc("height", DataType::Real, "height in cm")
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        IndexDocument::from_schema(SchemaId(7), "clinic", "a rural health clinic", &schema)
    }

    #[test]
    fn flattening_produces_paths_and_docs() {
        let d = doc();
        assert_eq!(d.id, SchemaId(7));
        assert_eq!(d.elements, ["patient", "patient.height", "patient.gender"]);
        assert_eq!(d.docs, ["height in cm"]);
    }

    #[test]
    fn field_terms_use_the_right_pipelines() {
        let d = doc();
        let names = Analyzer::for_names();
        let prose = Analyzer::for_documents();
        let elements = d.field_terms(Field::Elements, &names, &prose);
        // Paths split on dots; "patient" appears for each path mentioning it.
        assert!(elements.iter().filter(|t| *t == "patient").count() >= 3);
        assert!(elements.contains(&"height".to_string()));
        let summary = d.field_terms(Field::Summary, &names, &prose);
        // Stopword "a" removed by the prose pipeline.
        assert!(!summary.contains(&"a".to_string()));
        assert!(summary.contains(&"clinic".to_string()));
    }
}
