//! Flattened schema documents.

use schemr_model::{Schema, SchemaId};
use schemr_text::Analyzer;

use crate::field::Field;

/// The indexable, flattened form of one schema: "a title, a summary, an ID,
/// and a flattened representation of each element in the schema".
#[derive(Debug, Clone, PartialEq)]
pub struct IndexDocument {
    /// The repository id of the schema this document describes.
    pub id: SchemaId,
    /// Schema title.
    pub title: String,
    /// Human-written summary (may be empty).
    pub summary: String,
    /// One entry per element: its dotted path (`patient.height`).
    pub elements: Vec<String>,
    /// Element documentation strings, concatenated per element.
    pub docs: Vec<String>,
}

impl IndexDocument {
    /// Flatten a schema (plus repository metadata) into a document.
    pub fn from_schema(id: SchemaId, title: &str, summary: &str, schema: &Schema) -> Self {
        let mut elements = Vec::with_capacity(schema.len());
        let mut docs = Vec::new();
        for el_id in schema.ids() {
            elements.push(schema.path(el_id));
            if let Some(doc) = &schema.element(el_id).doc {
                docs.push(doc.clone());
            }
        }
        IndexDocument {
            id,
            title: title.to_string(),
            summary: summary.to_string(),
            elements,
            docs,
        }
    }

    /// Analyze one field into index terms, using the right pipeline per
    /// field (names use the name pipeline; prose uses the document
    /// pipeline). Positions are dropped; see
    /// [`IndexDocument::field_terms_positioned`] for the indexable form.
    pub fn field_terms(&self, field: Field, names: &Analyzer, prose: &Analyzer) -> Vec<String> {
        self.field_terms_positioned(field, names, prose)
            .into_iter()
            .map(|(term, _)| term)
            .collect()
    }

    /// Analyze one field into `(term, position)` pairs — what the writer
    /// actually indexes.
    ///
    /// Tokens from one source string sit at consecutive positions, so the
    /// proximity scorer can recognize an intact compound name
    /// (`patient_height` → `patient`@p, `height`@p+1). Between *separate*
    /// source strings — one element path and the next, one doc string and
    /// the next — the position counter jumps by
    /// [`ELEMENT_POSITION_GAP`] (> 1), so two adjacent single-token
    /// elements (`["patient", "height"]`) never masquerade as a compound.
    pub fn field_terms_positioned(
        &self,
        field: Field,
        names: &Analyzer,
        prose: &Analyzer,
    ) -> Vec<(String, u32)> {
        match field {
            Field::Title => positioned(std::iter::once(self.title.as_str()), |t| names.analyze(t)),
            Field::Summary => {
                positioned(std::iter::once(self.summary.as_str()), |t| prose.analyze(t))
            }
            Field::Elements => positioned(self.elements.iter().map(String::as_str), |t| {
                names.analyze(t)
            }),
            Field::Docs => positioned(self.docs.iter().map(String::as_str), |t| prose.analyze(t)),
        }
    }
}

/// Position increment between the last token of one source string and the
/// first token of the next. Any value > 1 breaks false adjacency across
/// element boundaries; 2 keeps delta-encoded positions compact.
pub const ELEMENT_POSITION_GAP: u32 = 2;

/// Assign positions to the analyzed tokens of a sequence of source
/// strings: consecutive within a string, a gap of [`ELEMENT_POSITION_GAP`]
/// across strings.
fn positioned<'a>(
    sources: impl Iterator<Item = &'a str>,
    analyze: impl Fn(&str) -> Vec<String>,
) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut pos = 0u32;
    let mut first_source = true;
    for source in sources {
        let tokens = analyze(source);
        if tokens.is_empty() {
            continue;
        }
        if !first_source {
            // `pos` is already one past the previous token, so adding
            // GAP - 1 makes the increment between adjacent tokens GAP.
            pos += ELEMENT_POSITION_GAP - 1;
        }
        first_source = false;
        for token in tokens {
            out.push((token, pos));
            pos += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn doc() -> IndexDocument {
        let schema = SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr_doc("height", DataType::Real, "height in cm")
                    .attr("gender", DataType::Text)
            })
            .build_unchecked();
        IndexDocument::from_schema(SchemaId(7), "clinic", "a rural health clinic", &schema)
    }

    #[test]
    fn flattening_produces_paths_and_docs() {
        let d = doc();
        assert_eq!(d.id, SchemaId(7));
        assert_eq!(d.elements, ["patient", "patient.height", "patient.gender"]);
        assert_eq!(d.docs, ["height in cm"]);
    }

    #[test]
    fn field_terms_use_the_right_pipelines() {
        let d = doc();
        let names = Analyzer::for_names();
        let prose = Analyzer::for_documents();
        let elements = d.field_terms(Field::Elements, &names, &prose);
        // Paths split on dots; "patient" appears for each path mentioning it.
        assert!(elements.iter().filter(|t| *t == "patient").count() >= 3);
        assert!(elements.contains(&"height".to_string()));
        let summary = d.field_terms(Field::Summary, &names, &prose);
        // Stopword "a" removed by the prose pipeline.
        assert!(!summary.contains(&"a".to_string()));
        assert!(summary.contains(&"clinic".to_string()));
    }

    #[test]
    fn element_boundaries_get_a_position_gap() {
        let d = IndexDocument {
            id: SchemaId(1),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient".into(), "height".into()],
            docs: vec![],
        };
        let names = Analyzer::for_names();
        let prose = Analyzer::for_documents();
        let terms = d.field_terms_positioned(Field::Elements, &names, &prose);
        assert_eq!(terms.len(), 2);
        let delta = terms[1].1 - terms[0].1;
        assert!(
            delta > 1,
            "separate elements must not sit at adjacent positions (delta {delta})"
        );
    }

    #[test]
    fn tokens_within_one_element_stay_adjacent() {
        let d = IndexDocument {
            id: SchemaId(1),
            title: String::new(),
            summary: String::new(),
            elements: vec!["patient_height".into()],
            docs: vec![],
        };
        let names = Analyzer::for_names();
        let prose = Analyzer::for_documents();
        let terms = d.field_terms_positioned(Field::Elements, &names, &prose);
        let patient = terms.iter().find(|(t, _)| t == "patient").unwrap().1;
        let height = terms.iter().find(|(t, _)| t == "height").unwrap().1;
        assert_eq!(height, patient + 1, "compound tokens stay adjacent");
    }

    #[test]
    fn empty_sources_do_not_advance_positions() {
        let d = IndexDocument {
            id: SchemaId(1),
            title: String::new(),
            summary: String::new(),
            elements: vec![String::new(), "patient".into()],
            docs: vec![],
        };
        let names = Analyzer::for_names();
        let prose = Analyzer::for_documents();
        let terms = d.field_terms_positioned(Field::Elements, &names, &prose);
        assert_eq!(terms, vec![("patient".to_string(), 0)]);
    }
}
