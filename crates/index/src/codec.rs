//! Binary on-disk codec for the index.
//!
//! The paper's text indexer runs "at scheduled intervals" offline and the
//! search service loads what it produced; this codec is that boundary. The
//! format is a single segment: a document table followed by the term
//! dictionary with varint-delta-compressed positional postings.
//!
//! Encoding *flattens* a multi-segment snapshot: documents are written in
//! segment order with segment-local ordinals translated to global ones,
//! each term's portions are concatenated in the same order (global
//! ordinals stay strictly ascending by construction), and overlay
//! tombstones are baked into the document table's deleted flags. Decoding
//! always produces a single sealed segment — the layout is a physical
//! detail the format deliberately does not preserve, and search results
//! are bitwise identical either way.

use std::io::{Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use schemr_model::SchemaId;

use crate::field::Field;
use crate::memory::Index;
use crate::postings::{Posting, PostingsList};
use crate::segment::{DocEntry, SegmentData};

const MAGIC: &[u8; 8] = b"SCHMRIDX";
const VERSION: u32 = 1;

/// Errors raised while decoding a segment.
#[derive(Debug)]
pub enum CodecError {
    /// The input is not a Schemr index segment.
    BadMagic,
    /// The segment's format version is unsupported.
    BadVersion(u32),
    /// The segment is truncated or internally inconsistent.
    Corrupt(&'static str),
    /// I/O failure while reading or writing a segment file.
    Io(std::io::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a Schemr index segment"),
            CodecError::BadVersion(v) => write!(f, "unsupported segment version {v}"),
            CodecError::Corrupt(what) => write!(f, "corrupt segment: {what}"),
            CodecError::Io(e) => write!(f, "segment I/O error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// LEB128 unsigned varint.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Corrupt("truncated varint"));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Serialize the index to a byte buffer. Reads the published snapshot —
/// concurrent searches and writers are unaffected.
pub fn encode(index: &Index) -> Bytes {
    let snap = index.snapshot();
    let offsets = snap.ord_offsets();
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);

    put_varint(&mut buf, snap.total_docs as u64);
    for seg in &snap.segments {
        for (ord, d) in seg.data.docs.iter().enumerate() {
            put_varint(&mut buf, d.id.0);
            // Overlay tombstones become baked flags on disk.
            buf.put_u8(u8::from(seg.is_deleted(ord as u32)));
            for len in d.field_lengths {
                put_varint(&mut buf, u64::from(len));
            }
        }
    }

    let term_count: usize = (0..Field::COUNT)
        .map(|field_ord| snap.merged_terms(field_ord).len())
        .sum();
    put_varint(&mut buf, term_count as u64);
    for field_ord in 0..Field::COUNT {
        for (term, portions) in snap.merged_terms(field_ord) {
            buf.put_u8(field_ord as u8);
            put_varint(&mut buf, term.len() as u64);
            buf.put_slice(term.as_bytes());
            let doc_freq: usize = portions.iter().map(|&(_, pl)| pl.doc_freq()).sum();
            put_varint(&mut buf, doc_freq as u64);
            let mut prev_doc = 0u32;
            // Portions arrive in segment order, so translated global
            // ordinals are strictly ascending across the concatenation.
            for (si, pl) in portions {
                let base = offsets[si];
                for posting in pl.iter() {
                    let doc = base + posting.doc;
                    put_varint(&mut buf, u64::from(doc - prev_doc));
                    prev_doc = doc;
                    put_varint(&mut buf, posting.positions.len() as u64);
                    let mut prev_pos = 0u32;
                    for &pos in &posting.positions {
                        put_varint(&mut buf, u64::from(pos - prev_pos));
                        prev_pos = pos;
                    }
                }
            }
        }
    }
    buf.freeze()
}

/// Deserialize an index from bytes produced by [`encode`]. The result
/// holds the whole corpus in one sealed segment at epoch 0.
pub fn decode(data: &[u8]) -> Result<Index, CodecError> {
    let mut buf = Bytes::copy_from_slice(data);
    if buf.remaining() < MAGIC.len() + 4 {
        return Err(CodecError::Corrupt("too short"));
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }

    let doc_count = get_varint(&mut buf)? as usize;
    let mut docs = Vec::with_capacity(doc_count.min(1 << 20));
    let mut live_docs = 0usize;
    for _ in 0..doc_count {
        let id = SchemaId(get_varint(&mut buf)?);
        if !buf.has_remaining() {
            return Err(CodecError::Corrupt("truncated doc table"));
        }
        let deleted = buf.get_u8() != 0;
        let mut field_lengths = [0u32; Field::COUNT];
        for slot in &mut field_lengths {
            *slot = get_varint(&mut buf)? as u32;
        }
        if !deleted {
            live_docs += 1;
        }
        docs.push(DocEntry {
            id,
            field_lengths,
            deleted,
        });
    }

    let term_count = get_varint(&mut buf)? as usize;
    let mut seg = SegmentData::default();
    // Forward index and per-list live document frequencies, rebuilt from
    // the decoded postings against the document table's tombstone flags.
    let mut doc_terms: Vec<Vec<(u8, String)>> = vec![Vec::new(); docs.len()];
    for _ in 0..term_count {
        if !buf.has_remaining() {
            return Err(CodecError::Corrupt("truncated dictionary"));
        }
        let field = buf.get_u8();
        if Field::from_ordinal(field).is_none() {
            return Err(CodecError::Corrupt("unknown field ordinal"));
        }
        let term_len = get_varint(&mut buf)? as usize;
        if buf.remaining() < term_len {
            return Err(CodecError::Corrupt("truncated term"));
        }
        let term_bytes = buf.copy_to_bytes(term_len);
        let term = std::str::from_utf8(&term_bytes)
            .map_err(|_| CodecError::Corrupt("term is not UTF-8"))?
            .to_string();
        let posting_count = get_varint(&mut buf)? as usize;
        let mut postings = Vec::with_capacity(posting_count.min(1 << 20));
        let mut doc = 0u32;
        for p in 0..posting_count {
            let delta = get_varint(&mut buf)? as u32;
            if p > 0 && delta == 0 {
                return Err(CodecError::Corrupt("non-increasing posting ordinals"));
            }
            doc = if p == 0 {
                delta
            } else {
                doc.checked_add(delta)
                    .ok_or(CodecError::Corrupt("posting ordinal overflow"))?
            };
            if (doc as usize) >= docs.len() {
                return Err(CodecError::Corrupt("posting references unknown document"));
            }
            let pos_count = get_varint(&mut buf)? as usize;
            let mut positions = Vec::with_capacity(pos_count.min(1 << 20));
            let mut pos = 0u32;
            for i in 0..pos_count {
                let d = get_varint(&mut buf)? as u32;
                pos = if i == 0 {
                    d
                } else {
                    pos.checked_add(d)
                        .ok_or(CodecError::Corrupt("position overflow"))?
                };
                positions.push(pos);
            }
            postings.push(Posting { doc, positions });
        }
        for p in &postings {
            doc_terms[p.doc as usize].push((field, term.clone()));
        }
        let live = postings
            .iter()
            .filter(|p| !docs[p.doc as usize].deleted)
            .count();
        let mut pl = PostingsList::from_postings(postings);
        pl.set_live_doc_freq(live);
        // Tight impact bounds: a freshly loaded segment starts with no
        // stale-high slack from pre-save churn.
        pl.rebuild_bounds(
            |d| docs[d as usize].field_lengths[field as usize],
            |d| !docs[d as usize].deleted,
        );
        seg.terms[field as usize].insert(term, pl);
    }

    seg.by_id = docs
        .iter()
        .enumerate()
        .filter(|(_, d)| !d.deleted)
        .map(|(i, d)| (d.id, i as u32))
        .collect();
    seg.docs = docs;
    seg.doc_terms = doc_terms;
    seg.live_docs = live_docs;
    Ok(Index::from_sealed(seg))
}

/// Write the index to a file.
pub fn save_to(index: &Index, path: impl AsRef<Path>) -> Result<(), CodecError> {
    let bytes = encode(index);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Read an index from a file written by [`save_to`].
pub fn load_from(path: impl AsRef<Path>) -> Result<Index, CodecError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::IndexDocument;
    use crate::search::SearchOptions;

    fn sample_index() -> Index {
        let index = Index::new();
        index.add(&IndexDocument {
            id: SchemaId(1),
            title: "clinic".into(),
            summary: "rural health clinic".into(),
            elements: vec![
                "patient".into(),
                "patient.height".into(),
                "patient.gender".into(),
            ],
            docs: vec!["height in cm".into()],
        });
        index.add(&IndexDocument {
            id: SchemaId(9),
            title: "store".into(),
            summary: String::new(),
            elements: vec!["order".into(), "order.total".into()],
            docs: vec![],
        });
        index.remove(SchemaId(9));
        index.add(&IndexDocument {
            id: SchemaId(9),
            title: "store".into(),
            summary: String::new(),
            elements: vec!["order".into(), "order.quantity".into()],
            docs: vec![],
        });
        index
    }

    #[test]
    fn encode_decode_round_trips_search_behaviour() {
        let index = sample_index();
        let decoded = decode(&encode(&index)).unwrap();
        assert_eq!(decoded.len(), index.len());
        assert_eq!(decoded.stats(), index.stats());
        let q = ["patient", "height"];
        let a = index.search(&q, &SearchOptions::default());
        let b = decoded.search(&q, &SearchOptions::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn segmented_index_round_trips_through_the_flat_format() {
        // A multi-segment index with overlay tombstones encodes to the
        // same search behaviour as its monolithic twin.
        let segmented = Index::new().with_seal_threshold(2);
        let monolith = Index::new();
        for i in 0..9u64 {
            let d = IndexDocument {
                id: SchemaId(i),
                title: format!("schema{i}"),
                summary: String::new(),
                elements: vec!["patient".into(), "patient.height".into()],
                docs: vec![],
            };
            segmented.add(&d);
            monolith.add(&d);
        }
        segmented.remove(SchemaId(3));
        monolith.remove(SchemaId(3));
        assert!(segmented.segment_count() > 1);
        let decoded = decode(&encode(&segmented)).unwrap();
        assert_eq!(decoded.segment_count(), 1, "decode flattens the layout");
        assert_eq!(decoded.stats(), segmented.stats());
        let q = ["patient", "height"];
        let a = decoded.search(&q, &SearchOptions::default());
        let b = monolith.search(&q, &SearchOptions::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "bitwise identity");
        }
    }

    #[test]
    fn decode_restores_live_df_and_forward_index() {
        // sample_index() leaves one tombstoned version of schema 9, so the
        // (Title, "store") list holds two postings but only one live doc.
        let decoded = decode(&encode(&sample_index())).unwrap();
        let store = decoded
            .introspect(usize::MAX)
            .top_lists
            .into_iter()
            .find(|l| l.field == Field::Title && l.term == "store")
            .expect("(Title, store) list present");
        assert_eq!(store.doc_freq, 2);
        assert_eq!(store.live_doc_freq, 1);
        // The forward index must be usable: removing the live schema 9
        // drives its lists' live df to zero, hiding it from search.
        assert!(decoded.remove(SchemaId(9)));
        assert!(decoded
            .search(&["store"], &SearchOptions::default())
            .is_empty());
    }

    #[test]
    fn save_and_load_through_a_file() {
        let dir = std::env::temp_dir().join("schemr-index-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("segment.idx");
        let index = sample_index();
        save_to(&index, &path).unwrap();
        let loaded = load_from(&path).unwrap();
        assert_eq!(loaded.stats(), index.stats());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(decode(b"NOTANIDX0000"), Err(CodecError::BadMagic)));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut data = encode(&sample_index()).to_vec();
        data[8] = 0xFF;
        assert!(matches!(decode(&data), Err(CodecError::BadVersion(_))));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let data = encode(&sample_index()).to_vec();
        for cut in [0, 5, 12, 20, data.len() / 2, data.len() - 1] {
            let res = decode(&data[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn empty_index_round_trips() {
        let index = Index::new();
        let decoded = decode(&encode(&index)).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn varints_round_trip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(get_varint(&mut bytes).unwrap(), v);
        }
    }
}
