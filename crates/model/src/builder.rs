//! Fluent construction of schemas.
//!
//! Parsers and tests build schemas through [`SchemaBuilder`], which keeps
//! the id bookkeeping and foreign-key name resolution out of call sites:
//!
//! ```
//! use schemr_model::{SchemaBuilder, DataType};
//!
//! let schema = SchemaBuilder::new("clinic")
//!     .entity("patient", |e| {
//!         e.attr("height", DataType::Real).attr("gender", DataType::Text)
//!     })
//!     .entity("case", |e| {
//!         e.attr("patient", DataType::Integer).attr("doctor", DataType::Integer)
//!     })
//!     .foreign_key("case", &["patient"], "patient", &[])
//!     .build()
//!     .unwrap();
//! assert_eq!(schema.entities().len(), 2);
//! ```

use std::collections::HashMap;

use crate::element::{DataType, Element, ElementId};
use crate::schema::{ForeignKey, Schema};

/// Error raised when a builder references an undeclared name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildError(pub String);

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schema build error: {}", self.0)
    }
}

impl std::error::Error for BuildError {}

/// Builder for one entity's attribute list.
pub struct EntityBuilder {
    attrs: Vec<(String, DataType, Option<String>)>,
}

impl EntityBuilder {
    /// Add an attribute of the given type.
    pub fn attr(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.attrs.push((name.into(), data_type, None));
        self
    }

    /// Add a documented attribute.
    pub fn attr_doc(
        mut self,
        name: impl Into<String>,
        data_type: DataType,
        doc: impl Into<String>,
    ) -> Self {
        self.attrs.push((name.into(), data_type, Some(doc.into())));
        self
    }
}

/// Fluent builder for a whole schema.
pub struct SchemaBuilder {
    schema: Schema,
    entity_ids: HashMap<String, ElementId>,
    attr_ids: HashMap<(String, String), ElementId>,
    pending_fks: Vec<(String, Vec<String>, String, Vec<String>)>,
}

impl SchemaBuilder {
    /// Start a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            schema: Schema::new(name),
            entity_ids: HashMap::new(),
            attr_ids: HashMap::new(),
            pending_fks: Vec::new(),
        }
    }

    /// Declare an entity and populate it via the closure.
    pub fn entity(
        mut self,
        name: impl Into<String>,
        f: impl FnOnce(EntityBuilder) -> EntityBuilder,
    ) -> Self {
        let name = name.into();
        let eb = f(EntityBuilder { attrs: Vec::new() });
        let eid = self.schema.add_root(Element::entity(name.clone()));
        self.entity_ids.insert(name.clone(), eid);
        for (aname, ty, doc) in eb.attrs {
            let mut el = Element::attribute(aname.clone(), ty);
            el.doc = doc;
            let aid = self.schema.add_child(eid, el);
            self.attr_ids.insert((name.clone(), aname), aid);
        }
        self
    }

    /// Declare a foreign key by entity/attribute names; resolved at
    /// [`SchemaBuilder::build`] so declaration order doesn't matter.
    pub fn foreign_key(
        mut self,
        from_entity: impl Into<String>,
        from_attrs: &[&str],
        to_entity: impl Into<String>,
        to_attrs: &[&str],
    ) -> Self {
        self.pending_fks.push((
            from_entity.into(),
            from_attrs.iter().map(|s| s.to_string()).collect(),
            to_entity.into(),
            to_attrs.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Resolve foreign keys and produce the schema.
    pub fn build(mut self) -> Result<Schema, BuildError> {
        let fks = std::mem::take(&mut self.pending_fks);
        for (fe, fas, te, tas) in fks {
            let from_entity = *self
                .entity_ids
                .get(&fe)
                .ok_or_else(|| BuildError(format!("unknown entity `{fe}` in foreign key")))?;
            let to_entity = *self
                .entity_ids
                .get(&te)
                .ok_or_else(|| BuildError(format!("unknown entity `{te}` in foreign key")))?;
            let resolve = |entity: &str, attrs: &[String]| -> Result<Vec<ElementId>, BuildError> {
                attrs
                    .iter()
                    .map(|a| {
                        self.attr_ids
                            .get(&(entity.to_string(), a.clone()))
                            .copied()
                            .ok_or_else(|| {
                                BuildError(format!(
                                    "unknown attribute `{entity}.{a}` in foreign key"
                                ))
                            })
                    })
                    .collect()
            };
            let from_attrs = resolve(&fe, &fas)?;
            let to_attrs = resolve(&te, &tas)?;
            self.schema.add_foreign_key(ForeignKey {
                from_entity,
                from_attrs,
                to_entity,
                to_attrs,
            });
        }
        Ok(self.schema)
    }

    /// Build, panicking on unresolved names. For tests and examples.
    pub fn build_unchecked(self) -> Schema {
        self.build().expect("schema builder names resolve")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementKind;

    #[test]
    fn builds_entities_with_attributes() {
        let s = SchemaBuilder::new("shop")
            .entity("order", |e| {
                e.attr("id", DataType::Integer)
                    .attr_doc("total", DataType::Decimal, "grand total")
            })
            .build()
            .unwrap();
        assert_eq!(s.name, "shop");
        assert_eq!(s.entities().len(), 1);
        let attrs = s.children(s.entities()[0]);
        assert_eq!(attrs.len(), 2);
        assert_eq!(s.element(attrs[1]).doc.as_deref(), Some("grand total"));
        assert_eq!(s.element(attrs[0]).kind, ElementKind::Attribute);
    }

    #[test]
    fn foreign_keys_resolve_regardless_of_order() {
        let s = SchemaBuilder::new("x")
            .foreign_key("a", &["b_id"], "b", &["id"])
            .entity("a", |e| e.attr("b_id", DataType::Integer))
            .entity("b", |e| e.attr("id", DataType::Integer))
            .build()
            .unwrap();
        assert_eq!(s.foreign_keys().len(), 1);
        let fk = &s.foreign_keys()[0];
        assert_eq!(s.element(fk.from_entity).name, "a");
        assert_eq!(s.element(fk.to_entity).name, "b");
        assert_eq!(s.element(fk.from_attrs[0]).name, "b_id");
        assert_eq!(s.element(fk.to_attrs[0]).name, "id");
    }

    #[test]
    fn unknown_entity_in_fk_is_an_error() {
        let err = SchemaBuilder::new("x")
            .entity("a", |e| e.attr("id", DataType::Integer))
            .foreign_key("a", &["id"], "nope", &[])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn unknown_attribute_in_fk_is_an_error() {
        let err = SchemaBuilder::new("x")
            .entity("a", |e| e.attr("id", DataType::Integer))
            .entity("b", |e| e.attr("id", DataType::Integer))
            .foreign_key("a", &["missing"], "b", &[])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("a.missing"), "{err}");
    }
}
