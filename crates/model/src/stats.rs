//! Schema statistics, used by the result table ("entities, attributes"
//! columns in Figure 2), the corpus filter, and experiment reports.

use serde::{Deserialize, Serialize};

use crate::element::ElementKind;
use crate::schema::Schema;

/// Summary statistics of one schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchemaStats {
    /// Number of entity elements.
    pub entities: usize,
    /// Number of attribute elements.
    pub attributes: usize,
    /// Number of group elements.
    pub groups: usize,
    /// Number of foreign-key edges.
    pub foreign_keys: usize,
    /// Maximum containment depth (roots are depth 0).
    pub max_depth: usize,
}

impl SchemaStats {
    /// Compute stats for `schema` in one pass.
    pub fn of(schema: &Schema) -> Self {
        let mut stats = SchemaStats {
            foreign_keys: schema.foreign_keys().len(),
            ..Default::default()
        };
        for id in schema.ids() {
            match schema.element(id).kind {
                ElementKind::Entity => stats.entities += 1,
                ElementKind::Attribute => stats.attributes += 1,
                ElementKind::Group => stats.groups += 1,
            }
            stats.max_depth = stats.max_depth.max(schema.depth(id));
        }
        stats
    }

    /// Total element count.
    pub fn total_elements(&self) -> usize {
        self.entities + self.attributes + self.groups
    }

    /// "Trivial schemas with three or less elements" — the paper's corpus
    /// filter drops these.
    pub fn is_trivial(&self) -> bool {
        self.total_elements() <= 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::element::{DataType, Element};

    #[test]
    fn counts_each_kind() {
        let mut s = SchemaBuilder::new("x")
            .entity("a", |e| {
                e.attr("p", DataType::Text).attr("q", DataType::Text)
            })
            .entity("b", |e| e.attr("r", DataType::Text))
            .foreign_key("a", &[], "b", &[])
            .build_unchecked();
        let root = s.entities()[0];
        s.add_child(root, Element::group("grp"));
        let st = SchemaStats::of(&s);
        assert_eq!(st.entities, 2);
        assert_eq!(st.attributes, 3);
        assert_eq!(st.groups, 1);
        assert_eq!(st.foreign_keys, 1);
        assert_eq!(st.max_depth, 1);
        assert_eq!(st.total_elements(), 6);
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut s = Schema::new("deep");
        let a = s.add_root(Element::entity("a"));
        let b = s.add_child(a, Element::group("b"));
        let c = s.add_child(b, Element::group("c"));
        s.add_child(c, Element::attribute("d", DataType::Text));
        assert_eq!(SchemaStats::of(&s).max_depth, 3);
    }

    #[test]
    fn triviality_threshold_is_three_elements() {
        let mut s = Schema::new("t");
        let a = s.add_root(Element::entity("a"));
        s.add_child(a, Element::attribute("x", DataType::Text));
        s.add_child(a, Element::attribute("y", DataType::Text));
        assert!(SchemaStats::of(&s).is_trivial());
        s.add_child(a, Element::attribute("z", DataType::Text));
        assert!(!SchemaStats::of(&s).is_trivial());
    }

    #[test]
    fn empty_schema_stats() {
        let st = SchemaStats::of(&Schema::new("e"));
        assert_eq!(st, SchemaStats::default());
        assert!(st.is_trivial());
    }
}
