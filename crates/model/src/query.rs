//! The query graph: Schemr's unified representation of search input.
//!
//! A query is "a forest of trees consisting of schema fragments and
//! keywords" (paper, §2 / Figure 1): the user may type free keywords, upload
//! DDL/XSD fragments, or both. Each keyword is a degenerate one-node graph.

use serde::{Deserialize, Serialize};

use crate::element::{ElementId, ElementKind};
use crate::schema::Schema;

/// One logical query element, addressable in similarity matrices.
///
/// Flattening a [`QueryGraph`] yields one `QueryTerm` per fragment element
/// plus one per keyword; matchers score candidate schema elements against
/// these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTerm {
    /// The raw text of the term (element name or keyword).
    pub text: String,
    /// Which fragment the term came from (`None` for keywords).
    pub fragment: Option<usize>,
    /// The element within that fragment (`None` for keywords).
    pub element: Option<ElementId>,
    /// Element kind for fragment terms; keywords report
    /// [`ElementKind::Attribute`] since they name data the user wants.
    pub kind: ElementKind,
}

impl QueryTerm {
    /// True when the term came from free-keyword input.
    pub fn is_keyword(&self) -> bool {
        self.fragment.is_none()
    }
}

/// A parsed query: schema fragments plus keywords.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    fragments: Vec<Schema>,
    keywords: Vec<String>,
}

impl QueryGraph {
    /// An empty query graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a free keyword. Blank keywords are ignored.
    pub fn add_keyword(&mut self, kw: impl Into<String>) {
        let kw = kw.into();
        if !kw.trim().is_empty() {
            self.keywords.push(kw.trim().to_string());
        }
    }

    /// Add a schema fragment (parsed from DDL or XSD).
    pub fn add_fragment(&mut self, fragment: Schema) {
        self.fragments.push(fragment);
    }

    /// The fragments in insertion order.
    pub fn fragments(&self) -> &[Schema] {
        &self.fragments
    }

    /// The keywords in insertion order.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// True when the user supplied nothing searchable.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty() && self.fragments.iter().all(|f| f.is_empty())
    }

    /// Flatten the forest into addressable query terms: every fragment
    /// element contributes its name; every keyword contributes itself.
    ///
    /// This is the "flattens the query-graph into a list of keywords" step
    /// feeding candidate extraction, kept structured enough that Phase 2 can
    /// still map matrix rows back to fragment elements.
    pub fn terms(&self) -> Vec<QueryTerm> {
        let mut out = Vec::new();
        for (fi, frag) in self.fragments.iter().enumerate() {
            for id in frag.ids() {
                let el = frag.element(id);
                out.push(QueryTerm {
                    text: el.name.clone(),
                    fragment: Some(fi),
                    element: Some(id),
                    kind: el.kind,
                });
            }
        }
        for kw in &self.keywords {
            out.push(QueryTerm {
                text: kw.clone(),
                fragment: None,
                element: None,
                kind: ElementKind::Attribute,
            });
        }
        out
    }

    /// Just the raw texts, for the document-index lookup of Phase 1.
    pub fn flat_texts(&self) -> Vec<String> {
        self.terms().into_iter().map(|t| t.text).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::element::DataType;

    /// Figure 1: fragment `patient(height, gender)` plus keyword
    /// `diagnosis`.
    fn figure1_query() -> QueryGraph {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("fragment")
                .entity("patient", |e| {
                    e.attr("height", DataType::Real)
                        .attr("gender", DataType::Text)
                })
                .build_unchecked(),
        );
        q.add_keyword("diagnosis");
        q
    }

    #[test]
    fn figure1_flattens_to_four_terms() {
        let q = figure1_query();
        let texts = q.flat_texts();
        assert_eq!(texts, vec!["patient", "height", "gender", "diagnosis"]);
    }

    #[test]
    fn keyword_terms_are_marked_as_keywords() {
        let q = figure1_query();
        let terms = q.terms();
        assert!(terms[..3].iter().all(|t| !t.is_keyword()));
        assert!(terms[3].is_keyword());
        assert_eq!(terms[3].text, "diagnosis");
    }

    #[test]
    fn fragment_terms_point_back_into_the_fragment() {
        let q = figure1_query();
        let terms = q.terms();
        let t = &terms[1];
        let frag = &q.fragments()[t.fragment.unwrap()];
        assert_eq!(frag.element(t.element.unwrap()).name, t.text);
        assert_eq!(t.kind, ElementKind::Attribute);
        assert_eq!(terms[0].kind, ElementKind::Entity);
    }

    #[test]
    fn blank_keywords_are_dropped() {
        let mut q = QueryGraph::new();
        q.add_keyword("   ");
        q.add_keyword("");
        assert!(q.is_empty());
        q.add_keyword("  height ");
        assert_eq!(q.keywords(), ["height"]);
    }

    #[test]
    fn empty_fragments_do_not_make_the_query_nonempty() {
        let mut q = QueryGraph::new();
        q.add_fragment(Schema::new("empty"));
        assert!(q.is_empty());
    }

    #[test]
    fn multiple_fragments_keep_fragment_indices() {
        let mut q = figure1_query();
        q.add_fragment(
            SchemaBuilder::new("f2")
                .entity("visit", |e| e.attr("date", DataType::Date))
                .build_unchecked(),
        );
        let terms = q.terms();
        let visit_terms: Vec<_> = terms.iter().filter(|t| t.fragment == Some(1)).collect();
        assert_eq!(visit_terms.len(), 2);
    }
}
