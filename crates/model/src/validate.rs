//! Structural validation of schemas.
//!
//! Parsers and the repository run [`validate`] before accepting a schema, so
//! downstream code (indexer, matchers, layouts) can assume well-formedness.

use std::collections::HashSet;

use crate::element::{ElementId, ElementKind};
use crate::schema::Schema;

/// A structural defect found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An element has an empty or whitespace-only name.
    EmptyName(ElementId),
    /// An element's parent id is out of range.
    DanglingParent(ElementId),
    /// Following parent links from this element revisits it (cycle).
    ContainmentCycle(ElementId),
    /// An attribute has containment children.
    AttributeWithChildren(ElementId),
    /// A foreign key references an element that is not an entity.
    ForeignKeyNotEntity(ElementId),
    /// A foreign key's attribute does not belong to its declared entity.
    ForeignKeyAttrOutsideEntity { attr: ElementId, entity: ElementId },
    /// A foreign key references an out-of-range element.
    ForeignKeyDangling(ElementId),
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::EmptyName(id) => write!(f, "element {id} has an empty name"),
            ValidationError::DanglingParent(id) => write!(f, "element {id} has a dangling parent"),
            ValidationError::ContainmentCycle(id) => {
                write!(f, "containment cycle through element {id}")
            }
            ValidationError::AttributeWithChildren(id) => {
                write!(f, "attribute {id} has children")
            }
            ValidationError::ForeignKeyNotEntity(id) => {
                write!(f, "foreign key endpoint {id} is not an entity")
            }
            ValidationError::ForeignKeyAttrOutsideEntity { attr, entity } => {
                write!(
                    f,
                    "foreign key attribute {attr} is not owned by entity {entity}"
                )
            }
            ValidationError::ForeignKeyDangling(id) => {
                write!(f, "foreign key references out-of-range element {id}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check a schema for structural defects; returns every defect found.
pub fn validate(schema: &Schema) -> Vec<ValidationError> {
    let mut errors = Vec::new();
    let n = schema.len();
    let in_range = |id: ElementId| id.index() < n;

    for id in schema.ids() {
        let el = schema.element(id);
        if el.name.trim().is_empty() {
            errors.push(ValidationError::EmptyName(id));
        }
        if let Some(p) = el.parent {
            if !in_range(p) {
                errors.push(ValidationError::DanglingParent(id));
                continue;
            }
            if schema.element(p).kind == ElementKind::Attribute {
                errors.push(ValidationError::AttributeWithChildren(p));
            }
        }
    }

    // Cycle detection: walk parents with a visited set per start, memoizing
    // elements already proven acyclic.
    let mut acyclic: HashSet<ElementId> = HashSet::new();
    for start in schema.ids() {
        if acyclic.contains(&start) {
            continue;
        }
        let mut seen = Vec::new();
        let mut seen_set = HashSet::new();
        let mut cur = Some(start);
        let mut cyclic = false;
        while let Some(c) = cur {
            if acyclic.contains(&c) {
                break;
            }
            if !seen_set.insert(c) {
                errors.push(ValidationError::ContainmentCycle(c));
                cyclic = true;
                break;
            }
            seen.push(c);
            cur = schema.element(c).parent.filter(|p| in_range(*p));
        }
        if !cyclic {
            acyclic.extend(seen);
        }
    }

    for fk in schema.foreign_keys() {
        for endpoint in [fk.from_entity, fk.to_entity] {
            if !in_range(endpoint) {
                errors.push(ValidationError::ForeignKeyDangling(endpoint));
            } else if schema.element(endpoint).kind != ElementKind::Entity {
                errors.push(ValidationError::ForeignKeyNotEntity(endpoint));
            }
        }
        for (attrs, entity) in [
            (&fk.from_attrs, fk.from_entity),
            (&fk.to_attrs, fk.to_entity),
        ] {
            for &attr in attrs {
                if !in_range(attr) {
                    errors.push(ValidationError::ForeignKeyDangling(attr));
                } else if in_range(entity) && schema.owning_entity(attr) != Some(entity) {
                    errors.push(ValidationError::ForeignKeyAttrOutsideEntity { attr, entity });
                }
            }
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::element::{DataType, Element};
    use crate::schema::ForeignKey;

    #[test]
    fn a_well_formed_schema_validates_cleanly() {
        let s = SchemaBuilder::new("ok")
            .entity("a", |e| e.attr("b_id", DataType::Integer))
            .entity("b", |e| e.attr("id", DataType::Integer))
            .foreign_key("a", &["b_id"], "b", &["id"])
            .build_unchecked();
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn empty_names_are_reported() {
        let mut s = Schema::new("x");
        s.add_root(Element::entity("  "));
        let errs = validate(&s);
        assert!(matches!(errs[0], ValidationError::EmptyName(_)));
    }

    #[test]
    fn attribute_children_are_reported() {
        let mut s = Schema::new("x");
        let a = s.add_root(Element::attribute("leaf", DataType::Text));
        s.add_child(a, Element::attribute("child", DataType::Text));
        let errs = validate(&s);
        assert!(errs.contains(&ValidationError::AttributeWithChildren(a)));
    }

    #[test]
    fn containment_cycles_are_reported() {
        let mut s = Schema::new("x");
        let a = s.add_root(Element::entity("a"));
        let b = s.add_child(a, Element::group("b"));
        // Corrupt the graph: a's parent becomes b.
        s.element_mut(a).parent = Some(b);
        let errs = validate(&s);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::ContainmentCycle(_))));
    }

    #[test]
    fn fk_endpoint_must_be_entity() {
        let mut s = Schema::new("x");
        let a = s.add_root(Element::entity("a"));
        let attr = s.add_child(a, Element::attribute("id", DataType::Integer));
        s.add_foreign_key(ForeignKey {
            from_entity: attr,
            from_attrs: vec![],
            to_entity: a,
            to_attrs: vec![],
        });
        let errs = validate(&s);
        assert!(errs.contains(&ValidationError::ForeignKeyNotEntity(attr)));
    }

    #[test]
    fn fk_attr_must_belong_to_declared_entity() {
        let mut s = Schema::new("x");
        let a = s.add_root(Element::entity("a"));
        let b = s.add_root(Element::entity("b"));
        let b_attr = s.add_child(b, Element::attribute("id", DataType::Integer));
        s.add_foreign_key(ForeignKey {
            from_entity: a,
            from_attrs: vec![b_attr],
            to_entity: b,
            to_attrs: vec![],
        });
        let errs = validate(&s);
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::ForeignKeyAttrOutsideEntity { .. })));
    }

    #[test]
    fn fk_out_of_range_is_dangling() {
        let mut s = Schema::new("x");
        let a = s.add_root(Element::entity("a"));
        s.add_foreign_key(ForeignKey {
            from_entity: a,
            from_attrs: vec![],
            to_entity: ElementId(42),
            to_attrs: vec![],
        });
        let errs = validate(&s);
        assert!(errs.contains(&ValidationError::ForeignKeyDangling(ElementId(42))));
    }
}
