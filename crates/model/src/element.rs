//! Schema elements: the nodes of the schema graph.

use serde::{Deserialize, Serialize};

/// Index of an element within its [`crate::Schema`].
///
/// `ElementId`s are dense (0..n) and only meaningful relative to the schema
/// that issued them, which lets similarity matrices be plain 2-D arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElementId(pub u32);

impl ElementId {
    /// The element's position in [`crate::Schema::elements`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ElementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What kind of node a schema element is.
///
/// The paper's GUI colors nodes by this type ("e.g. entity or attribute");
/// matchers and the tightness-of-fit measure also branch on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// A container of attributes: a relational table or an XML complex type.
    Entity,
    /// A leaf carrying data: a column or a simple XML element/attribute.
    Attribute,
    /// An intermediate grouping node (XSD `sequence`/`choice`, nested
    /// record). Groups behave like entities for containment but do not
    /// participate in foreign keys.
    Group,
}

impl ElementKind {
    /// Short lowercase label used in flattened index documents and GraphML.
    pub fn label(self) -> &'static str {
        match self {
            ElementKind::Entity => "entity",
            ElementKind::Attribute => "attribute",
            ElementKind::Group => "group",
        }
    }
}

impl std::fmt::Display for ElementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Logical data type of an attribute.
///
/// Parsers map concrete SQL / XSD types onto this small lattice; the
/// data-type matcher scores pairs by compatibility within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DataType {
    Integer,
    Real,
    Decimal,
    Text,
    Boolean,
    Date,
    Time,
    DateTime,
    Binary,
    /// Unparsed or absent type information.
    #[default]
    Unknown,
}

impl DataType {
    /// All concrete variants, in a stable order (used by the type matcher's
    /// compatibility matrix and by the corpus generator).
    pub const ALL: [DataType; 10] = [
        DataType::Integer,
        DataType::Real,
        DataType::Decimal,
        DataType::Text,
        DataType::Boolean,
        DataType::Date,
        DataType::Time,
        DataType::DateTime,
        DataType::Binary,
        DataType::Unknown,
    ];

    /// Whether the type carries numeric values.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Integer | DataType::Real | DataType::Decimal)
    }

    /// Whether the type carries temporal values.
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Date | DataType::Time | DataType::DateTime)
    }

    /// Short lowercase label for display and GraphML.
    pub fn label(self) -> &'static str {
        match self {
            DataType::Integer => "integer",
            DataType::Real => "real",
            DataType::Decimal => "decimal",
            DataType::Text => "text",
            DataType::Boolean => "boolean",
            DataType::Date => "date",
            DataType::Time => "time",
            DataType::DateTime => "datetime",
            DataType::Binary => "binary",
            DataType::Unknown => "unknown",
        }
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A node in the schema graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Element {
    /// The element's declared name, exactly as parsed (`PatientHeight`,
    /// `pat_ht`, …). Normalization happens in the text-analysis layer.
    pub name: String,
    /// Entity, attribute, or group.
    pub kind: ElementKind,
    /// Data type; meaningful for attributes, [`DataType::Unknown`] otherwise.
    pub data_type: DataType,
    /// Containment parent (`None` for roots).
    pub parent: Option<ElementId>,
    /// Free-text documentation attached in the source (SQL `COMMENT`, XSD
    /// `xs:documentation`).
    pub doc: Option<String>,
}

impl Element {
    /// A new entity element with no parent.
    pub fn entity(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            kind: ElementKind::Entity,
            data_type: DataType::Unknown,
            parent: None,
            doc: None,
        }
    }

    /// A new attribute element; the parent is fixed by [`crate::Schema::add_child`].
    pub fn attribute(name: impl Into<String>, data_type: DataType) -> Self {
        Element {
            name: name.into(),
            kind: ElementKind::Attribute,
            data_type,
            parent: None,
            doc: None,
        }
    }

    /// A new grouping element.
    pub fn group(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            kind: ElementKind::Group,
            data_type: DataType::Unknown,
            parent: None,
            doc: None,
        }
    }

    /// Attach documentation, builder-style.
    pub fn with_doc(mut self, doc: impl Into<String>) -> Self {
        self.doc = Some(doc.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kinds() {
        assert_eq!(Element::entity("patient").kind, ElementKind::Entity);
        let a = Element::attribute("height", DataType::Real);
        assert_eq!(a.kind, ElementKind::Attribute);
        assert_eq!(a.data_type, DataType::Real);
        assert_eq!(Element::group("seq").kind, ElementKind::Group);
    }

    #[test]
    fn with_doc_attaches_documentation() {
        let e = Element::entity("patient").with_doc("a person under care");
        assert_eq!(e.doc.as_deref(), Some("a person under care"));
    }

    #[test]
    fn data_type_predicates() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Decimal.is_numeric());
        assert!(!DataType::Text.is_numeric());
        assert!(DataType::DateTime.is_temporal());
        assert!(!DataType::Boolean.is_temporal());
    }

    #[test]
    fn labels_are_lowercase_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for t in DataType::ALL {
            let l = t.label();
            assert_eq!(l, l.to_lowercase());
            assert!(seen.insert(l), "duplicate label {l}");
        }
    }

    #[test]
    fn element_id_display_and_index() {
        assert_eq!(ElementId(7).to_string(), "e7");
        assert_eq!(ElementId(7).index(), 7);
    }
}
