//! # schemr-model
//!
//! The schema graph model underlying the Schemr search engine.
//!
//! Schemr treats every schema — relational or semi-structured — as a graph of
//! *elements*. Entities (tables, XML complex types) contain attributes
//! (columns, simple elements); foreign keys connect entities into
//! *neighborhoods*. A user query is a [`QueryGraph`]: a forest of schema
//! fragments plus free-standing keywords (Figure 1 of the paper).
//!
//! This crate is deliberately free of parsing, indexing, and matching logic;
//! it only defines the data model those layers share:
//!
//! * [`Schema`] / [`Element`] — the schema graph with containment and
//!   foreign-key edges,
//! * [`SchemaBuilder`] — ergonomic construction,
//! * [`DistanceClass`] — the structural distance classes used by the
//!   tightness-of-fit measure (same entity / FK neighborhood / unrelated),
//! * [`QueryGraph`] — the parsed search input,
//! * validation and statistics helpers.

mod builder;
mod element;
mod query;
mod schema;
mod stats;
mod validate;

pub use builder::{EntityBuilder, SchemaBuilder};
pub use element::{DataType, Element, ElementId, ElementKind};
pub use query::{QueryGraph, QueryTerm};
pub use schema::{DistanceClass, ForeignKey, Neighborhoods, Schema};
pub use stats::SchemaStats;
pub use validate::{validate, ValidationError};

/// A stable identifier for a schema within a repository.
///
/// The repository assigns these; the model only carries them around so that
/// search results, visualizations, and HTTP responses can refer back to the
/// stored schema.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct SchemaId(pub u64);

impl std::fmt::Display for SchemaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::str::FromStr for SchemaId {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix('s').unwrap_or(s);
        digits.parse().map(SchemaId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_id_round_trips_through_display() {
        let id = SchemaId(42);
        assert_eq!(id.to_string(), "s42");
        assert_eq!("s42".parse::<SchemaId>().unwrap(), id);
        assert_eq!("42".parse::<SchemaId>().unwrap(), id);
    }

    #[test]
    fn schema_id_rejects_garbage() {
        assert!("sx".parse::<SchemaId>().is_err());
        assert!("".parse::<SchemaId>().is_err());
    }
}
