//! The [`Schema`] graph: elements, containment, foreign keys, and the
//! structural distance classes used by tightness-of-fit scoring.

use serde::{Deserialize, Serialize};

use crate::element::{Element, ElementId, ElementKind};

/// A foreign-key edge between two entities.
///
/// Attribute-level detail is kept so parsers can round-trip DDL, but the
/// tightness-of-fit measure only uses the entity-level projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing entity.
    pub from_entity: ElementId,
    /// Referencing attributes (columns of `from_entity`).
    pub from_attrs: Vec<ElementId>,
    /// Referenced entity.
    pub to_entity: ElementId,
    /// Referenced attributes (columns of `to_entity`); empty means the
    /// target's primary key was implied.
    pub to_attrs: Vec<ElementId>,
}

/// Structural distance between two matched elements, relative to an anchor
/// entity — the three-way classification at the heart of the paper's
/// tightness-of-fit measure:
///
/// * same entity → no penalty,
/// * same *entity neighborhood* (transitive closure over foreign keys) →
///   small penalty,
/// * unrelated entities → larger penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistanceClass {
    /// The element lives in the anchor entity itself.
    SameEntity,
    /// The element's entity is FK-reachable from the anchor (in either
    /// direction, transitively).
    Neighborhood,
    /// No FK path connects the element's entity to the anchor.
    Unrelated,
}

/// A schema: a named graph of elements with containment and foreign-key
/// edges.
///
/// Elements are stored densely; [`ElementId`]s index into
/// [`Schema::elements`]. Containment is encoded in each element's `parent`
/// pointer plus a derived child list; foreign keys are a separate edge list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// The schema's own name (e.g. the DDL file stem or XSD root).
    pub name: String,
    elements: Vec<Element>,
    foreign_keys: Vec<ForeignKey>,
}

impl Schema {
    /// An empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            elements: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// All elements, in insertion order (dense, indexable by [`ElementId`]).
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements of any kind.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the schema has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// All foreign-key edges.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// The element behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this schema.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// Mutable access to the element behind `id`.
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.index()]
    }

    /// The element behind `id`, or `None` if out of range.
    pub fn get(&self, id: ElementId) -> Option<&Element> {
        self.elements.get(id.index())
    }

    /// Append a root element (no parent) and return its id.
    pub fn add_root(&mut self, element: Element) -> ElementId {
        debug_assert!(element.parent.is_none());
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(element);
        id
    }

    /// Append `element` as a child of `parent` and return its id.
    ///
    /// # Panics
    /// Panics if `parent` was not issued by this schema.
    pub fn add_child(&mut self, parent: ElementId, mut element: Element) -> ElementId {
        assert!(
            parent.index() < self.elements.len(),
            "unknown parent {parent}"
        );
        element.parent = Some(parent);
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(element);
        id
    }

    /// Record a foreign-key edge.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Ids of all elements, in order.
    pub fn ids(&self) -> impl Iterator<Item = ElementId> + '_ {
        (0..self.elements.len() as u32).map(ElementId)
    }

    /// Ids of all root elements (no containment parent).
    pub fn roots(&self) -> Vec<ElementId> {
        self.ids()
            .filter(|id| self.element(*id).parent.is_none())
            .collect()
    }

    /// Ids of the direct children of `id`, in insertion order.
    pub fn children(&self, id: ElementId) -> Vec<ElementId> {
        self.ids()
            .filter(|c| self.element(*c).parent == Some(id))
            .collect()
    }

    /// Ids of all entities.
    pub fn entities(&self) -> Vec<ElementId> {
        self.ids()
            .filter(|id| self.element(*id).kind == ElementKind::Entity)
            .collect()
    }

    /// Ids of all attributes.
    pub fn attributes(&self) -> Vec<ElementId> {
        self.ids()
            .filter(|id| self.element(*id).kind == ElementKind::Attribute)
            .collect()
    }

    /// The nearest enclosing *entity* of `id` (itself, if `id` is an entity).
    ///
    /// Walks containment parents through any groups. Returns `None` for
    /// elements with no enclosing entity (e.g. a root attribute in a
    /// degenerate flat schema).
    pub fn owning_entity(&self, id: ElementId) -> Option<ElementId> {
        let mut cur = id;
        loop {
            if self.element(cur).kind == ElementKind::Entity {
                return Some(cur);
            }
            cur = self.element(cur).parent?;
        }
    }

    /// Dotted path from the root to `id`: `"patient.visit.height"`.
    pub fn path(&self, id: ElementId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            parts.push(self.element(c).name.as_str());
            cur = self.element(c).parent;
        }
        parts.reverse();
        parts.join(".")
    }

    /// Depth of `id` below its root (roots have depth 0).
    pub fn depth(&self, id: ElementId) -> usize {
        let mut d = 0;
        let mut cur = self.element(id).parent;
        while let Some(c) = cur {
            d += 1;
            cur = self.element(c).parent;
        }
        d
    }

    /// Ids of the subtree rooted at `root`, pre-order, cut at `max_depth`
    /// levels below `root` (the paper caps displayed depth at 3 and lets the
    /// user drill in).
    pub fn subtree(&self, root: ElementId, max_depth: usize) -> Vec<ElementId> {
        let mut out = Vec::new();
        let mut stack = vec![(root, 0usize)];
        while let Some((id, d)) = stack.pop() {
            out.push(id);
            if d < max_depth {
                let mut kids = self.children(id);
                // Reverse so pre-order pops in insertion order.
                kids.reverse();
                for k in kids {
                    stack.push((k, d + 1));
                }
            }
        }
        out
    }

    /// Entity-level FK adjacency: for each entity pair joined by at least one
    /// foreign key (in either direction), one undirected edge.
    fn fk_adjacency(&self) -> Vec<(ElementId, ElementId)> {
        self.foreign_keys
            .iter()
            .map(|fk| (fk.from_entity, fk.to_entity))
            .collect()
    }

    /// Union-find over entities joined by foreign keys — the "transitive
    /// closure on foreign key" the paper uses to define entity neighborhoods.
    ///
    /// Returns a component label per element index (labels are only
    /// meaningful for entities).
    fn fk_components(&self) -> Vec<u32> {
        let n = self.elements.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for (a, b) in self.fk_adjacency() {
            let ra = find(&mut parent, a.0);
            let rb = find(&mut parent, b.0);
            if ra != rb {
                parent[ra as usize] = rb;
            }
        }
        (0..n as u32).map(|i| find(&mut parent, i)).collect()
    }

    /// Precomputed structural-distance oracle for tightness-of-fit scoring.
    pub fn neighborhoods(&self) -> Neighborhoods {
        Neighborhoods {
            owning: self.ids().map(|id| self.owning_entity(id)).collect(),
            component: self.fk_components(),
        }
    }

    /// Classify the structural distance from `anchor` (an entity) to the
    /// entity owning `element`. Convenience wrapper; hot paths should reuse a
    /// [`Neighborhoods`] oracle.
    pub fn distance_class(&self, anchor: ElementId, element: ElementId) -> DistanceClass {
        self.neighborhoods().classify(anchor, element)
    }
}

/// Precomputed owning-entity and FK-component tables for a schema.
///
/// Built once per candidate schema by [`Schema::neighborhoods`]; answers
/// [`DistanceClass`] queries in O(1).
#[derive(Debug, Clone)]
pub struct Neighborhoods {
    owning: Vec<Option<ElementId>>,
    component: Vec<u32>,
}

impl Neighborhoods {
    /// The nearest enclosing entity of `id`, as precomputed.
    pub fn owning_entity(&self, id: ElementId) -> Option<ElementId> {
        self.owning[id.index()]
    }

    /// Structural distance class of `element` relative to `anchor`.
    ///
    /// `anchor` is interpreted through its own owning entity, so it is safe
    /// to pass attributes as anchors too.
    pub fn classify(&self, anchor: ElementId, element: ElementId) -> DistanceClass {
        let (Some(ae), Some(ee)) = (self.owning_entity(anchor), self.owning_entity(element)) else {
            return DistanceClass::Unrelated;
        };
        if ae == ee {
            DistanceClass::SameEntity
        } else if self.component[ae.index()] == self.component[ee.index()] {
            DistanceClass::Neighborhood
        } else {
            DistanceClass::Unrelated
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::DataType;

    /// The paper's Figure 4 schema: `case(doctor, patient)` with FKs to
    /// `patient(height, gender)` and `doctor(gender)`, plus an unrelated
    /// `supply(item)` entity for the Unrelated class.
    fn figure4_schema() -> (Schema, ElementId, ElementId, ElementId, ElementId) {
        let mut s = Schema::new("clinic");
        let case = s.add_root(Element::entity("case"));
        let case_doctor = s.add_child(case, Element::attribute("doctor", DataType::Integer));
        let case_patient = s.add_child(case, Element::attribute("patient", DataType::Integer));
        let patient = s.add_root(Element::entity("patient"));
        let _height = s.add_child(patient, Element::attribute("height", DataType::Real));
        let _gender = s.add_child(patient, Element::attribute("gender", DataType::Text));
        let doctor = s.add_root(Element::entity("doctor"));
        let _dgender = s.add_child(doctor, Element::attribute("gender", DataType::Text));
        let supply = s.add_root(Element::entity("supply"));
        let _item = s.add_child(supply, Element::attribute("item", DataType::Text));
        s.add_foreign_key(ForeignKey {
            from_entity: case,
            from_attrs: vec![case_patient],
            to_entity: patient,
            to_attrs: vec![],
        });
        s.add_foreign_key(ForeignKey {
            from_entity: case,
            from_attrs: vec![case_doctor],
            to_entity: doctor,
            to_attrs: vec![],
        });
        (s, case, patient, doctor, supply)
    }

    #[test]
    fn containment_paths_and_depth() {
        let (s, case, ..) = figure4_schema();
        let kids = s.children(case);
        assert_eq!(kids.len(), 2);
        assert_eq!(s.path(kids[0]), "case.doctor");
        assert_eq!(s.depth(kids[0]), 1);
        assert_eq!(s.depth(case), 0);
    }

    #[test]
    fn owning_entity_walks_through_groups() {
        let mut s = Schema::new("x");
        let root = s.add_root(Element::entity("order"));
        let grp = s.add_child(root, Element::group("items"));
        let leaf = s.add_child(grp, Element::attribute("sku", DataType::Text));
        assert_eq!(s.owning_entity(leaf), Some(root));
        assert_eq!(s.owning_entity(grp), Some(root));
        assert_eq!(s.owning_entity(root), Some(root));
    }

    #[test]
    fn distance_classes_follow_fk_transitive_closure() {
        let (s, case, patient, doctor, supply) = figure4_schema();
        let nb = s.neighborhoods();
        // Attributes of the anchor entity itself.
        let case_attrs = s.children(case);
        assert_eq!(nb.classify(case, case_attrs[0]), DistanceClass::SameEntity);
        // patient and doctor are both FK-joined to case → neighborhood.
        let patient_attrs = s.children(patient);
        assert_eq!(
            nb.classify(case, patient_attrs[0]),
            DistanceClass::Neighborhood
        );
        // patient → doctor has no direct FK but both connect through case:
        // transitive closure puts them in the same neighborhood.
        let doctor_attrs = s.children(doctor);
        assert_eq!(
            nb.classify(patient, doctor_attrs[0]),
            DistanceClass::Neighborhood
        );
        // supply shares no FK path with anyone.
        let supply_attrs = s.children(supply);
        assert_eq!(nb.classify(case, supply_attrs[0]), DistanceClass::Unrelated);
        assert_eq!(nb.classify(supply, case_attrs[0]), DistanceClass::Unrelated);
    }

    #[test]
    fn anchor_may_be_an_attribute() {
        let (s, case, patient, ..) = figure4_schema();
        let nb = s.neighborhoods();
        let case_attr = s.children(case)[0];
        let patient_attr = s.children(patient)[0];
        assert_eq!(
            nb.classify(case_attr, patient_attr),
            DistanceClass::Neighborhood
        );
    }

    #[test]
    fn subtree_respects_depth_cap() {
        let mut s = Schema::new("deep");
        let a = s.add_root(Element::entity("a"));
        let b = s.add_child(a, Element::group("b"));
        let c = s.add_child(b, Element::group("c"));
        let d = s.add_child(c, Element::attribute("d", DataType::Text));
        assert_eq!(s.subtree(a, 3), vec![a, b, c, d]);
        assert_eq!(s.subtree(a, 2), vec![a, b, c]);
        assert_eq!(s.subtree(a, 0), vec![a]);
    }

    #[test]
    fn subtree_is_preorder_in_insertion_order() {
        let mut s = Schema::new("wide");
        let r = s.add_root(Element::entity("r"));
        let x = s.add_child(r, Element::group("x"));
        let y = s.add_child(r, Element::group("y"));
        let x1 = s.add_child(x, Element::attribute("x1", DataType::Text));
        assert_eq!(s.subtree(r, 5), vec![r, x, x1, y]);
    }

    #[test]
    fn roots_entities_attributes_partition() {
        let (s, ..) = figure4_schema();
        assert_eq!(s.roots().len(), 4);
        assert_eq!(s.entities().len(), 4);
        assert_eq!(s.attributes().len(), 6);
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let (s, ..) = figure4_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn add_child_rejects_foreign_parent() {
        let mut s = Schema::new("x");
        s.add_child(ElementId(99), Element::attribute("a", DataType::Text));
    }
}
