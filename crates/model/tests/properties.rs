//! Property-based tests for the schema model.

use proptest::prelude::*;
use schemr_model::{validate, DataType, DistanceClass, Element, ElementId, ForeignKey, Schema};

/// Strategy: a random well-formed schema with `n` entities, up to 6
/// attributes each, and random FK edges between entities.
fn arb_schema() -> impl Strategy<Value = Schema> {
    (
        1usize..6,
        proptest::collection::vec(0usize..6, 1..6),
        proptest::collection::vec((0usize..6, 0usize..6), 0..8),
    )
        .prop_map(|(n_entities, attr_counts, fk_pairs)| {
            let mut s = Schema::new("prop");
            let mut entities = Vec::new();
            for i in 0..n_entities {
                let e = s.add_root(Element::entity(format!("entity{i}")));
                let n_attrs = attr_counts[i % attr_counts.len()];
                for j in 0..n_attrs {
                    s.add_child(
                        e,
                        Element::attribute(format!("attr{i}x{j}"), DataType::Text),
                    );
                }
                entities.push(e);
            }
            for (a, b) in fk_pairs {
                let from = entities[a % entities.len()];
                let to = entities[b % entities.len()];
                if from != to {
                    s.add_foreign_key(ForeignKey {
                        from_entity: from,
                        from_attrs: vec![],
                        to_entity: to,
                        to_attrs: vec![],
                    });
                }
            }
            s
        })
}

proptest! {
    /// Generated schemas always validate.
    #[test]
    fn generated_schemas_validate(s in arb_schema()) {
        prop_assert!(validate(&s).is_empty());
    }

    /// Every element's path starts with its root's name and depth matches
    /// the number of dots.
    #[test]
    fn paths_encode_depth(s in arb_schema()) {
        for id in s.ids() {
            let path = s.path(id);
            prop_assert_eq!(path.matches('.').count(), s.depth(id));
        }
    }

    /// The distance classification is symmetric between entities.
    #[test]
    fn distance_class_symmetric(s in arb_schema()) {
        let nb = s.neighborhoods();
        let entities = s.entities();
        for &a in &entities {
            for &b in &entities {
                prop_assert_eq!(nb.classify(a, b), nb.classify(b, a));
            }
        }
    }

    /// Same-entity classification is exactly reflexivity of owning
    /// entities.
    #[test]
    fn same_entity_iff_same_owner(s in arb_schema()) {
        let nb = s.neighborhoods();
        for a in s.ids() {
            for b in s.ids() {
                let same = nb.classify(a, b) == DistanceClass::SameEntity;
                let owners_equal = s.owning_entity(a).is_some()
                    && s.owning_entity(a) == s.owning_entity(b);
                prop_assert_eq!(same, owners_equal);
            }
        }
    }

    /// Neighborhood is transitive: if a~b and b~c are in one FK component,
    /// then a~c is not Unrelated.
    #[test]
    fn neighborhood_is_transitive(s in arb_schema()) {
        let nb = s.neighborhoods();
        let entities = s.entities();
        for &a in &entities {
            for &b in &entities {
                for &c in &entities {
                    let ab = nb.classify(a, b) != DistanceClass::Unrelated;
                    let bc = nb.classify(b, c) != DistanceClass::Unrelated;
                    if ab && bc {
                        prop_assert_ne!(nb.classify(a, c), DistanceClass::Unrelated);
                    }
                }
            }
        }
    }

    /// subtree() output size is monotone in the depth cap.
    #[test]
    fn subtree_monotone_in_depth(s in arb_schema(), depth in 0usize..4) {
        for root in s.roots() {
            let small = s.subtree(root, depth).len();
            let big = s.subtree(root, depth + 1).len();
            prop_assert!(small <= big);
        }
    }

    /// Serde JSON round-trips schemas exactly.
    #[test]
    fn serde_round_trip(s in arb_schema()) {
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(s, back);
    }

    /// ElementIds index elements in insertion order.
    #[test]
    fn ids_are_dense(s in arb_schema()) {
        for (i, id) in s.ids().enumerate() {
            prop_assert_eq!(id, ElementId(i as u32));
            prop_assert!(s.get(id).is_some());
        }
        prop_assert!(s.get(ElementId(s.len() as u32)).is_none());
    }
}
