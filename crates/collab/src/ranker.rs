//! Community-aware re-ranking of search results.

use schemr::SearchResult;

use crate::store::CommunityStore;

/// Blend weights for the community boost.
#[derive(Debug, Clone, Copy)]
pub struct RankerWeights {
    /// Weight of the smoothed rating term.
    pub rating: f64,
    /// Weight of the smoothed click-through-rate term.
    pub ctr: f64,
    /// Prior mean rating (stars).
    pub rating_prior: f64,
    /// Pseudo-votes behind the rating prior.
    pub rating_pseudo_votes: f64,
    /// Prior click-through rate.
    pub ctr_prior: f64,
    /// Pseudo-impressions behind the CTR prior.
    pub ctr_strength: f64,
}

impl Default for RankerWeights {
    fn default() -> Self {
        RankerWeights {
            rating: 0.3,
            ctr: 0.3,
            rating_prior: 3.0,
            rating_pseudo_votes: 5.0,
            ctr_prior: 0.1,
            ctr_strength: 10.0,
        }
    }
}

/// Applies community signals on top of engine scores.
pub struct CommunityRanker<'a> {
    store: &'a CommunityStore,
    weights: RankerWeights,
}

impl<'a> CommunityRanker<'a> {
    /// A ranker over a signal store.
    pub fn new(store: &'a CommunityStore) -> Self {
        Self::with_weights(store, RankerWeights::default())
    }

    /// With explicit weights.
    pub fn with_weights(store: &'a CommunityStore, weights: RankerWeights) -> Self {
        CommunityRanker { store, weights }
    }

    /// The multiplicative boost for one schema, ≥ 1 only when its signals
    /// beat the priors: `1 + w_r·(rating'−prior') + w_c·(ctr'−p₀)` clamped
    /// below at 0.1 so catastrophically-rated schemas sink but never go
    /// negative.
    pub fn boost(&self, id: schemr_model::SchemaId) -> f64 {
        let signals = self.store.signals(id);
        let w = &self.weights;
        let rating = signals.smoothed_rating(w.rating_prior, w.rating_pseudo_votes);
        let rating_baseline = ((w.rating_prior - 1.0) / 4.0).clamp(0.0, 1.0);
        let ctr = signals.usage.smoothed_ctr(w.ctr_prior, w.ctr_strength);
        (1.0 + w.rating * (rating - rating_baseline) + w.ctr * (ctr - w.ctr_prior)).max(0.1)
    }

    /// Re-rank results in place by boosted score; records an impression
    /// for every result shown.
    pub fn rerank(&self, results: &mut [SearchResult]) {
        for r in results.iter_mut() {
            r.score *= self.boost(r.id);
            self.store.record_impression(r.id);
        }
        results.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{SchemaId, SchemaStats};

    fn result(id: u64, score: f64) -> SearchResult {
        SearchResult {
            id: SchemaId(id),
            title: format!("s{id}"),
            summary: String::new(),
            score,
            coarse_score: score,
            matched_terms: 1,
            stats: SchemaStats::default(),
            matches: vec![],
        }
    }

    #[test]
    fn unrated_schemas_keep_their_scores() {
        let store = CommunityStore::new();
        let ranker = CommunityRanker::new(&store);
        assert!((ranker.boost(SchemaId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn well_rated_schemas_overtake_close_competitors() {
        let store = CommunityStore::new();
        for _ in 0..20 {
            store.rate(SchemaId(2), 5);
        }
        for _ in 0..20 {
            store.rate(SchemaId(1), 1);
        }
        let ranker = CommunityRanker::new(&store);
        let mut results = vec![result(1, 0.50), result(2, 0.48)];
        ranker.rerank(&mut results);
        assert_eq!(results[0].id, SchemaId(2));
    }

    #[test]
    fn community_signals_do_not_override_large_relevance_gaps() {
        let store = CommunityStore::new();
        for _ in 0..50 {
            store.rate(SchemaId(2), 5);
        }
        let ranker = CommunityRanker::new(&store);
        let mut results = vec![result(1, 0.9), result(2, 0.3)];
        ranker.rerank(&mut results);
        assert_eq!(results[0].id, SchemaId(1), "relevance still dominates");
    }

    #[test]
    fn clicks_boost_through_smoothed_ctr() {
        let store = CommunityStore::new();
        for _ in 0..100 {
            store.record_impression(SchemaId(3));
            store.record_click(SchemaId(3));
        }
        let ranker = CommunityRanker::new(&store);
        assert!(ranker.boost(SchemaId(3)) > 1.2);
    }

    #[test]
    fn rerank_records_impressions() {
        let store = CommunityStore::new();
        let ranker = CommunityRanker::new(&store);
        let mut results = vec![result(1, 0.5), result(2, 0.4)];
        ranker.rerank(&mut results);
        assert_eq!(store.signals(SchemaId(1)).usage.impressions, 1);
        assert_eq!(store.signals(SchemaId(2)).usage.impressions, 1);
    }

    #[test]
    fn boost_is_floored() {
        let store = CommunityStore::new();
        for _ in 0..500 {
            store.rate(SchemaId(4), 1);
        }
        let ranker = CommunityRanker::with_weights(
            &store,
            RankerWeights {
                rating: 10.0,
                ..Default::default()
            },
        );
        assert!(ranker.boost(SchemaId(4)) >= 0.1);
    }
}
