//! # schemr-collab
//!
//! The collaboration layer the paper plans for Schemr's public deployment:
//! "To facilitate finding quality schemas in a large public repository, we
//! plan to incorporate collaborative functionality such as mechanisms for
//! users to leave ratings and comments on schemas … collaboration
//! functionality that provides usage statistics and comments on schemas
//! would improve schema search results."
//!
//! * [`CommunityStore`] — ratings (1–5 stars), threaded comments, and
//!   usage statistics (impressions and clicks) per schema,
//! * [`CommunityRanker`] — blends community signals into search scores:
//!   `score' = score × (1 + w_r·rating' + w_c·ctr')` with Bayesian-smoothed
//!   rating and click-through-rate priors,
//! * JSON persistence so community state survives restarts.

mod ranker;
mod store;

pub use ranker::{CommunityRanker, RankerWeights};
pub use store::{Comment, CommunityStore, SchemaSignals, UsageStats};
