//! Community signal storage: ratings, comments, usage statistics.

use std::collections::BTreeMap;

use parking_lot::RwLock;
use schemr_model::SchemaId;
use serde::{Deserialize, Serialize};

/// A user comment on a schema ("through these comments, users can suggest
/// improvements or additions").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Comment {
    /// Author handle.
    pub author: String,
    /// Comment body.
    pub text: String,
    /// Sequence number within the schema's thread.
    pub seq: u64,
    /// Optional parent comment (threading).
    pub reply_to: Option<u64>,
}

/// Usage statistics for one schema.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageStats {
    /// Times the schema appeared in a result list.
    pub impressions: u64,
    /// Times a user clicked through to the schema.
    pub clicks: u64,
    /// Times the schema's elements were adopted into a draft (editor
    /// integration: "information on schema re-use").
    pub adoptions: u64,
}

impl UsageStats {
    /// Click-through rate with Bayesian smoothing: `(clicks + α) /
    /// (impressions + α/p₀)` where `p₀` is the prior CTR. Unobserved
    /// schemas score the prior, heavily-shown schemas their empirical
    /// rate.
    pub fn smoothed_ctr(&self, prior_ctr: f64, strength: f64) -> f64 {
        let alpha = strength * prior_ctr;
        (self.clicks as f64 + alpha) / (self.impressions as f64 + strength)
    }
}

/// All community signals for one schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SchemaSignals {
    /// Star ratings, each in 1..=5.
    pub ratings: Vec<u8>,
    /// Comment thread.
    pub comments: Vec<Comment>,
    /// Usage counters.
    pub usage: UsageStats,
}

impl SchemaSignals {
    /// Bayesian-smoothed mean rating on a 0..1 scale: `m` pseudo-votes at
    /// the prior mean `prior` (in stars).
    pub fn smoothed_rating(&self, prior: f64, pseudo_votes: f64) -> f64 {
        let sum: f64 = self.ratings.iter().map(|&r| f64::from(r)).sum();
        let n = self.ratings.len() as f64;
        let stars = (sum + prior * pseudo_votes) / (n + pseudo_votes);
        ((stars - 1.0) / 4.0).clamp(0.0, 1.0)
    }
}

/// Thread-safe store of community signals, keyed by schema id.
#[derive(Debug, Default)]
pub struct CommunityStore {
    state: RwLock<BTreeMap<u64, SchemaSignals>>,
}

impl CommunityStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a star rating (clamped into 1..=5).
    pub fn rate(&self, id: SchemaId, stars: u8) {
        let stars = stars.clamp(1, 5);
        self.state
            .write()
            .entry(id.0)
            .or_default()
            .ratings
            .push(stars);
    }

    /// Append a comment; returns its sequence number. `reply_to` must name
    /// an existing comment or the comment is appended un-threaded.
    pub fn comment(
        &self,
        id: SchemaId,
        author: impl Into<String>,
        text: impl Into<String>,
        reply_to: Option<u64>,
    ) -> u64 {
        let mut state = self.state.write();
        let signals = state.entry(id.0).or_default();
        let seq = signals.comments.len() as u64;
        let reply_to = reply_to.filter(|&p| p < seq);
        signals.comments.push(Comment {
            author: author.into(),
            text: text.into(),
            seq,
            reply_to,
        });
        seq
    }

    /// Record that `id` appeared in a result list.
    pub fn record_impression(&self, id: SchemaId) {
        self.state
            .write()
            .entry(id.0)
            .or_default()
            .usage
            .impressions += 1;
    }

    /// Record a click-through.
    pub fn record_click(&self, id: SchemaId) {
        self.state.write().entry(id.0).or_default().usage.clicks += 1;
    }

    /// Record an element adoption (schema re-use).
    pub fn record_adoption(&self, id: SchemaId) {
        self.state.write().entry(id.0).or_default().usage.adoptions += 1;
    }

    /// Snapshot of one schema's signals.
    pub fn signals(&self, id: SchemaId) -> SchemaSignals {
        self.state.read().get(&id.0).cloned().unwrap_or_default()
    }

    /// Number of schemas with any signal.
    pub fn len(&self) -> usize {
        self.state.read().len()
    }

    /// True when no signals are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the whole store to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&*self.state.read()).expect("signals serialize")
    }

    /// Restore from [`CommunityStore::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let state: BTreeMap<u64, SchemaSignals> = serde_json::from_str(json)?;
        Ok(CommunityStore {
            state: RwLock::new(state),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratings_clamp_and_accumulate() {
        let store = CommunityStore::new();
        store.rate(SchemaId(1), 5);
        store.rate(SchemaId(1), 0); // clamps to 1
        store.rate(SchemaId(1), 9); // clamps to 5
        let s = store.signals(SchemaId(1));
        assert_eq!(s.ratings, vec![5, 1, 5]);
    }

    #[test]
    fn smoothed_rating_shrinks_toward_prior() {
        let mut s = SchemaSignals::default();
        // No votes → exactly the prior (3 stars → 0.5).
        assert!((s.smoothed_rating(3.0, 5.0) - 0.5).abs() < 1e-12);
        // One 5-star vote moves it up, but not to 1.0.
        s.ratings.push(5);
        let r = s.smoothed_rating(3.0, 5.0);
        assert!(r > 0.5 && r < 1.0, "{r}");
        // Many 5-star votes converge to 1.0.
        s.ratings.extend(std::iter::repeat_n(5, 500));
        assert!(s.smoothed_rating(3.0, 5.0) > 0.98);
    }

    #[test]
    fn ctr_smoothing() {
        let mut u = UsageStats::default();
        // Unobserved → prior.
        assert!((u.smoothed_ctr(0.1, 10.0) - 0.1).abs() < 1e-12);
        u.impressions = 1000;
        u.clicks = 500;
        assert!((u.smoothed_ctr(0.1, 10.0) - 0.4961).abs() < 1e-3);
    }

    #[test]
    fn comments_thread() {
        let store = CommunityStore::new();
        let a = store.comment(SchemaId(2), "kuang", "add units to height", None);
        let b = store.comment(SchemaId(2), "akshay", "agreed, cm", Some(a));
        let bogus = store.comment(SchemaId(2), "x", "reply to the future", Some(99));
        let s = store.signals(SchemaId(2));
        assert_eq!(s.comments.len(), 3);
        assert_eq!(s.comments[b as usize].reply_to, Some(a));
        assert_eq!(s.comments[bogus as usize].reply_to, None);
    }

    #[test]
    fn usage_counters() {
        let store = CommunityStore::new();
        store.record_impression(SchemaId(3));
        store.record_impression(SchemaId(3));
        store.record_click(SchemaId(3));
        store.record_adoption(SchemaId(3));
        let u = store.signals(SchemaId(3)).usage;
        assert_eq!((u.impressions, u.clicks, u.adoptions), (2, 1, 1));
    }

    #[test]
    fn json_round_trip() {
        let store = CommunityStore::new();
        store.rate(SchemaId(1), 4);
        store.comment(SchemaId(1), "a", "b", None);
        store.record_click(SchemaId(2));
        let restored = CommunityStore::from_json(&store.to_json()).unwrap();
        assert_eq!(restored.signals(SchemaId(1)), store.signals(SchemaId(1)));
        assert_eq!(restored.signals(SchemaId(2)), store.signals(SchemaId(2)));
        assert!(CommunityStore::from_json("nope").is_err());
    }

    #[test]
    fn unknown_schema_has_default_signals() {
        let store = CommunityStore::new();
        assert_eq!(store.signals(SchemaId(9)), SchemaSignals::default());
        assert!(store.is_empty());
    }
}
