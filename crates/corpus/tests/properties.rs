//! Property-based tests for the synthetic corpus substrate.

use proptest::prelude::*;
use schemr_corpus::{
    mrr, ndcg_at, precision_at, Corpus, CorpusConfig, NameStyle, PerturbConfig, Perturber,
    Workload, WorkloadConfig,
};
use schemr_model::validate;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every corpus validates, hits its target size, and is seed-stable.
    #[test]
    fn corpora_validate_for_any_seed(seed in 0u64..1000) {
        let config = CorpusConfig { target_size: 60, seed, ..CorpusConfig::default() };
        let corpus = Corpus::generate(&config);
        prop_assert!(corpus.len() >= 60);
        for s in &corpus.schemas {
            prop_assert!(validate(&s.schema).is_empty());
            prop_assert!(!s.title.is_empty());
        }
        let again = Corpus::generate(&config);
        prop_assert_eq!(corpus.len(), again.len());
        for (a, b) in corpus.schemas.iter().zip(&again.schemas) {
            prop_assert_eq!(&a.schema, &b.schema);
        }
    }

    /// Workload queries always carry usable ground truth.
    #[test]
    fn workloads_have_ground_truth(seed in 0u64..500) {
        let corpus = Corpus::generate(&CorpusConfig {
            target_size: 60,
            seed: 7,
            ..CorpusConfig::default()
        });
        let workload = Workload::generate(
            &corpus,
            &WorkloadConfig { queries: 10, seed, ..Default::default() },
        );
        for q in &workload.queries {
            prop_assert!(q.relevant.len() >= 2);
            prop_assert!(!q.keywords.is_empty() || q.fragment.is_some());
            for &r in &q.relevant {
                prop_assert!(r < corpus.len());
            }
        }
    }
}

proptest! {
    /// Perturbed names never lose all their letters.
    #[test]
    fn perturbation_keeps_letters(seed in 0u64..10_000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Perturber::new(PerturbConfig::standard());
        for base in ["patient_height", "gender", "species_abundance"] {
            let out = p.perturb_name(base, &mut rng);
            prop_assert!(out.chars().any(|c| c.is_alphabetic()), "{base} -> {out}");
        }
    }

    /// Every name style re-splits to the same word count for simple words
    /// (except Fused, which intentionally destroys boundaries).
    #[test]
    fn styles_preserve_word_boundaries(
        words in proptest::collection::vec("[a-z]{2,8}", 1..4)
    ) {
        for style in NameStyle::ALL {
            let joined = style.join(&words);
            prop_assert!(!joined.is_empty());
            if style != NameStyle::Fused {
                let resplit = schemr_text::tokenize::words(&joined);
                prop_assert_eq!(resplit.len(), words.len(), "{:?} via {:?}", words, style);
            }
        }
    }

    /// Metric bounds: P@k, MRR, NDCG all live in [0, 1] for arbitrary
    /// rankings.
    #[test]
    fn metrics_are_bounded(
        ranked in proptest::collection::vec(0usize..50, 0..20),
        relevant in proptest::collection::hash_set(0usize..50, 0..10),
        k in 1usize..15,
    ) {
        for v in [
            precision_at(k, &ranked, &relevant),
            mrr(&ranked, &relevant),
            ndcg_at(k, &ranked, &relevant),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{}", v);
        }
    }

    /// NDCG is monotone under promoting a relevant item one rank up.
    #[test]
    fn ndcg_rewards_promotion(
        mut ranked in proptest::collection::vec(0usize..30, 2..12),
        pick in 1usize..11,
    ) {
        ranked.dedup();
        if ranked.len() < 2 {
            return Ok(());
        }
        let ix = pick.min(ranked.len() - 1);
        let relevant: std::collections::HashSet<usize> = [ranked[ix]].into();
        let before = ndcg_at(10, &ranked, &relevant);
        ranked.swap(ix - 1, ix);
        let after = ndcg_at(10, &ranked, &relevant);
        prop_assert!(after >= before - 1e-12);
    }
}
