//! Base schema generation: one clean, canonical schema per concept.
//!
//! Generated schemas are always snake_case and unperturbed — the
//! [`crate::Perturber`] then derives the family variants organizations
//! would actually publish.

use rand::Rng;
use schemr_model::{DataType, Element, ElementId, ForeignKey, Schema};

use crate::vocab::{Domain, COMMON_ATTRIBUTES};

/// Overall shape of a generated schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaShape {
    /// Flat tables joined by foreign keys (DDL-style).
    Relational,
    /// Nested entities (XSD-style), depth up to 3.
    Tree,
}

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Entity count range (inclusive).
    pub entities: (usize, usize),
    /// Attributes per entity (inclusive range).
    pub attributes: (usize, usize),
    /// Probability that a non-first entity gets a foreign key to an
    /// earlier one.
    pub fk_probability: f64,
    /// Probability a schema is tree-shaped instead of relational.
    pub tree_probability: f64,
    /// Probability each entity gains one common bookkeeping attribute
    /// (`id`, `created`, …).
    pub common_attribute_rate: f64,
    /// Probability an attribute gets a modifier prefix (`max_height`,
    /// `annual_rainfall`). Compound names make the synthetic name space as
    /// diverse as real web-table headers, so that textual collisions
    /// between unrelated schemas stay rare.
    pub compound_rate: f64,
}

/// Modifier prefixes for compound attribute names.
const MODIFIERS: &[&str] = &[
    "max",
    "min",
    "avg",
    "total",
    "initial",
    "final",
    "primary",
    "secondary",
    "annual",
    "monthly",
    "daily",
    "current",
    "previous",
    "estimated",
    "measured",
    "reported",
    "net",
    "gross",
    "adjusted",
    "baseline",
];

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            entities: (1, 5),
            attributes: (3, 9),
            fk_probability: 0.7,
            tree_probability: 0.3,
            common_attribute_rate: 0.6,
            compound_rate: 0.5,
        }
    }
}

/// Plausible data type for an attribute noun.
fn type_for(attr: &str, rng: &mut impl Rng) -> DataType {
    match attr {
        "height" | "weight" | "temperature" | "rainfall" | "salinity" | "ph" | "elevation"
        | "latitude" | "longitude" | "price" | "total" | "discount" | "tax" | "balance"
        | "amount" | "interest" | "rate" | "gpa" | "distance" | "depth" | "turbidity" | "yield"
        | "margin" => DataType::Real,
        "age" | "quantity" | "count" | "stock" | "capacity" | "credit" | "mileage"
        | "abundance" | "score" | "rank" | "pulse" | "dosage" | "level" | "limit" => {
            DataType::Integer
        }
        "created" | "updated" | "admission" | "discharge" | "departure" | "arrival"
        | "birthday" | "onset" | "maturity" => DataType::Date,
        "id" => DataType::Integer,
        _ => {
            // Mostly text, occasionally something else for variety.
            match rng.random_range(0..10) {
                0 => DataType::Integer,
                1 => DataType::Boolean,
                _ => DataType::Text,
            }
        }
    }
}

/// The base-schema generator.
#[derive(Debug, Clone, Default)]
pub struct SchemaGenerator {
    config: GeneratorConfig,
}

impl SchemaGenerator {
    /// Generator with the given config.
    pub fn new(config: GeneratorConfig) -> Self {
        SchemaGenerator { config }
    }

    /// Sample `k` distinct items from `pool` (or all of them if `k` exceeds
    /// the pool).
    fn sample_distinct<'a>(pool: &[&'a str], k: usize, rng: &mut impl Rng) -> Vec<&'a str> {
        let mut indices: Vec<usize> = (0..pool.len()).collect();
        // Partial Fisher-Yates.
        let k = k.min(pool.len());
        for i in 0..k {
            let j = rng.random_range(i..indices.len());
            indices.swap(i, j);
        }
        indices[..k].iter().map(|&i| pool[i]).collect()
    }

    /// Generate one base schema for `domain`, named `title`.
    pub fn generate(&self, title: &str, domain: &Domain, rng: &mut impl Rng) -> Schema {
        let shape = if rng.random_bool(self.config.tree_probability) {
            SchemaShape::Tree
        } else {
            SchemaShape::Relational
        };
        self.generate_shaped(title, domain, shape, rng)
    }

    /// Generate with an explicit shape.
    pub fn generate_shaped(
        &self,
        title: &str,
        domain: &Domain,
        shape: SchemaShape,
        rng: &mut impl Rng,
    ) -> Schema {
        let n_entities = rng.random_range(self.config.entities.0..=self.config.entities.1);
        let entity_names = Self::sample_distinct(domain.entities, n_entities, rng);
        let mut schema = Schema::new(title);
        match shape {
            SchemaShape::Relational => {
                let mut ids: Vec<ElementId> = Vec::new();
                for (i, &ename) in entity_names.iter().enumerate() {
                    let eid = schema.add_root(Element::entity(ename));
                    self.add_attributes(&mut schema, eid, domain, rng);
                    // Foreign key to one earlier entity.
                    if i > 0 && rng.random_bool(self.config.fk_probability) {
                        let target_ix = rng.random_range(0..i);
                        let target = ids[target_ix];
                        let target_name = schema.element(target).name.clone();
                        let fk_attr = schema.add_child(
                            eid,
                            Element::attribute(format!("{target_name}_id"), DataType::Integer),
                        );
                        schema.add_foreign_key(ForeignKey {
                            from_entity: eid,
                            from_attrs: vec![fk_attr],
                            to_entity: target,
                            to_attrs: vec![],
                        });
                    }
                    ids.push(eid);
                }
            }
            SchemaShape::Tree => {
                // Chain/star nesting: first entity is the root; the rest
                // nest beneath a random earlier entity, depth-capped at 3.
                let mut placed: Vec<ElementId> = Vec::new();
                for (i, &ename) in entity_names.iter().enumerate() {
                    let eid = if i == 0 {
                        schema.add_root(Element::entity(ename))
                    } else {
                        // Choose a parent whose depth is < 2 so entities
                        // stay within depth 3 overall.
                        let shallow: Vec<ElementId> = placed
                            .iter()
                            .copied()
                            .filter(|&p| schema.depth(p) < 2)
                            .collect();
                        let parent = shallow[rng.random_range(0..shallow.len())];
                        schema.add_child(parent, Element::entity(ename))
                    };
                    self.add_attributes(&mut schema, eid, domain, rng);
                    placed.push(eid);
                }
            }
        }
        schema
    }

    fn add_attributes(
        &self,
        schema: &mut Schema,
        entity: ElementId,
        domain: &Domain,
        rng: &mut impl Rng,
    ) {
        let n_attrs = rng.random_range(self.config.attributes.0..=self.config.attributes.1);
        for attr in Self::sample_distinct(domain.attributes, n_attrs, rng) {
            let ty = type_for(attr, rng);
            let name = if rng.random_bool(self.config.compound_rate) {
                let m = MODIFIERS[rng.random_range(0..MODIFIERS.len())];
                format!("{m}_{attr}")
            } else {
                attr.to_string()
            };
            schema.add_child(entity, Element::attribute(name, ty));
        }
        if rng.random_bool(self.config.common_attribute_rate) {
            let c = COMMON_ATTRIBUTES[rng.random_range(0..COMMON_ATTRIBUTES.len())];
            // Avoid duplicating a domain attribute already present.
            let present = schema
                .children(entity)
                .iter()
                .any(|&a| schema.element(a).name == c);
            if !present {
                let ty = type_for(c, rng);
                schema.add_child(entity, Element::attribute(c, ty));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::DOMAINS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use schemr_model::validate;

    fn health() -> &'static Domain {
        &DOMAINS[0]
    }

    #[test]
    fn generated_schemas_validate() {
        let g = SchemaGenerator::default();
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..100 {
            let d = &DOMAINS[i % DOMAINS.len()];
            let s = g.generate(&format!("s{i}"), d, &mut rng);
            let errs = validate(&s);
            assert!(errs.is_empty(), "schema {i}: {errs:?}");
            assert!(!s.entities().is_empty());
        }
    }

    #[test]
    fn relational_schemas_have_fk_wiring() {
        let g = SchemaGenerator::new(GeneratorConfig {
            entities: (3, 5),
            fk_probability: 1.0,
            tree_probability: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(12);
        let s = g.generate_shaped("t", health(), SchemaShape::Relational, &mut rng);
        assert!(s.foreign_keys().len() >= 2);
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn tree_schemas_nest_within_depth_three() {
        let g = SchemaGenerator::new(GeneratorConfig {
            entities: (4, 6),
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(13);
        let s = g.generate_shaped("t", health(), SchemaShape::Tree, &mut rng);
        // At least one nested entity, and entity depth ≤ 2 (attributes ≤ 3).
        let nested = s
            .entities()
            .iter()
            .filter(|&&e| s.element(e).parent.is_some())
            .count();
        assert!(nested >= 1);
        for id in s.ids() {
            assert!(s.depth(id) <= 3, "depth of {}", s.path(id));
        }
    }

    #[test]
    fn entity_names_are_distinct_within_a_schema() {
        let g = SchemaGenerator::new(GeneratorConfig {
            entities: (5, 5),
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(14);
        let s = g.generate("t", health(), &mut rng);
        let names: Vec<_> = s
            .entities()
            .iter()
            .map(|&e| s.element(e).name.clone())
            .collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = SchemaGenerator::default();
        let s1 = g.generate("t", health(), &mut StdRng::seed_from_u64(42));
        let s2 = g.generate("t", health(), &mut StdRng::seed_from_u64(42));
        assert_eq!(s1, s2);
    }

    #[test]
    fn attribute_counts_respect_config() {
        let g = SchemaGenerator::new(GeneratorConfig {
            entities: (1, 1),
            attributes: (4, 4),
            common_attribute_rate: 0.0,
            tree_probability: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(15);
        let s = g.generate("t", health(), &mut rng);
        assert_eq!(s.attributes().len(), 4);
    }
}
