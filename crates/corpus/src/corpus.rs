//! Corpus assembly: concept families, noise, and the paper's filter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schemr_model::{Element, ElementKind, Schema, SchemaStats};

use crate::generate::{GeneratorConfig, SchemaGenerator};
use crate::perturb::{PerturbConfig, Perturber};
use crate::vocab::DOMAINS;

/// One corpus schema with its ground-truth labels.
#[derive(Debug, Clone)]
pub struct LabeledSchema {
    /// Display title (becomes the repository/index title).
    pub title: String,
    /// One-line summary.
    pub summary: String,
    /// The schema graph.
    pub schema: Schema,
    /// Domain name.
    pub domain: &'static str,
    /// Ground-truth family: schemas in the same family describe the same
    /// concept and are mutually relevant.
    pub family: usize,
}

/// Corpus generation knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed — same seed, same corpus.
    pub seed: u64,
    /// Approximate number of schemas to produce (before filtering).
    pub target_size: usize,
    /// Family size range (members per concept), inclusive.
    pub family_size: (usize, usize),
    /// Perturbation mix applied to family members.
    pub perturb: PerturbConfig,
    /// Base-schema generator config.
    pub generator: GeneratorConfig,
    /// Probability a family member drops each attribute (schema churn).
    pub attribute_drop: f64,
    /// Fraction of extra "raw web table" noise schemas: digit-ridden
    /// names, singletons, and trivial tables — what the paper's filter
    /// removes.
    pub raw_noise: f64,
    /// Fraction of families that also emit a *scattered twin*: a schema
    /// carrying the family's vocabulary but strewn across unrelated
    /// entities with no foreign keys. These are the adversarial
    /// distractors the tightness-of-fit measure exists to demote — a
    /// hospital-wide grab-bag schema mentions patient, height, and gender
    /// without those columns belonging together.
    pub scatter_noise: f64,
}

impl CorpusConfig {
    /// A small config for tests.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            seed,
            target_size: 100,
            ..Self::default()
        }
    }

    /// A config sized like the paper's repository (30k schemas).
    pub fn paper_scale(seed: u64) -> Self {
        CorpusConfig {
            seed,
            target_size: 30_000,
            ..Self::default()
        }
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0,
            target_size: 1_000,
            family_size: (2, 6),
            perturb: PerturbConfig::standard(),
            generator: GeneratorConfig::default(),
            attribute_drop: 0.1,
            raw_noise: 0.0,
            scatter_noise: 0.25,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The schemas, in generation order. Indices are the corpus-local ids
    /// the workload's ground truth uses.
    pub schemas: Vec<LabeledSchema>,
}

impl Corpus {
    /// Generate a corpus from a config. Deterministic in `config.seed`.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let generator = SchemaGenerator::new(config.generator);
        let perturber = Perturber::new(config.perturb);
        let mut schemas = Vec::with_capacity(config.target_size);
        let mut family = 0usize;
        while schemas.len() < config.target_size {
            let domain = &DOMAINS[family % DOMAINS.len()];
            let base = generator.generate(&format!("concept{family}"), domain, &mut rng);
            let members = rng.random_range(config.family_size.0..=config.family_size.1);
            for v in 0..members {
                if schemas.len() >= config.target_size {
                    break;
                }
                let schema = derive_member(&base, &perturber, config.attribute_drop, &mut rng);
                let head_entity = schema
                    .entities()
                    .first()
                    .map(|&e| schema.element(e).name.clone())
                    .unwrap_or_else(|| "misc".to_string());
                schemas.push(LabeledSchema {
                    title: format!("{}_{}_{}", domain.name, head_entity, v),
                    summary: format!("{} data about {}", domain.name, head_entity),
                    schema,
                    domain: domain.name,
                    family,
                });
            }
            // Scattered twin: same vocabulary, destroyed structure, NOT a
            // family member (it is exactly what tightness-of-fit should
            // rank below the real members).
            if schemas.len() < config.target_size && rng.random_bool(config.scatter_noise) {
                let schema = scatter_twin(&base, domain, family, &mut rng);
                schemas.push(LabeledSchema {
                    title: format!("{}_scattered_{}", domain.name, family),
                    summary: format!("{} grab-bag export", domain.name),
                    schema,
                    domain: domain.name,
                    family: usize::MAX,
                });
            }
            family += 1;
        }
        // Optional raw noise on top.
        let n_noise = (config.target_size as f64 * config.raw_noise) as usize;
        for i in 0..n_noise {
            let schema = raw_noise_schema(i, &mut rng);
            schemas.push(LabeledSchema {
                title: format!("webtable_{i}"),
                summary: String::new(),
                schema,
                domain: "noise",
                family: usize::MAX, // singletons: no family
            });
        }
        Corpus { schemas }
    }

    /// Number of schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Indices of the members of `family`.
    pub fn family_members(&self, family: usize) -> Vec<usize> {
        self.schemas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.family == family)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of distinct families (noise excluded).
    pub fn family_count(&self) -> usize {
        self.schemas
            .iter()
            .filter(|s| s.family != usize::MAX)
            .map(|s| s.family)
            .max()
            .map_or(0, |m| m + 1)
    }
}

/// Derive one family member from the base concept: rename every element
/// through the perturber and drop some attributes.
fn derive_member(
    base: &Schema,
    perturber: &Perturber,
    attribute_drop: f64,
    rng: &mut impl Rng,
) -> Schema {
    let mut out = Schema::new(base.name.clone());
    let mut id_map: Vec<Option<schemr_model::ElementId>> = Vec::with_capacity(base.len());
    for id in base.ids() {
        let el = base.element(id);
        // Attributes may be dropped; keep FK attrs so FK edges survive.
        let is_fk_attr = base
            .foreign_keys()
            .iter()
            .any(|fk| fk.from_attrs.contains(&id) || fk.to_attrs.contains(&id));
        if el.kind == ElementKind::Attribute && !is_fk_attr && rng.random_bool(attribute_drop) {
            id_map.push(None);
            continue;
        }
        let new_name = perturber.perturb_name(&el.name, rng);
        let mut new_el = Element {
            name: new_name,
            kind: el.kind,
            data_type: el.data_type,
            parent: None,
            doc: el.doc.clone(),
        };
        let new_id = match el.parent.and_then(|p| id_map[p.index()]) {
            Some(parent) => out.add_child(parent, new_el),
            None => {
                new_el.parent = None;
                out.add_root(new_el)
            }
        };
        id_map.push(Some(new_id));
    }
    for fk in base.foreign_keys() {
        let (Some(from_entity), Some(to_entity)) =
            (id_map[fk.from_entity.index()], id_map[fk.to_entity.index()])
        else {
            continue;
        };
        let map_all = |attrs: &[schemr_model::ElementId]| -> Option<Vec<schemr_model::ElementId>> {
            attrs.iter().map(|a| id_map[a.index()]).collect()
        };
        let (Some(from_attrs), Some(to_attrs)) = (map_all(&fk.from_attrs), map_all(&fk.to_attrs))
        else {
            continue;
        };
        out.add_foreign_key(schemr_model::ForeignKey {
            from_entity,
            from_attrs,
            to_entity,
            to_attrs,
        });
    }
    out
}

/// The scattered twin of a base schema: every attribute survives (names
/// intact, so it is textually as good a hit as any family member) but the
/// attributes are strewn across unrelated entities named after *other*
/// domain nouns, with no foreign keys connecting them.
fn scatter_twin(
    base: &Schema,
    domain: &crate::vocab::Domain,
    family: usize,
    rng: &mut impl Rng,
) -> Schema {
    let mut out = Schema::new(format!("scattered{family}"));
    let attrs: Vec<&schemr_model::Element> = base
        .ids()
        .map(|id| base.element(id))
        .filter(|e| e.kind == ElementKind::Attribute)
        .collect();
    let n_entities = (attrs.len() / 2).clamp(2, 6);
    let mut entity_ids = Vec::with_capacity(n_entities);
    for i in 0..n_entities {
        // Entity names drawn from the tail of the domain's noun pool so
        // they rarely coincide with the base schema's entities.
        let name = domain.entities[(domain.entities.len() - 1 - i) % domain.entities.len()];
        entity_ids.push(out.add_root(Element::entity(format!("{name}_export"))));
    }
    for attr in attrs {
        let host = entity_ids[rng.random_range(0..entity_ids.len())];
        out.add_child(host, Element::attribute(attr.name.clone(), attr.data_type));
    }
    out
}

/// A junk "raw web table": the kind of thing the paper's filter removes.
fn raw_noise_schema(i: usize, rng: &mut impl Rng) -> Schema {
    let mut s = Schema::new(format!("webtable_{i}"));
    // Entity names stay alphabetic so each noise class trips exactly the
    // intended filter rule (the junk lives in the *column* labels).
    let root = s.add_root(Element::entity("sheet"));
    match rng.random_range(0..3) {
        0 => {
            // Non-alphabetical column labels.
            for j in 0..rng.random_range(4..8) {
                s.add_child(
                    root,
                    Element::attribute(format!("col#{j}!"), schemr_model::DataType::Unknown),
                );
            }
        }
        1 => {
            // Trivial: ≤ 3 elements total.
            s.add_child(
                root,
                Element::attribute("x", schemr_model::DataType::Unknown),
            );
        }
        _ => {
            // Numbers-as-headers.
            for j in 0..rng.random_range(4..8) {
                s.add_child(
                    root,
                    Element::attribute(format!("{}", 1990 + j), schemr_model::DataType::Unknown),
                );
            }
        }
    }
    s
}

/// The paper's corpus filter: "removing schemas containing non-alphabetical
/// characters, schemas that only appeared once on the web, and trivial
/// schemas with three or less elements".
///
/// Interpretation notes (documented substitutions):
/// * *non-alphabetical characters* — element names containing characters
///   other than letters and the delimiter set `_- ` (digits and symbols
///   disqualify the schema);
/// * *appeared once* — in our synthetic setting, a schema whose family has
///   a single member (noise schemas are all singletons);
/// * *trivial* — total element count ≤ 3, via [`SchemaStats::is_trivial`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CorpusFilter;

impl CorpusFilter {
    /// Does a single element name pass the alphabetical rule?
    fn name_is_alphabetical(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_alphabetic() || matches!(c, '_' | '-' | ' '))
    }

    /// Why a schema would be rejected, if at all.
    pub fn rejection_reason(corpus: &Corpus, ix: usize) -> Option<&'static str> {
        let labeled = &corpus.schemas[ix];
        let non_alpha = labeled
            .schema
            .ids()
            .any(|id| !Self::name_is_alphabetical(&labeled.schema.element(id).name));
        if non_alpha {
            return Some("non-alphabetical");
        }
        if SchemaStats::of(&labeled.schema).is_trivial() {
            return Some("trivial");
        }
        let singleton =
            labeled.family == usize::MAX || corpus.family_members(labeled.family).len() <= 1;
        if singleton {
            return Some("singleton");
        }
        None
    }

    /// Apply the filter, returning the surviving corpus and counts of
    /// removals per rule `(non_alphabetical, singleton, trivial)`.
    pub fn apply(corpus: &Corpus) -> (Corpus, (usize, usize, usize)) {
        let mut kept = Vec::new();
        let mut counts = (0usize, 0usize, 0usize);
        for ix in 0..corpus.len() {
            match Self::rejection_reason(corpus, ix) {
                None => kept.push(corpus.schemas[ix].clone()),
                Some("non-alphabetical") => counts.0 += 1,
                Some("singleton") => counts.1 += 1,
                Some("trivial") => counts.2 += 1,
                Some(_) => unreachable!(),
            }
        }
        (Corpus { schemas: kept }, counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::validate;

    #[test]
    fn corpus_hits_target_size_and_validates() {
        let c = Corpus::generate(&CorpusConfig::small(1));
        assert_eq!(c.len(), 100);
        for (i, s) in c.schemas.iter().enumerate() {
            assert!(validate(&s.schema).is_empty(), "schema {i} invalid");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::generate(&CorpusConfig::small(7));
        let b = Corpus::generate(&CorpusConfig::small(7));
        for (x, y) in a.schemas.iter().zip(&b.schemas) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.schema, y.schema);
            assert_eq!(x.family, y.family);
        }
    }

    #[test]
    fn families_have_multiple_members() {
        let c = Corpus::generate(&CorpusConfig::small(2));
        let fam0 = c.family_members(0);
        assert!(fam0.len() >= 2, "family 0 has {} members", fam0.len());
        assert!(c.family_count() > 10);
    }

    #[test]
    fn family_members_share_structure_but_not_exact_names() {
        let c = Corpus::generate(&CorpusConfig::small(3));
        let fam = c.family_members(0);
        let a = &c.schemas[fam[0]].schema;
        let b = &c.schemas[fam[1]].schema;
        // Same entity count (attribute churn only drops attributes).
        assert_eq!(a.entities().len(), b.entities().len());
        // Some names should differ across members (perturbation fired
        // somewhere in the family).
        let differs = fam.windows(2).any(|w| {
            let x = &c.schemas[w[0]].schema;
            let y = &c.schemas[w[1]].schema;
            x.ids()
                .zip(y.ids())
                .any(|(i, j)| x.get(i).map(|e| &e.name) != y.get(j).map(|e| &e.name))
        });
        assert!(differs);
    }

    #[test]
    fn domains_cycle_across_families() {
        let c = Corpus::generate(&CorpusConfig::small(4));
        let domains: std::collections::HashSet<_> = c.schemas.iter().map(|s| s.domain).collect();
        assert!(domains.len() >= 4, "{domains:?}");
    }

    #[test]
    fn filter_removes_each_noise_class() {
        let config = CorpusConfig {
            raw_noise: 0.5,
            ..CorpusConfig::small(5)
        };
        let c = Corpus::generate(&config);
        let before = c.len();
        let (filtered, (non_alpha, singleton, trivial)) = CorpusFilter::apply(&c);
        assert!(filtered.len() < before);
        assert!(non_alpha > 0, "non-alpha removals");
        assert!(singleton + trivial > 0, "singleton/trivial removals");
        // Survivors all pass the rules.
        for ix in 0..filtered.len() {
            assert_eq!(CorpusFilter::rejection_reason(&filtered, ix), None);
        }
    }

    #[test]
    fn clean_families_survive_the_filter() {
        let c = Corpus::generate(&CorpusConfig {
            perturb: PerturbConfig::none(),
            raw_noise: 0.0,
            ..CorpusConfig::small(6)
        });
        let (filtered, _) = CorpusFilter::apply(&c);
        // Base names are alphabetic snake_case and families are ≥2, so only
        // occasionally-trivial schemas may drop.
        assert!(filtered.len() as f64 > 0.8 * c.len() as f64);
    }

    #[test]
    fn paper_scale_config_targets_thirty_thousand() {
        assert_eq!(CorpusConfig::paper_scale(0).target_size, 30_000);
    }
}
