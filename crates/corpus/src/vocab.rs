//! Domain vocabularies for the synthetic corpus.
//!
//! Each domain supplies entity nouns and attribute nouns drawn from the
//! kinds of data the paper's motivating organizations publish (a rural
//! health system, the Nature Conservancy's environmental monitoring, plus
//! the commerce/civic domains that dominate web tables).

/// A topical domain with its vocabulary pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    /// Domain name (used in schema titles and experiment reports).
    pub name: &'static str,
    /// Entity (table / complex-type) nouns.
    pub entities: &'static [&'static str],
    /// Attribute (column) nouns.
    pub attributes: &'static [&'static str],
}

/// Attributes common to every domain (keys, audit columns, …).
pub const COMMON_ATTRIBUTES: &[&str] = &[
    "id",
    "name",
    "code",
    "status",
    "type",
    "created",
    "updated",
    "notes",
    "description",
    "category",
    "source",
    "count",
    "value",
];

/// Synonym classes: names in one class denote the same concept. The
/// perturber swaps within a class; the ground truth treats them as
/// equivalent.
pub const SYNONYMS: &[&[&str]] = &[
    &["patient", "person", "subject", "client"],
    &["doctor", "physician", "clinician", "provider"],
    &["gender", "sex"],
    &["height", "stature"],
    &["weight", "mass"],
    &["diagnosis", "condition", "finding"],
    &["medication", "drug", "prescription"],
    &["visit", "encounter", "appointment"],
    &["location", "site", "place"],
    &["species", "organism", "taxon"],
    &["observation", "sighting", "record"],
    &["order", "purchase"],
    &["customer", "buyer", "client"],
    &["price", "cost", "amount"],
    &["quantity", "count", "number"],
    &["employee", "staff", "worker"],
    &["salary", "wage", "pay"],
    &["student", "pupil", "learner"],
    &["grade", "score", "mark"],
    &["vehicle", "car", "automobile"],
    &["address", "residence"],
    &["phone", "telephone"],
    &["email", "mail"],
    &["birthday", "birthdate", "dob"],
];

/// The built-in domains.
pub const DOMAINS: &[Domain] = &[
    Domain {
        name: "health",
        entities: &[
            "patient",
            "doctor",
            "nurse",
            "visit",
            "case",
            "diagnosis",
            "medication",
            "ward",
            "clinic",
            "lab",
            "specimen",
            "treatment",
            "immunization",
            "referral",
        ],
        attributes: &[
            "height",
            "weight",
            "gender",
            "age",
            "blood_pressure",
            "temperature",
            "pulse",
            "symptom",
            "diagnosis",
            "medication",
            "dosage",
            "allergy",
            "birthday",
            "admission",
            "discharge",
            "insurance",
            "provider",
            "ward",
            "room",
            "severity",
            "onset",
        ],
    },
    Domain {
        name: "conservation",
        entities: &[
            "species",
            "habitat",
            "observation",
            "site",
            "survey",
            "population",
            "sample",
            "station",
            "watershed",
            "preserve",
            "transect",
            "sensor",
        ],
        attributes: &[
            "species",
            "genus",
            "family",
            "abundance",
            "latitude",
            "longitude",
            "elevation",
            "temperature",
            "rainfall",
            "salinity",
            "ph",
            "canopy",
            "observer",
            "season",
            "threat",
            "protection",
            "area",
            "depth",
            "turbidity",
        ],
    },
    Domain {
        name: "retail",
        entities: &[
            "order",
            "customer",
            "product",
            "invoice",
            "shipment",
            "supplier",
            "store",
            "inventory",
            "payment",
            "refund",
            "cart",
            "promotion",
        ],
        attributes: &[
            "price",
            "quantity",
            "total",
            "discount",
            "tax",
            "sku",
            "brand",
            "warehouse",
            "shipping",
            "billing",
            "currency",
            "weight",
            "stock",
            "margin",
            "rating",
        ],
    },
    Domain {
        name: "education",
        entities: &[
            "student",
            "course",
            "teacher",
            "enrollment",
            "school",
            "classroom",
            "assignment",
            "exam",
            "semester",
            "department",
            "scholarship",
        ],
        attributes: &[
            "grade",
            "credit",
            "major",
            "gpa",
            "attendance",
            "tuition",
            "level",
            "subject",
            "score",
            "rank",
            "advisor",
            "term",
            "capacity",
        ],
    },
    Domain {
        name: "finance",
        entities: &[
            "account",
            "transaction",
            "loan",
            "branch",
            "portfolio",
            "security",
            "statement",
            "transfer",
            "deposit",
            "mortgage",
        ],
        attributes: &[
            "balance",
            "amount",
            "interest",
            "rate",
            "principal",
            "maturity",
            "currency",
            "fee",
            "limit",
            "risk",
            "yield",
            "term",
            "collateral",
        ],
    },
    Domain {
        name: "transport",
        entities: &[
            "vehicle", "route", "driver", "trip", "stop", "station", "fare", "schedule", "depot",
            "fleet",
        ],
        attributes: &[
            "origin",
            "destination",
            "distance",
            "duration",
            "capacity",
            "plate",
            "model",
            "fuel",
            "mileage",
            "departure",
            "arrival",
            "delay",
            "zone",
        ],
    },
];

/// Find a synonym class containing `word` (lowercase).
pub fn synonym_class(word: &str) -> Option<&'static [&'static str]> {
    SYNONYMS.iter().copied().find(|class| class.contains(&word))
}

/// Are two lowercase words synonyms (or equal)?
pub fn are_synonyms(a: &str, b: &str) -> bool {
    a == b || synonym_class(a).is_some_and(|class| class.contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_are_nonempty_and_distinct() {
        assert!(DOMAINS.len() >= 5);
        let names: std::collections::HashSet<_> = DOMAINS.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), DOMAINS.len());
        for d in DOMAINS {
            assert!(d.entities.len() >= 8, "{} entities", d.name);
            assert!(d.attributes.len() >= 10, "{} attributes", d.name);
        }
    }

    #[test]
    fn vocabulary_is_lowercase_alphabetic() {
        for d in DOMAINS {
            for w in d.entities.iter().chain(d.attributes) {
                assert!(
                    w.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                    "{w} in {}",
                    d.name
                );
            }
        }
    }

    #[test]
    fn synonym_lookup() {
        assert!(are_synonyms("gender", "sex"));
        assert!(are_synonyms("sex", "gender"));
        assert!(are_synonyms("patient", "patient"));
        assert!(!are_synonyms("patient", "invoice"));
        assert!(synonym_class("doctor").unwrap().contains(&"physician"));
        assert!(synonym_class("xyzzy").is_none());
    }

    #[test]
    fn synonym_classes_have_at_least_two_members() {
        for class in SYNONYMS {
            assert!(class.len() >= 2, "{class:?}");
        }
    }
}
