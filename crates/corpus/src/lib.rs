//! # schemr-corpus
//!
//! A deterministic synthetic schema corpus — the reproduction's substitute
//! for the paper's evaluation repository ("over 30,000 public schemas …
//! came from a collection of 10 million HTML tables, and were filtered by
//! removing schemas containing non-alphabetical characters, schemas that
//! only appeared once on the web, and trivial schemas with three or less
//! elements").
//!
//! The WebTables collection is proprietary, so this crate generates a
//! corpus that reproduces the properties the search algorithm is sensitive
//! to:
//!
//! * **domain structure** — schemas cluster into topical domains (health,
//!   conservation, retail, …) with shared vocabulary ([`vocab`]),
//! * **families** — each *concept* spawns a family of related schemas that
//!   different organizations would plausibly publish, derived from a base
//!   schema by realistic perturbations ([`perturb`]): abbreviation,
//!   grammatical variation, delimiter-style changes, synonym substitution,
//!   attribute churn — exactly the variation the paper's name matcher
//!   targets,
//! * **shape diversity** — flat relational schemas with foreign keys and
//!   nested tree schemas, with heavy-tailed size distributions
//!   ([`generate`]),
//! * **ground truth** — a query derived from one family member is relevant
//!   to the whole family, enabling the quantitative ranking evaluation
//!   (P@k, MRR, NDCG in [`metrics`]) the demo paper never ran,
//! * **the paper's filter** — [`corpus::CorpusFilter`] applies the three
//!   published filtering rules.
//!
//! Everything is seeded and deterministic: the same seed always produces
//! the same corpus, queries, and ground truth.

pub mod corpus;
pub mod generate;
pub mod metrics;
pub mod perturb;
pub mod vocab;
pub mod workload;

pub use corpus::{Corpus, CorpusConfig, CorpusFilter, LabeledSchema};
pub use generate::{GeneratorConfig, SchemaGenerator, SchemaShape};
pub use metrics::{average_precision, mrr, ndcg_at, precision_at, RankingMetrics};
pub use perturb::{NameStyle, PerturbConfig, Perturber};
pub use workload::{GeneratedQuery, QueryKind, Workload, WorkloadConfig};
