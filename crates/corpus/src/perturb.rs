//! The perturbation model: how one concept's schema varies across the
//! organizations that publish it.
//!
//! The paper's name matcher exists because real schemas disagree on
//! "abbreviated terms, alternate grammatical forms, and delimiter
//! characters". The perturber applies exactly those three classes (plus
//! synonym substitution, which motivates the ensemble), each independently
//! switchable so experiment E3 can sweep one class at a time.

use rand::Rng;

use crate::vocab::synonym_class;

/// Naming convention used when re-joining a multi-word name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// `patient_height`
    Snake,
    /// `patientHeight`
    Camel,
    /// `PatientHeight`
    Pascal,
    /// `patient height`
    Space,
    /// `patient-height`
    Kebab,
    /// `patientheight`
    Fused,
}

impl NameStyle {
    /// All styles.
    pub const ALL: [NameStyle; 6] = [
        NameStyle::Snake,
        NameStyle::Camel,
        NameStyle::Pascal,
        NameStyle::Space,
        NameStyle::Kebab,
        NameStyle::Fused,
    ];

    /// Join lowercase words in this style.
    pub fn join(self, words: &[String]) -> String {
        let capitalize = |w: &str| -> String {
            let mut cs = w.chars();
            match cs.next() {
                Some(first) => first.to_uppercase().chain(cs).collect(),
                None => String::new(),
            }
        };
        match self {
            NameStyle::Snake => words.join("_"),
            NameStyle::Space => words.join(" "),
            NameStyle::Kebab => words.join("-"),
            NameStyle::Fused => words.concat(),
            NameStyle::Camel => {
                let mut out = String::new();
                for (i, w) in words.iter().enumerate() {
                    if i == 0 {
                        out.push_str(w);
                    } else {
                        out.push_str(&capitalize(w));
                    }
                }
                out
            }
            NameStyle::Pascal => words.iter().map(|w| capitalize(w)).collect(),
        }
    }
}

/// Probabilities of each perturbation class (each in `[0, 1]`).
#[derive(Debug, Clone, Copy)]
pub struct PerturbConfig {
    /// Truncate a word to a short prefix (`description` → `descr`/`desc`).
    pub abbreviation: f64,
    /// Grammatical variation (pluralization / unpluralization).
    pub morphology: f64,
    /// Re-join the name in a different [`NameStyle`].
    pub delimiter: f64,
    /// Replace a word with a synonym-class sibling.
    pub synonym: f64,
}

impl PerturbConfig {
    /// No perturbation at all.
    pub fn none() -> Self {
        PerturbConfig {
            abbreviation: 0.0,
            morphology: 0.0,
            delimiter: 0.0,
            synonym: 0.0,
        }
    }

    /// The default mix used for corpus families.
    pub fn standard() -> Self {
        PerturbConfig {
            abbreviation: 0.25,
            morphology: 0.2,
            delimiter: 0.6,
            synonym: 0.15,
        }
    }

    /// Only one class active at rate `p` — experiment E3's sweep points.
    pub fn only_abbreviation(p: f64) -> Self {
        PerturbConfig {
            abbreviation: p,
            ..Self::none()
        }
    }

    /// Only morphology active at rate `p`.
    pub fn only_morphology(p: f64) -> Self {
        PerturbConfig {
            morphology: p,
            ..Self::none()
        }
    }

    /// Only delimiter changes active at rate `p`.
    pub fn only_delimiter(p: f64) -> Self {
        PerturbConfig {
            delimiter: p,
            ..Self::none()
        }
    }
}

impl Default for PerturbConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Applies the perturbation model to names.
#[derive(Debug, Clone)]
pub struct Perturber {
    config: PerturbConfig,
}

impl Perturber {
    /// A perturber with the given class probabilities.
    pub fn new(config: PerturbConfig) -> Self {
        Perturber { config }
    }

    /// Abbreviate one lowercase word: keep a 2–4 character prefix (never
    /// longer than the word itself).
    pub fn abbreviate(word: &str, rng: &mut impl Rng) -> String {
        let chars: Vec<char> = word.chars().collect();
        if chars.len() <= 3 {
            return word.to_string();
        }
        let keep = rng.random_range(2..=4.min(chars.len() - 1));
        chars[..keep].iter().collect()
    }

    /// Simple English pluralization toggles: `s`/`es`/`ies` endings.
    pub fn toggle_plural(word: &str) -> String {
        if let Some(stem) = word.strip_suffix("ies") {
            format!("{stem}y")
        } else if let Some(stem) = word.strip_suffix("ses") {
            format!("{stem}s")
        } else if let Some(stem) = word.strip_suffix('s') {
            stem.to_string()
        } else if word.ends_with('y') && word.len() > 2 {
            format!("{}ies", &word[..word.len() - 1])
        } else if word.ends_with('s') || word.ends_with('x') || word.ends_with("ch") {
            format!("{word}es")
        } else {
            format!("{word}s")
        }
    }

    /// Perturb a name given as lowercase words; returns the re-joined name.
    pub fn perturb_words(&self, words: &[&str], rng: &mut impl Rng) -> String {
        let mut out: Vec<String> = Vec::with_capacity(words.len());
        for w in words {
            let mut w = w.to_string();
            if rng.random_bool(self.config.synonym) {
                if let Some(class) = synonym_class(&w) {
                    let pick = class[rng.random_range(0..class.len())];
                    w = pick.to_string();
                }
            }
            if rng.random_bool(self.config.morphology) {
                w = Self::toggle_plural(&w);
            }
            if rng.random_bool(self.config.abbreviation) {
                w = Self::abbreviate(&w, rng);
            }
            out.push(w);
        }
        let style = if rng.random_bool(self.config.delimiter) {
            NameStyle::ALL[rng.random_range(0..NameStyle::ALL.len())]
        } else {
            NameStyle::Snake
        };
        style.join(&out)
    }

    /// Perturb a snake_case name.
    pub fn perturb_name(&self, name: &str, rng: &mut impl Rng) -> String {
        let words: Vec<&str> = name.split('_').filter(|w| !w.is_empty()).collect();
        if words.is_empty() {
            return name.to_string();
        }
        self.perturb_words(&words, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn name_styles_join_as_documented() {
        let words = vec!["patient".to_string(), "height".to_string()];
        assert_eq!(NameStyle::Snake.join(&words), "patient_height");
        assert_eq!(NameStyle::Camel.join(&words), "patientHeight");
        assert_eq!(NameStyle::Pascal.join(&words), "PatientHeight");
        assert_eq!(NameStyle::Space.join(&words), "patient height");
        assert_eq!(NameStyle::Kebab.join(&words), "patient-height");
        assert_eq!(NameStyle::Fused.join(&words), "patientheight");
    }

    #[test]
    fn abbreviation_keeps_a_proper_prefix() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let abbr = Perturber::abbreviate("description", &mut rng);
            assert!(abbr.len() >= 2 && abbr.len() <= 4);
            assert!("description".starts_with(&abbr));
        }
        assert_eq!(Perturber::abbreviate("id", &mut rng), "id");
    }

    #[test]
    fn plural_toggle_round_trips_common_shapes() {
        assert_eq!(Perturber::toggle_plural("patient"), "patients");
        assert_eq!(Perturber::toggle_plural("patients"), "patient");
        assert_eq!(Perturber::toggle_plural("category"), "categories");
        assert_eq!(Perturber::toggle_plural("categories"), "category");
        // "…ses" endings strip to a single trailing "s" (diagnoses →
        // diagnos); the stemmer conflates the rest downstream.
        assert_eq!(Perturber::toggle_plural("diagnoses"), "diagnos");
    }

    #[test]
    fn zero_config_is_identity_on_snake_names() {
        let p = Perturber::new(PerturbConfig::none());
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(p.perturb_name("patient_height", &mut rng), "patient_height");
    }

    #[test]
    fn delimiter_only_preserves_the_words() {
        let p = Perturber::new(PerturbConfig::only_delimiter(1.0));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let name = p.perturb_name("patient_height", &mut rng);
            let folded: String = name
                .chars()
                .filter(|c| c.is_ascii_alphabetic())
                .collect::<String>()
                .to_lowercase();
            assert_eq!(folded, "patientheight", "{name}");
        }
    }

    #[test]
    fn synonym_substitution_stays_in_class() {
        let p = Perturber::new(PerturbConfig {
            synonym: 1.0,
            ..PerturbConfig::none()
        });
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen_other = false;
        for _ in 0..40 {
            let name = p.perturb_name("gender", &mut rng);
            assert!(crate::vocab::are_synonyms("gender", &name), "{name}");
            if name != "gender" {
                seen_other = true;
            }
        }
        assert!(seen_other, "substitution should actually fire");
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        let p = Perturber::new(PerturbConfig::standard());
        let run = |seed: u64| -> Vec<String> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| p.perturb_name("patient_height", &mut rng))
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
