//! Query workload generation with ground truth.
//!
//! Each query is derived from one *target* corpus schema; all members of
//! the target's family are relevant. Query terms are re-perturbed copies of
//! the target's element names — the searcher never sees the exact indexed
//! strings, which is what makes the evaluation honest.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use schemr_model::{ElementKind, Schema};

use crate::corpus::Corpus;
use crate::perturb::{PerturbConfig, Perturber};

/// The form of a generated query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Free keywords only (the paper's "patient, height, gender,
    /// diagnosis" scenario).
    Keywords,
    /// A schema fragment only (search by example).
    Fragment,
    /// Fragment plus extra keywords (Figure 1's combined query).
    Mixed,
}

/// One generated query with its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// Query form.
    pub kind: QueryKind,
    /// Keyword terms (empty for pure fragment queries).
    pub keywords: Vec<String>,
    /// Schema fragment (None for pure keyword queries).
    pub fragment: Option<Schema>,
    /// Corpus indices of relevant schemas (the target's family).
    pub relevant: Vec<usize>,
    /// The family the query targets.
    pub family: usize,
}

/// Workload knobs.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of queries.
    pub queries: usize,
    /// Keywords per keyword query (inclusive range).
    pub keywords: (usize, usize),
    /// Perturbation applied to query terms relative to the target schema.
    pub perturb: PerturbConfig,
    /// Mix of query kinds as (keywords, fragment, mixed) weights.
    pub kind_mix: (f64, f64, f64),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 1,
            queries: 100,
            keywords: (3, 5),
            perturb: PerturbConfig {
                // Queries are typed by humans: moderate abbreviation and
                // morphology, no delimiter games (keywords are single
                // words), no synonym swaps beyond what families already
                // have.
                abbreviation: 0.15,
                morphology: 0.15,
                delimiter: 0.0,
                synonym: 0.1,
            },
            kind_mix: (0.5, 0.25, 0.25),
        }
    }
}

/// A generated set of queries over a corpus.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<GeneratedQuery>,
}

impl Workload {
    /// Generate a workload for `corpus`. Deterministic in `config.seed`.
    ///
    /// Only families with at least two members are targeted (so that a
    /// query always has at least one relevant schema besides chance), and
    /// targets rotate across families.
    pub fn generate(corpus: &Corpus, config: &WorkloadConfig) -> Workload {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let perturber = Perturber::new(config.perturb);
        let eligible: Vec<usize> = (0..corpus.family_count())
            .filter(|&f| corpus.family_members(f).len() >= 2)
            .collect();
        assert!(!eligible.is_empty(), "corpus has no multi-member families");
        let mut queries = Vec::with_capacity(config.queries);
        for qi in 0..config.queries {
            let family = eligible[qi % eligible.len()];
            let members = corpus.family_members(family);
            let target_ix = members[rng.random_range(0..members.len())];
            let target = &corpus.schemas[target_ix].schema;
            let kind = pick_kind(config.kind_mix, &mut rng);
            let (keywords, fragment) = match kind {
                QueryKind::Keywords => (
                    sample_keywords(target, config.keywords, &perturber, &mut rng),
                    None,
                ),
                QueryKind::Fragment => (
                    Vec::new(),
                    Some(sample_fragment(target, &perturber, &mut rng)),
                ),
                QueryKind::Mixed => (
                    sample_keywords(target, (1, 2), &perturber, &mut rng),
                    Some(sample_fragment(target, &perturber, &mut rng)),
                ),
            };
            queries.push(GeneratedQuery {
                kind,
                keywords,
                fragment,
                relevant: members,
                family,
            });
        }
        Workload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

fn pick_kind(mix: (f64, f64, f64), rng: &mut impl Rng) -> QueryKind {
    let total = mix.0 + mix.1 + mix.2;
    let x = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
    if x < mix.0 {
        QueryKind::Keywords
    } else if x < mix.0 + mix.1 {
        QueryKind::Fragment
    } else {
        QueryKind::Mixed
    }
}

/// Sample keyword terms from ONE entity of the target (perturbed).
///
/// The paper's designer is modeling a single new table ("patient, height,
/// gender, diagnosis"), so query vocabulary concentrates in one entity —
/// the assumption behind the tightness-of-fit measure.
fn sample_keywords(
    target: &Schema,
    range: (usize, usize),
    perturber: &Perturber,
    rng: &mut impl Rng,
) -> Vec<String> {
    let entities = target.entities();
    let pool: Vec<String> = if entities.is_empty() {
        target
            .attributes()
            .iter()
            .map(|&a| target.element(a).name.clone())
            .collect()
    } else {
        let entity = entities[rng.random_range(0..entities.len())];
        let mut names: Vec<String> = target
            .children(entity)
            .into_iter()
            .filter(|&c| target.element(c).kind == ElementKind::Attribute)
            .map(|a| target.element(a).name.clone())
            .collect();
        // The entity name itself is part of how a designer describes the
        // table.
        names.push(target.element(entity).name.clone());
        names
    };
    if pool.is_empty() {
        return vec![target.name.clone()];
    }
    let k = rng.random_range(range.0..=range.1).min(pool.len()).max(1);
    let mut indices: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.random_range(i..indices.len());
        indices.swap(i, j);
    }
    indices[..k]
        .iter()
        .map(|&i| perturber.perturb_name(&pool[i], rng))
        .collect()
}

/// Sample a one-entity fragment: a random entity with a subset of its
/// attributes, all names perturbed.
fn sample_fragment(target: &Schema, perturber: &Perturber, rng: &mut impl Rng) -> Schema {
    let entities = target.entities();
    let entity = entities[rng.random_range(0..entities.len())];
    let mut frag = Schema::new("fragment");
    let root_name = perturber.perturb_name(&target.element(entity).name, rng);
    let root = frag.add_root(schemr_model::Element::entity(root_name));
    let attrs: Vec<_> = target
        .children(entity)
        .into_iter()
        .filter(|&c| target.element(c).kind == ElementKind::Attribute)
        .collect();
    let keep = attrs.len().max(1).div_ceil(2); // about half, at least one
    let mut indices: Vec<usize> = (0..attrs.len()).collect();
    for i in 0..keep.min(attrs.len()) {
        let j = rng.random_range(i..indices.len());
        indices.swap(i, j);
    }
    for &ix in indices.iter().take(keep.min(attrs.len())) {
        let el = target.element(attrs[ix]);
        frag.add_child(
            root,
            schemr_model::Element::attribute(perturber.perturb_name(&el.name, rng), el.data_type),
        );
    }
    frag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use schemr_model::validate;

    fn corpus() -> Corpus {
        Corpus::generate(&CorpusConfig::small(1))
    }

    #[test]
    fn workload_has_requested_size_and_valid_fragments() {
        let c = corpus();
        let w = Workload::generate(
            &c,
            &WorkloadConfig {
                queries: 40,
                ..Default::default()
            },
        );
        assert_eq!(w.len(), 40);
        for q in &w.queries {
            if let Some(f) = &q.fragment {
                assert!(validate(f).is_empty());
                assert!(!f.is_empty());
            }
            match q.kind {
                QueryKind::Keywords => {
                    assert!(!q.keywords.is_empty());
                    assert!(q.fragment.is_none());
                }
                QueryKind::Fragment => {
                    assert!(q.keywords.is_empty());
                    assert!(q.fragment.is_some());
                }
                QueryKind::Mixed => {
                    assert!(!q.keywords.is_empty());
                    assert!(q.fragment.is_some());
                }
            }
        }
    }

    #[test]
    fn ground_truth_has_at_least_two_members() {
        let c = corpus();
        let w = Workload::generate(&c, &WorkloadConfig::default());
        for q in &w.queries {
            assert!(q.relevant.len() >= 2, "family {} too small", q.family);
            for &r in &q.relevant {
                assert_eq!(c.schemas[r].family, q.family);
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let c = corpus();
        let a = Workload::generate(&c, &WorkloadConfig::default());
        let b = Workload::generate(&c, &WorkloadConfig::default());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.keywords, y.keywords);
            assert_eq!(x.fragment, y.fragment);
            assert_eq!(x.relevant, y.relevant);
        }
    }

    #[test]
    fn queries_rotate_across_families() {
        let c = corpus();
        let w = Workload::generate(
            &c,
            &WorkloadConfig {
                queries: 30,
                ..Default::default()
            },
        );
        let families: std::collections::HashSet<_> = w.queries.iter().map(|q| q.family).collect();
        assert!(families.len() >= 10);
    }

    #[test]
    fn keyword_counts_respect_range() {
        let c = corpus();
        let w = Workload::generate(
            &c,
            &WorkloadConfig {
                queries: 30,
                keywords: (3, 5),
                kind_mix: (1.0, 0.0, 0.0),
                ..Default::default()
            },
        );
        for q in &w.queries {
            assert!(
                (1..=5).contains(&q.keywords.len()),
                "{} keywords",
                q.keywords.len()
            );
        }
    }
}
