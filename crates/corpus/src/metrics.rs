//! Ranking-quality metrics: precision@k, MRR, NDCG@k, average precision.
//!
//! The demo paper reports no quantitative ranking numbers; these metrics
//! are how the reproduction quantifies the claims (experiments E2–E5, E7).

use std::collections::HashSet;

/// Precision@k: fraction of the top-k ranked items that are relevant.
/// When fewer than `k` items were returned, the denominator is still `k`
/// (missing items count as misses).
pub fn precision_at(k: usize, ranked: &[usize], relevant: &HashSet<usize>) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|r| relevant.contains(r))
        .count();
    hits as f64 / k as f64
}

/// Reciprocal rank of the first relevant item (0 when none appears).
pub fn mrr(ranked: &[usize], relevant: &HashSet<usize>) -> f64 {
    ranked
        .iter()
        .position(|r| relevant.contains(r))
        .map_or(0.0, |pos| 1.0 / (pos + 1) as f64)
}

/// NDCG@k with binary relevance: DCG = Σ rel_i / log2(i+2), normalized by
/// the ideal ordering.
pub fn ndcg_at(k: usize, ranked: &[usize], relevant: &HashSet<usize>) -> f64 {
    if k == 0 || relevant.is_empty() {
        return 0.0;
    }
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, r)| relevant.contains(r))
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal: f64 = (0..relevant.len().min(k))
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    dcg / ideal
}

/// Average precision: mean of precision@i over the ranks of relevant items,
/// divided by the number of relevant items.
pub fn average_precision(ranked: &[usize], relevant: &HashSet<usize>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0f64;
    for (i, r) in ranked.iter().enumerate() {
        if relevant.contains(r) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// Aggregated means over a query set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankingMetrics {
    /// Mean precision@10.
    pub p_at_10: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Mean NDCG@10.
    pub ndcg_at_10: f64,
    /// Mean average precision.
    pub map: f64,
    /// Number of queries aggregated.
    pub queries: usize,
}

impl RankingMetrics {
    /// Aggregate per-query rankings into mean metrics.
    pub fn aggregate<'a>(
        results: impl IntoIterator<Item = (&'a [usize], &'a HashSet<usize>)>,
    ) -> RankingMetrics {
        let mut m = RankingMetrics::default();
        for (ranked, relevant) in results {
            m.p_at_10 += precision_at(10, ranked, relevant);
            m.mrr += mrr(ranked, relevant);
            m.ndcg_at_10 += ndcg_at(10, ranked, relevant);
            m.map += average_precision(ranked, relevant);
            m.queries += 1;
        }
        if m.queries > 0 {
            let n = m.queries as f64;
            m.p_at_10 /= n;
            m.mrr /= n;
            m.ndcg_at_10 /= n;
            m.map /= n;
        }
        m
    }
}

impl std::fmt::Display for RankingMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P@10={:.3} MRR={:.3} NDCG@10={:.3} MAP={:.3} (n={})",
            self.p_at_10, self.mrr, self.ndcg_at_10, self.map, self.queries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(items: &[usize]) -> HashSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ranked = [1, 2, 3];
        let relevant = rel(&[1, 2, 3]);
        assert_eq!(precision_at(3, &ranked, &relevant), 1.0);
        assert_eq!(mrr(&ranked, &relevant), 1.0);
        assert!((ndcg_at(3, &ranked, &relevant) - 1.0).abs() < 1e-12);
        assert!((average_precision(&ranked, &relevant) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ranking_scores_zero() {
        let relevant = rel(&[1]);
        assert_eq!(precision_at(10, &[], &relevant), 0.0);
        assert_eq!(mrr(&[], &relevant), 0.0);
        assert_eq!(ndcg_at(10, &[], &relevant), 0.0);
        assert_eq!(average_precision(&[], &relevant), 0.0);
    }

    #[test]
    fn precision_counts_misses_in_the_denominator() {
        let relevant = rel(&[1]);
        assert_eq!(precision_at(4, &[1, 9, 9, 9], &relevant), 0.25);
        assert_eq!(precision_at(4, &[1], &relevant), 0.25);
    }

    #[test]
    fn mrr_is_reciprocal_of_first_hit() {
        let relevant = rel(&[5]);
        assert_eq!(mrr(&[9, 8, 5, 1], &relevant), 1.0 / 3.0);
    }

    #[test]
    fn ndcg_prefers_early_hits() {
        let relevant = rel(&[1, 2]);
        let early = ndcg_at(4, &[1, 2, 9, 9], &relevant);
        let late = ndcg_at(4, &[9, 9, 1, 2], &relevant);
        assert!(early > late);
        assert!((early - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_matches_hand_computation() {
        // Relevant {1,2}; ranked [1,9,2]: P@1=1, P@3=2/3 → AP=(1+2/3)/2.
        let relevant = rel(&[1, 2]);
        let ap = average_precision(&[1, 9, 2], &relevant);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_averages_across_queries() {
        let r1 = [1usize];
        let rel1 = rel(&[1]);
        let r2 = [9usize];
        let rel2 = rel(&[1]);
        let m = RankingMetrics::aggregate([(&r1[..], &rel1), (&r2[..], &rel2)]);
        assert_eq!(m.queries, 2);
        assert!((m.mrr - 0.5).abs() < 1e-12);
        let shown = m.to_string();
        assert!(shown.contains("MRR=0.500"), "{shown}");
    }
}
