//! Hierarchical request spans with an RAII guard API.
//!
//! One [`TraceContext`] lives for the duration of one search request.
//! Layers open spans against it ([`TraceContext::root_span`],
//! [`SpanGuard::child`]); dropping a guard closes its span. Span records
//! are flat `(name, parent, start, duration, attrs)` rows — the tree is
//! reconstructed from parent indices when rendering, which keeps the
//! hot-path cost to one short mutex-protected `Vec::push` per span.
//!
//! The context is `Sync`: Phase 2's scoped matcher threads open child
//! spans concurrently via [`TraceContext::child_of`].

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::eventlog::EventResult;
use crate::json;
use crate::ledger::ResourceLedger;
use crate::memsize::DeepSize;

/// One recorded span: a named interval within a request, positioned
/// relative to the request's start.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`search`, `candidate_extraction`, `matcher:name`, …).
    pub name: String,
    /// Index of the parent span in the context's span list (`None` for
    /// the root).
    pub parent: Option<usize>,
    /// Microseconds from the request start to this span opening.
    pub start_us: u64,
    /// Span duration in microseconds (`None` while still open).
    pub dur_us: Option<u64>,
    /// Free-form key/value annotations, in insertion order.
    pub attrs: Vec<(String, String)>,
}

/// Per-request span collector. Create one per search via
/// [`crate::Tracer::begin`]; hand out spans with [`Self::root_span`] /
/// [`SpanGuard::child`]; turn it into a [`CompletedTrace`] when the
/// request finishes.
#[derive(Debug)]
pub struct TraceContext {
    trace_id: String,
    started_unix_ms: u64,
    t0: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceContext {
    /// A fresh context with the given (already sanitized) trace id.
    pub fn new(trace_id: String) -> Self {
        TraceContext {
            trace_id,
            started_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            t0: Instant::now(),
            spans: Mutex::new(Vec::with_capacity(16)),
        }
    }

    /// The request's trace id.
    pub fn trace_id(&self) -> &str {
        &self.trace_id
    }

    /// Microseconds since the context was created.
    pub fn elapsed_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    fn open(&self, parent: Option<usize>, name: &str) -> usize {
        let start_us = self.elapsed_us();
        let mut spans = self.spans.lock().expect("trace lock");
        spans.push(SpanRecord {
            name: name.to_string(),
            parent,
            start_us,
            dur_us: None,
            attrs: Vec::new(),
        });
        spans.len() - 1
    }

    /// Open the root span. Call once per request.
    pub fn root_span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            ctx: self,
            idx: self.open(None, name),
        }
    }

    /// Open a child of the span at `parent` (obtained from
    /// [`SpanGuard::index`]) — the cross-thread entry point.
    pub fn child_of(&self, parent: usize, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            ctx: self,
            idx: self.open(Some(parent), name),
        }
    }

    fn close(&self, idx: usize) {
        let now = self.elapsed_us();
        let mut spans = self.spans.lock().expect("trace lock");
        if let Some(span) = spans.get_mut(idx) {
            if span.dur_us.is_none() {
                span.dur_us = Some(now.saturating_sub(span.start_us));
            }
        }
    }

    fn annotate(&self, idx: usize, key: &str, value: String) {
        let mut spans = self.spans.lock().expect("trace lock");
        if let Some(span) = spans.get_mut(idx) {
            span.attrs.push((key.to_string(), value));
        }
    }

    /// Insert an already-measured child span (used for per-matcher wall
    /// times that are accumulated outside the span API).
    pub fn add_closed_child(&self, parent: usize, name: &str, wall: Duration) {
        let now = self.elapsed_us();
        let dur = wall.as_micros() as u64;
        let mut spans = self.spans.lock().expect("trace lock");
        spans.push(SpanRecord {
            name: name.to_string(),
            parent: Some(parent),
            start_us: now.saturating_sub(dur),
            dur_us: Some(dur),
            attrs: Vec::new(),
        });
    }

    /// Close any still-open spans and return the raw parts
    /// (`trace_id`, start wall-clock ms, total µs, spans).
    pub fn into_parts(self) -> (String, u64, u64, Vec<SpanRecord>) {
        let total_us = self.elapsed_us();
        let mut spans = self.spans.into_inner().expect("trace lock");
        for span in &mut spans {
            if span.dur_us.is_none() {
                span.dur_us = Some(total_us.saturating_sub(span.start_us));
            }
        }
        (self.trace_id, self.started_unix_ms, total_us, spans)
    }

    /// Like [`Self::into_parts`] but by reference: clones the spans and
    /// closes any still open in the copy. Used when a shared handle (the
    /// profiler's live registry) still holds the context at finish time.
    pub fn parts(&self) -> (String, u64, u64, Vec<SpanRecord>) {
        let total_us = self.elapsed_us();
        let mut spans = self.spans.lock().expect("trace lock").clone();
        for span in &mut spans {
            if span.dur_us.is_none() {
                span.dur_us = Some(total_us.saturating_sub(span.start_us));
            }
        }
        (self.trace_id.clone(), self.started_unix_ms, total_us, spans)
    }

    /// The currently-open span stacks, one folded `a;b;c` name per open
    /// *leaf* span (an open span with no open child). This is what the
    /// sampling profiler reads: a request in Phase 2 with three live
    /// `match_chunk` workers yields three `search;matching;match_chunk`
    /// stacks, attributing the sample proportionally to the parallelism.
    pub fn open_stacks(&self) -> Vec<String> {
        let spans = self.spans.lock().expect("trace lock");
        let open: Vec<bool> = spans.iter().map(|s| s.dur_us.is_none()).collect();
        // An open span stops being a leaf once any open span points at it.
        let mut is_open_parent = vec![false; spans.len()];
        for (i, span) in spans.iter().enumerate() {
            if open[i] {
                if let Some(p) = span.parent {
                    if p < spans.len() {
                        is_open_parent[p] = true;
                    }
                }
            }
        }
        let mut stacks = Vec::new();
        for (i, span) in spans.iter().enumerate() {
            if !open[i] || is_open_parent[i] {
                continue;
            }
            // Walk to the root, then reverse into a folded name.
            let mut names = vec![span.name.as_str()];
            let mut cursor = span.parent;
            while let Some(p) = cursor {
                let Some(parent) = spans.get(p) else { break };
                names.push(parent.name.as_str());
                cursor = parent.parent;
            }
            names.reverse();
            stacks.push(names.join(";"));
        }
        stacks
    }
}

/// RAII guard for one open span. Dropping it closes the span; it never
/// records into a metrics registry (that's [`crate::SpanTimer`]'s job) —
/// it only marks the interval inside its request's trace.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    ctx: &'a TraceContext,
    idx: usize,
}

impl<'a> SpanGuard<'a> {
    /// This span's index — pass to [`TraceContext::child_of`] from other
    /// threads.
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Open a child span.
    pub fn child(&self, name: &str) -> SpanGuard<'a> {
        self.ctx.child_of(self.idx, name)
    }

    /// Attach a key/value annotation to this span.
    pub fn annotate(&self, key: &str, value: impl std::fmt::Display) {
        self.ctx.annotate(self.idx, key, value.to_string());
    }

    /// Insert an already-measured, immediately-closed child (per-matcher
    /// walls summed across candidates).
    pub fn add_closed_child(&self, name: &str, wall: Duration) {
        self.ctx.add_closed_child(self.idx, name, wall);
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.ctx.close(self.idx);
    }
}

/// A finished request trace: the span tree plus enough request/response
/// context to make `/debug/traces/{id}` and the slow-query log useful on
/// their own.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrace {
    /// The request's trace id (client-supplied or generated).
    pub trace_id: String,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// The normalized query text.
    pub query: String,
    /// Phase 1 hits.
    pub candidates_from_index: usize,
    /// Candidates scored by Phase 2/3.
    pub candidates_evaluated: usize,
    /// Top-k results (ids, scores, per-matcher strengths).
    pub results: Vec<EventResult>,
    /// What the search cost across every thread that worked on it
    /// (zeroed when the engine recorded no ledger).
    pub ledger: ResourceLedger,
    /// Flat span records; tree via `parent` indices.
    pub spans: Vec<SpanRecord>,
}

impl DeepSize for SpanRecord {
    fn deep_size_of_children(&self) -> usize {
        self.name.deep_size_of_children() + self.attrs.deep_size_of_children()
    }
}

impl DeepSize for CompletedTrace {
    fn deep_size_of_children(&self) -> usize {
        self.trace_id.deep_size_of_children()
            + self.query.deep_size_of_children()
            + self.results.deep_size_of_children()
            + self.spans.deep_size_of_children()
    }
}

impl CompletedTrace {
    /// One-line JSON summary (for `/debug/traces` listings).
    pub fn summary_json(&self) -> String {
        format!(
            "{{\"trace_id\":\"{}\",\"unix_ms\":{},\"total_us\":{},\"query\":\"{}\",\"candidates\":{},\"results\":{}}}",
            json::escape(&self.trace_id),
            self.started_unix_ms,
            self.total_us,
            json::escape(&self.query),
            self.candidates_evaluated,
            self.results.len(),
        )
    }

    /// Full JSON: header fields, top-k results, and the span tree nested
    /// via `children`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        let _ = write!(
            out,
            "{{\"trace_id\":\"{}\",\"unix_ms\":{},\"total_us\":{},\"query\":\"{}\",\"candidates_from_index\":{},\"candidates_evaluated\":{},\"results\":[",
            json::escape(&self.trace_id),
            self.started_unix_ms,
            self.total_us,
            json::escape(&self.query),
            self.candidates_from_index,
            self.candidates_evaluated,
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        let _ = write!(
            out,
            "],\"ledger\":{{\"cpu_us\":{},\"alloc_count\":{},\"alloc_bytes\":{}}},\"spans\":[",
            self.ledger.cpu_us, self.ledger.alloc_count, self.ledger.alloc_bytes,
        );
        // children[i] = indices of spans whose parent is i.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            match span.parent {
                Some(p) if p < self.spans.len() => children[p].push(i),
                _ => roots.push(i),
            }
        }
        for (i, &root) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            self.write_span(&mut out, root, &children);
        }
        out.push_str("]}");
        out
    }

    fn write_span(&self, out: &mut String, idx: usize, children: &[Vec<usize>]) {
        let span = &self.spans[idx];
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}",
            json::escape(&span.name),
            span.start_us,
            span.dur_us.unwrap_or(0),
        );
        if !span.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in span.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json::escape(k), json::escape(v));
            }
            out.push('}');
        }
        if !children[idx].is_empty() {
            out.push_str(",\"children\":[");
            for (i, &c) in children[idx].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.write_span(out, c, children);
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Names of the direct children of the root span (test/debug
    /// convenience: "does the trace cover all three phases?").
    pub fn phase_names(&self) -> Vec<&str> {
        self.spans
            .iter()
            .filter(|s| s.parent == Some(0))
            .map(|s| s.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish(ctx: TraceContext) -> CompletedTrace {
        let (trace_id, started_unix_ms, total_us, spans) = ctx.into_parts();
        CompletedTrace {
            trace_id,
            started_unix_ms,
            total_us,
            query: "q".into(),
            candidates_from_index: 0,
            candidates_evaluated: 0,
            results: vec![],
            ledger: ResourceLedger::default(),
            spans,
        }
    }

    #[test]
    fn guards_build_a_tree() {
        let ctx = TraceContext::new("t1".into());
        {
            let root = ctx.root_span("search");
            {
                let p1 = root.child("candidate_extraction");
                p1.annotate("hits", 42);
            }
            {
                let p2 = root.child("matching");
                p2.add_closed_child("matcher:name", Duration::from_micros(120));
                let _grand = p2.child("match_chunk");
            }
        }
        let trace = finish(ctx);
        assert_eq!(trace.trace_id, "t1");
        assert_eq!(trace.spans.len(), 5);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(
            trace.phase_names(),
            vec!["candidate_extraction", "matching"]
        );
        // All spans closed.
        assert!(trace.spans.iter().all(|s| s.dur_us.is_some()));
        // Annotation survived.
        assert_eq!(
            trace.spans[1].attrs,
            vec![("hits".to_string(), "42".to_string())]
        );
        // Closed child carries the externally measured wall.
        let matcher = trace
            .spans
            .iter()
            .find(|s| s.name == "matcher:name")
            .unwrap();
        assert_eq!(matcher.dur_us, Some(120));
        assert_eq!(matcher.parent, Some(2));
    }

    #[test]
    fn open_spans_are_closed_at_finish() {
        let ctx = TraceContext::new("t2".into());
        let root = ctx.root_span("search");
        std::mem::forget(root); // never dropped → still open
        let trace = finish(ctx);
        assert!(trace.spans[0].dur_us.is_some());
    }

    #[test]
    fn cross_thread_children_attach_to_the_right_parent() {
        let ctx = TraceContext::new("t3".into());
        let root = ctx.root_span("search");
        let root_idx = root.index();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let ctx = &ctx;
                scope.spawn(move || {
                    let child = ctx.child_of(root_idx, "match_chunk");
                    child.annotate("candidates", 3);
                });
            }
        });
        drop(root);
        let trace = finish(ctx);
        let chunks: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.name == "match_chunk")
            .collect();
        assert_eq!(chunks.len(), 4);
        assert!(chunks.iter().all(|s| s.parent == Some(root_idx)));
    }

    #[test]
    fn open_stacks_name_open_leaves_only() {
        let ctx = TraceContext::new("t5".into());
        assert!(ctx.open_stacks().is_empty(), "no spans, no stacks");
        let root = ctx.root_span("search");
        assert_eq!(ctx.open_stacks(), vec!["search".to_string()]);
        {
            let p1 = root.child("candidate_extraction");
            let _ = &p1;
            assert_eq!(
                ctx.open_stacks(),
                vec!["search;candidate_extraction".to_string()]
            );
        }
        // p1 closed: back to the root as the only open leaf.
        assert_eq!(ctx.open_stacks(), vec!["search".to_string()]);
        let p2 = root.child("matching");
        let _c1 = ctx.child_of(p2.index(), "match_chunk");
        let _c2 = ctx.child_of(p2.index(), "match_chunk");
        // Closed children never appear.
        p2.add_closed_child("matcher:name", Duration::from_micros(5));
        let mut stacks = ctx.open_stacks();
        stacks.sort();
        assert_eq!(
            stacks,
            vec![
                "search;matching;match_chunk".to_string(),
                "search;matching;match_chunk".to_string(),
            ]
        );
    }

    #[test]
    fn parts_by_reference_matches_into_parts() {
        let ctx = TraceContext::new("t6".into());
        {
            let root = ctx.root_span("search");
            let _p = root.child("matching");
        }
        let (id, _, _, spans_ref) = ctx.parts();
        assert_eq!(id, "t6");
        let (_, _, _, spans_owned) = ctx.into_parts();
        assert_eq!(spans_ref.len(), spans_owned.len());
        assert!(spans_ref.iter().all(|s| s.dur_us.is_some()));
    }

    #[test]
    fn json_rendering_nests_children() {
        let ctx = TraceContext::new("t\"4".into());
        {
            let root = ctx.root_span("search");
            let _p1 = root.child("candidate_extraction");
        }
        let trace = finish(ctx);
        let json_text = trace.to_json();
        let parsed = crate::json::Json::parse(&json_text).expect("valid json");
        assert_eq!(parsed.get("trace_id").unwrap().as_str(), Some("t\"4"));
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans.len(), 1); // one root
        let root = &spans[0];
        assert_eq!(root.get("name").unwrap().as_str(), Some("search"));
        let kids = root.get("children").unwrap().as_arr().unwrap();
        assert_eq!(
            kids[0].get("name").unwrap().as_str(),
            Some("candidate_extraction")
        );
        // Summary parses too.
        assert!(crate::json::Json::parse(&trace.summary_json()).is_ok());
    }
}
