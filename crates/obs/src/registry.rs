//! The metrics registry: names, labels, and shared metric handles.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::counter::Counter;
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::render;

/// A canonical (sorted) list of `label → value` pairs identifying one
/// series within a metric family.
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MetricKind {
    Counter,
    Histogram,
}

impl MetricKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Series {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

/// One metric family: a help string, a kind, and the labeled series.
#[derive(Debug)]
pub(crate) struct Family {
    pub help: String,
    pub kind: MetricKind,
    pub series: BTreeMap<LabelSet, Series>,
}

/// A registry of named counters and histograms.
///
/// `counter*`/`histogram*` return shared handles: the first call for a
/// `(name, labels)` pair creates the series, later calls return the same
/// `Arc`. Registration takes a write lock; the returned handles are
/// lock-free, so hot paths should hold onto their `Arc`s. Re-looking a
/// handle up per event is also fine for request-rate work (a read lock
/// plus two map probes).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    pub(crate) families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// An unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// A labeled counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a histogram.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let set = label_set(labels);
        let mut families = self.families.write().expect("metrics lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Counter,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            MetricKind::Counter,
            "metric `{name}` is already registered as a {}",
            family.kind.as_str()
        );
        match family
            .series
            .entry(set)
            .or_insert_with(|| Series::Counter(Arc::new(Counter::new())))
        {
            Series::Counter(c) => c.clone(),
            Series::Histogram(_) => unreachable!("kind checked above"),
        }
    }

    /// An unlabeled histogram with the given finite bucket bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], bounds)
    }

    /// A labeled histogram. All series of one family share the bucket
    /// layout of the first registration.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a counter.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let set = label_set(labels);
        let mut families = self.families.write().expect("metrics lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: MetricKind::Histogram,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            MetricKind::Histogram,
            "metric `{name}` is already registered as a {}",
            family.kind.as_str()
        );
        match family
            .series
            .entry(set)
            .or_insert_with(|| Series::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Series::Histogram(h) => h.clone(),
            Series::Counter(_) => unreachable!("kind checked above"),
        }
    }

    /// Current value of a counter series, if registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let families = self.families.read().expect("metrics lock");
        match families.get(name)?.series.get(&label_set(labels))? {
            Series::Counter(c) => Some(c.get()),
            Series::Histogram(_) => None,
        }
    }

    /// Snapshot of a histogram series, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let families = self.families.read().expect("metrics lock");
        match families.get(name)?.series.get(&label_set(labels))? {
            Series::Histogram(h) => Some(h.snapshot()),
            Series::Counter(_) => None,
        }
    }

    /// Names of all registered families, sorted.
    pub fn family_names(&self) -> Vec<String> {
        self.families
            .read()
            .expect("metrics lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Render every family in Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` comments, then one line per
    /// sample, with histogram `_bucket`/`_sum`/`_count` expansion and
    /// label-value escaping.
    pub fn render_prometheus(&self) -> String {
        render::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_counter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total", "Total requests.");
        let b = reg.counter("requests_total", "Total requests.");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_value("requests_total", &[]), Some(3));
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("hits", "h", &[("route", "/a"), ("status", "200")]);
        let b = reg.counter_with("hits", "h", &[("status", "200"), ("route", "/a")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let reg = MetricsRegistry::new();
        reg.counter_with("hits", "h", &[("route", "/a")]).inc();
        reg.counter_with("hits", "h", &[("route", "/b")]).add(5);
        assert_eq!(reg.counter_value("hits", &[("route", "/a")]), Some(1));
        assert_eq!(reg.counter_value("hits", &[("route", "/b")]), Some(5));
        assert_eq!(reg.counter_value("hits", &[("route", "/c")]), None);
    }

    #[test]
    fn histogram_series_snapshot_roundtrip() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("latency", "l", &[("phase", "match")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        let snap = reg
            .histogram_snapshot("latency", &[("phase", "match")])
            .unwrap();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.counts, vec![1, 1, 0]);
        assert!(reg.histogram_snapshot("latency", &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "c");
        reg.histogram("x", "h", &[1.0]);
    }

    #[test]
    fn family_names_are_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta", "z");
        reg.counter("alpha", "a");
        assert_eq!(reg.family_names(), vec!["alpha", "zeta"]);
    }
}
