//! RAII span timing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::histogram::Histogram;

/// A guard that records its own lifetime into a histogram.
///
/// Start one at the top of a span; when it drops (or [`SpanTimer::stop`]
/// is called explicitly) the elapsed wall time is observed in seconds.
/// Dropping records exactly once.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    start: Instant,
    recorded: bool,
}

impl SpanTimer {
    /// Start timing into `histogram`.
    pub fn start(histogram: Arc<Histogram>) -> Self {
        SpanTimer {
            histogram,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Elapsed time so far, without recording.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Stop now, record, and return the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.histogram.observe_duration(elapsed);
        self.recorded = true;
        elapsed
    }

    /// Abandon the span without recording anything.
    pub fn cancel(mut self) {
        self.recorded = true;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.recorded {
            self.histogram.observe_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Arc::new(Histogram::latency());
        {
            let _t = SpanTimer::start(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_records_and_prevents_double_count() {
        let h = Arc::new(Histogram::latency());
        let t = SpanTimer::start(h.clone());
        let d = t.stop();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - d.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Arc::new(Histogram::latency());
        SpanTimer::start(h.clone()).cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn elapsed_is_monotone() {
        let h = Arc::new(Histogram::latency());
        let t = SpanTimer::start(h);
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
        t.cancel();
    }
}
