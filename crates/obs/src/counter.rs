//! Lock-free monotone counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// `inc`/`add` are single relaxed atomic adds — safe to call from any
/// thread on the hottest path. Reads (`get`) see a value at least as
/// fresh as the last add that happened-before the read.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
