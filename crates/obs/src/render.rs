//! Prometheus text exposition (format version 0.0.4).

use std::fmt::Write;

use crate::histogram::Exemplar;
use crate::registry::{LabelSet, MetricsRegistry, Series};

/// Escape a HELP string: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double quote, and newline.
pub fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a label set as `{k="v",…}`, with `extra` appended last (used
/// for the histogram `le` label). Empty sets render as an empty string.
fn render_labels(set: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = set
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Append OpenMetrics exemplar syntax (` # {trace_id="…"} value ts`)
/// when the bucket holds one. Buckets without exemplars render exactly
/// as before, so the Prometheus-0.0.4 exposition stays byte-identical
/// unless exemplars were actually recorded.
fn write_exemplar(out: &mut String, exemplar: Option<&Option<Exemplar>>) {
    if let Some(Some(e)) = exemplar {
        let _ = write!(
            out,
            " # {{trace_id=\"{}\"}} {} {}.{:03}",
            escape_label_value(&e.trace_id),
            e.value,
            e.unix_ms / 1000,
            e.unix_ms % 1000,
        );
    }
}

pub(crate) fn render(registry: &MetricsRegistry) -> String {
    let families = registry.families.read().expect("metrics lock");
    let mut out = String::new();
    for (name, family) in families.iter() {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
        for (labels, series) in &family.series {
            match series {
                Series::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                }
                Series::Histogram(h) => {
                    let snap = h.snapshot();
                    let cumulative = snap.cumulative();
                    for (i, (bound, cum)) in snap.bounds.iter().zip(&cumulative).enumerate() {
                        let le = format!("{bound}");
                        let _ = write!(
                            out,
                            "{name}_bucket{} {cum}",
                            render_labels(labels, Some(("le", &le)))
                        );
                        write_exemplar(&mut out, snap.exemplars.get(i));
                        out.push('\n');
                    }
                    let _ = write!(
                        out,
                        "{name}_bucket{} {}",
                        render_labels(labels, Some(("le", "+Inf"))),
                        snap.count
                    );
                    write_exemplar(&mut out, snap.exemplars.get(snap.bounds.len()));
                    out.push('\n');
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(labels, None),
                        snap.sum
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        render_labels(labels, None),
                        snap.count
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn counter_exposition_is_exact() {
        let reg = MetricsRegistry::new();
        reg.counter("schemr_search_requests_total", "Total searches served.")
            .add(7);
        assert_eq!(
            reg.render_prometheus(),
            "# HELP schemr_search_requests_total Total searches served.\n\
             # TYPE schemr_search_requests_total counter\n\
             schemr_search_requests_total 7\n"
        );
    }

    #[test]
    fn labeled_counter_exposition_is_exact() {
        let reg = MetricsRegistry::new();
        reg.counter_with(
            "schemr_http_requests_total",
            "HTTP requests by route and status.",
            &[("route", "/search"), ("status", "200")],
        )
        .add(3);
        assert_eq!(
            reg.render_prometheus(),
            "# HELP schemr_http_requests_total HTTP requests by route and status.\n\
             # TYPE schemr_http_requests_total counter\n\
             schemr_http_requests_total{route=\"/search\",status=\"200\"} 3\n"
        );
    }

    #[test]
    fn histogram_exposition_is_exact() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with(
            "schemr_phase_seconds",
            "Per-phase wall time.",
            &[("phase", "matching")],
            &[0.01, 0.1],
        );
        h.observe(0.005);
        h.observe(0.05);
        h.observe(2.0);
        assert_eq!(
            reg.render_prometheus(),
            "# HELP schemr_phase_seconds Per-phase wall time.\n\
             # TYPE schemr_phase_seconds histogram\n\
             schemr_phase_seconds_bucket{phase=\"matching\",le=\"0.01\"} 1\n\
             schemr_phase_seconds_bucket{phase=\"matching\",le=\"0.1\"} 2\n\
             schemr_phase_seconds_bucket{phase=\"matching\",le=\"+Inf\"} 3\n\
             schemr_phase_seconds_sum{phase=\"matching\"} 2.055\n\
             schemr_phase_seconds_count{phase=\"matching\"} 3\n"
        );
    }

    #[test]
    fn exemplars_render_openmetrics_syntax() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with(
            "schemr_http_request_seconds",
            "Request latency.",
            &[("route", "/search")],
            &[0.01, 0.1],
        );
        h.observe(0.005); // no exemplar on this bucket
        h.observe_exemplar(0.05, "t42");
        let text = reg.render_prometheus();
        // The exemplar-free bucket renders exactly as before…
        assert!(
            text.contains("schemr_http_request_seconds_bucket{route=\"/search\",le=\"0.01\"} 1\n"),
            "{text}"
        );
        // …and the exemplar-carrying one appends OpenMetrics syntax.
        let line = text
            .lines()
            .find(|l| l.contains("le=\"0.1\""))
            .expect("0.1 bucket line");
        assert!(
            line.contains("} 2 # {trace_id=\"t42\"} 0.05 "),
            "exemplar syntax wrong: {line}"
        );
        // Timestamp is seconds.millis.
        let ts = line.rsplit(' ').next().unwrap();
        assert!(ts.contains('.') && ts.len() > 4, "timestamp: {ts}");
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_with("m", "h", &[("q", "say \"hi\"\\\n")]).inc();
        let text = reg.render_prometheus();
        assert!(
            text.contains("m{q=\"say \\\"hi\\\"\\\\\\n\"} 1"),
            "escaping wrong: {text}"
        );
    }

    #[test]
    fn help_newlines_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "line one\nline two").inc();
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP m line one\\nline two\n"), "{text}");
    }

    #[test]
    fn families_render_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "b").inc();
        reg.counter("a_total", "a").inc();
        let text = reg.render_prometheus();
        assert!(text.find("a_total").unwrap() < text.find("b_total").unwrap());
    }
}
