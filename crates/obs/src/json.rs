//! A deliberately tiny JSON encoder/decoder.
//!
//! The event log ([`crate::eventlog`]) persists one JSON object per line
//! and the trace endpoints render span trees as JSON, but this crate's
//! contract is **zero dependencies** — so instead of pulling in a JSON
//! library for the whole stack, we keep ~200 lines of recursive-descent
//! parser here. It handles exactly the JSON this crate emits (objects,
//! arrays, strings with standard escapes, f64 numbers, booleans, null)
//! and rejects everything else with a position-carrying error.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 the way the rest of the crate expects: finite numbers
/// via `{}` (shortest round-trip), non-finite ones as `null` (JSON has
/// no NaN/Inf).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicates kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            pos: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates would need pairing; this crate
                            // never emits them, so map to the
                            // replacement character rather than failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` only ever advances by whole scalars, so this
                    // slice starts on a char boundary.
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let original = "a \"quote\"\\ with\nnewline\tand\u{1}control";
        let doc = format!("{{\"k\":\"{}\"}}", escape(original));
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#;
        let v = Json::parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_survives() {
        let doc = "{\"q\":\"höhe ≥ 1.8m\"}";
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("q").unwrap().as_str(), Some("höhe ≥ 1.8m"));
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(1.25), "1.25");
    }
}
