//! # schemr-obs
//!
//! Zero-dependency observability primitives for the Schemr stack.
//!
//! The paper's three-phase search pipeline (candidate extraction → matcher
//! ensemble → tightness-of-fit) is exactly where latency and quality
//! regressions hide as the corpus grows, so every layer of the
//! reproduction records what it did into a shared [`MetricsRegistry`]:
//!
//! * [`Counter`] — a lock-free monotonically increasing `AtomicU64`,
//! * [`Histogram`] — fixed-bucket latency histogram with lock-free
//!   `observe` and p50/p95/p99 readout via [`HistogramSnapshot`],
//! * [`MetricsRegistry`] — names and labels metrics, hands out shared
//!   handles, and renders the whole set in Prometheus text exposition
//!   format ([`MetricsRegistry::render_prometheus`]),
//! * [`SpanTimer`] — an RAII guard that observes its lifetime into a
//!   histogram.
//!
//! On top of the aggregate metrics sits **schemr-trace**, the
//! per-request layer:
//!
//! * [`TraceContext`] / [`SpanGuard`] — hierarchical spans with RAII
//!   close semantics and cross-thread child attachment,
//! * [`Tracer`] — monotonic trace IDs, a bounded [`Ring`] of recent
//!   [`CompletedTrace`]s, a threshold-gated slow-query ring, and an
//!   optional durable [`EventLog`],
//! * [`EventLog`] — append-only JSONL search history with size-based
//!   rotation and a replay reader ([`read_events_at`]), one versioned
//!   [`SearchEvent`] record per search.
//!
//! The third tier is **resource accounting and service objectives**:
//!
//! * [`ResourceLedger`] / [`LedgerProbe`] — per-query CPU time (via
//!   `CLOCK_THREAD_CPUTIME_ID`) and allocator traffic (via the
//!   [`alloc::CountingAlloc`] counting allocator, feature `obs-alloc`),
//! * [`Profiler`] — a span-stack sampling profiler that folds the
//!   tracer's live span stacks into flamegraph-compatible aggregates,
//! * [`Exemplar`] — per-bucket histogram exemplars linking latency
//!   spikes to the trace that caused them (OpenMetrics syntax),
//! * [`SloTracker`] — rolling 5m/1h latency- and error-budget burn
//!   rates against configurable objectives.
//!
//! The crate deliberately has **no dependencies** (not even workspace
//! ones): it sits below `schemr-index`, `schemr` (core), and
//! `schemr-server` in the crate graph, so anything it pulled in would be
//! paid by the entire stack. That is also why [`json`] hand-rolls a
//! ~300-line JSON encoder/parser instead of using serde.

pub mod alloc;
pub mod counter;
pub mod eventlog;
pub mod histogram;
pub mod json;
pub mod ledger;
pub mod memsize;
pub mod profiler;
pub mod registry;
pub mod render;
pub mod ring;
pub mod slo;
pub mod span;
pub mod timer;
pub mod tracer;
pub mod workload;

pub use alloc::CountingAlloc;
pub use counter::Counter;
pub use eventlog::{read_events_at, EventLog, EventResult, SearchEvent, EVENT_SCHEMA_VERSION};
pub use histogram::{Exemplar, Histogram, HistogramSnapshot, LATENCY_BUCKETS};
pub use ledger::{thread_clock_cost, thread_cpu_us, CpuProbeDepth, LedgerProbe, ResourceLedger};
pub use memsize::DeepSize;
pub use profiler::{ProfileSnapshot, Profiler, StackSource, DEFAULT_PROFILE_HZ};
pub use registry::{LabelSet, MetricsRegistry};
pub use ring::Ring;
pub use slo::{SloConfig, SloReport, SloTracker, WindowBurn};
pub use span::{CompletedTrace, SpanGuard, SpanRecord, TraceContext};
pub use timer::SpanTimer;
pub use tracer::{SearchOutcome, Tracer, TracerConfig};
pub use workload::{
    query_shape, HeavyHitter, Kmv, SpaceSaving, WindowedSketch, WorkloadConfig, WorkloadSnapshot,
    WorkloadStats,
};
