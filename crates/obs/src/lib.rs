//! # schemr-obs
//!
//! Zero-dependency observability primitives for the Schemr stack.
//!
//! The paper's three-phase search pipeline (candidate extraction → matcher
//! ensemble → tightness-of-fit) is exactly where latency and quality
//! regressions hide as the corpus grows, so every layer of the
//! reproduction records what it did into a shared [`MetricsRegistry`]:
//!
//! * [`Counter`] — a lock-free monotonically increasing `AtomicU64`,
//! * [`Histogram`] — fixed-bucket latency histogram with lock-free
//!   `observe` and p50/p95/p99 readout via [`HistogramSnapshot`],
//! * [`MetricsRegistry`] — names and labels metrics, hands out shared
//!   handles, and renders the whole set in Prometheus text exposition
//!   format ([`MetricsRegistry::render_prometheus`]),
//! * [`SpanTimer`] — an RAII guard that observes its lifetime into a
//!   histogram.
//!
//! The crate deliberately has **no dependencies** (not even workspace
//! ones): it sits below `schemr-index`, `schemr` (core), and
//! `schemr-server` in the crate graph, so anything it pulled in would be
//! paid by the entire stack.

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod render;
pub mod timer;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, LATENCY_BUCKETS};
pub use registry::{LabelSet, MetricsRegistry};
pub use timer::SpanTimer;
