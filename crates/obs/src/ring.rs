//! A bounded ring buffer for completed request traces.
//!
//! Writers claim slots with a single `fetch_add` on an atomic cursor, so
//! concurrent searches never contend on a shared lock for the whole
//! buffer — only on the one slot they're overwriting (a short per-slot
//! `RwLock` write). Readers snapshot slots newest-first without blocking
//! writers on other slots. Capacity is fixed at construction; the buffer
//! retains the last `capacity` pushes and silently drops older entries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::memsize::DeepSize;

/// Fixed-capacity concurrent ring of `Arc<T>` entries.
#[derive(Debug)]
pub struct Ring<T> {
    slots: Vec<RwLock<Option<Arc<T>>>>,
    /// Total number of pushes ever; `cursor % capacity` is the next slot.
    cursor: AtomicUsize,
}

impl<T> Ring<T> {
    /// A ring retaining the last `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            slots: (0..capacity).map(|_| RwLock::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.slots.len())
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Acquire) == 0
    }

    /// Append an entry, evicting the oldest once full.
    pub fn push(&self, value: Arc<T>) {
        let seq = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = seq % self.slots.len();
        *self.slots[slot].write().expect("ring slot") = Some(value);
    }

    /// Up to `limit` most recent entries, newest first.
    pub fn recent(&self, limit: usize) -> Vec<Arc<T>> {
        let seq = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len();
        let available = seq.min(cap).min(limit);
        let mut out = Vec::with_capacity(available);
        for back in 1..=available {
            let slot = (seq - back) % cap;
            if let Some(entry) = self.slots[slot].read().expect("ring slot").as_ref() {
                out.push(Arc::clone(entry));
            }
        }
        out
    }

    /// First retained entry matching `pred`, scanning newest first.
    pub fn find(&self, pred: impl Fn(&T) -> bool) -> Option<Arc<T>> {
        let seq = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len();
        for back in 1..=seq.min(cap) {
            let slot = (seq - back) % cap;
            let guard = self.slots[slot].read().expect("ring slot");
            if let Some(entry) = guard.as_ref() {
                if pred(entry) {
                    return Some(Arc::clone(entry));
                }
            }
        }
        None
    }
}

impl<T: DeepSize> DeepSize for Ring<T> {
    /// The slot table at capacity plus every retained entry's payload
    /// (each behind an `Arc` with its two refcounts). Takes each slot's
    /// read lock briefly; writers on other slots are unaffected.
    fn deep_size_of_children(&self) -> usize {
        let mut bytes = self.slots.capacity() * std::mem::size_of::<RwLock<Option<Arc<T>>>>();
        for slot in &self.slots {
            if let Some(entry) = slot.read().expect("ring slot").as_ref() {
                bytes += 2 * std::mem::size_of::<usize>() + entry.as_ref().deep_size_of();
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_last_n_newest_first() {
        let ring = Ring::new(3);
        assert!(ring.is_empty());
        for i in 0..5u32 {
            ring.push(Arc::new(i));
        }
        assert_eq!(ring.len(), 3);
        let recent: Vec<u32> = ring.recent(10).iter().map(|v| **v).collect();
        assert_eq!(recent, vec![4, 3, 2]);
        let limited: Vec<u32> = ring.recent(2).iter().map(|v| **v).collect();
        assert_eq!(limited, vec![4, 3]);
    }

    #[test]
    fn find_scans_newest_first() {
        let ring = Ring::new(4);
        for i in 0..4u32 {
            ring.push(Arc::new(i));
        }
        assert_eq!(ring.find(|v| v % 2 == 1).map(|v| *v), Some(3));
        assert_eq!(ring.find(|v| *v == 0).map(|v| *v), Some(0));
        assert_eq!(ring.find(|v| *v == 9), None);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = Ring::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(Arc::new(7u32));
        assert_eq!(ring.recent(5).len(), 1);
    }

    #[test]
    fn concurrent_pushes_keep_exactly_capacity() {
        let ring = Arc::new(Ring::new(8));
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..100u32 {
                        ring.push(Arc::new(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(ring.len(), 8);
        assert_eq!(ring.recent(100).len(), 8);
    }
}
