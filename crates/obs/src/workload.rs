//! Workload analytics: bounded-memory heavy-hitter sketches over the
//! live query stream.
//!
//! The engine cannot afford to remember every query it serves, but an
//! operator still needs to answer "which terms dominate the workload,
//! which query shapes recur, and which queries return nothing". A
//! [`SpaceSaving`] sketch (Metwally et al.'s SpaceSaving, the
//! counter-eviction cousin of Misra–Gries) answers those questions in
//! `O(k)` memory with a provable error bound:
//!
//! * at most `k` keys are tracked at any time (the eviction bound);
//! * every tracked key's estimate **overcounts**: `true ≤ estimate`
//!   and `estimate − true ≤ error ≤ total/k`;
//! * an untracked key's true count is at most the smallest tracked
//!   count, itself at most `total/k`.
//!
//! Sketches are merge-able: [`SpaceSaving::merge_from`] combines two
//! sketches key-wise and re-truncates to capacity, preserving the
//! overcount property (a kept key's merged estimate is the sum of
//! per-sketch overcounts). Merging is deterministic and commutative —
//! ties break on the key's lexicographic order, never on hash-map
//! iteration order.
//!
//! [`WindowedSketch`] stacks sketches into a sliding window: the
//! current window absorbs observations, older windows are retained
//! read-only, and [`WindowedSketch::merged`] folds them into one view.
//! Rotation drops the oldest window, so the merged view forgets
//! traffic older than `windows × window_len` — the property that keeps
//! "top terms" meaning *recent* top terms on a long-lived server.
//!
//! [`WorkloadStats`] is the engine-facing aggregate: three windowed
//! sketches (query terms, normalized query shapes, zero-result query
//! shapes), a [`Kmv`] distinct-term estimator, and totals. One mutex
//! guards the sketches; the per-query critical section is a handful of
//! hash-map probes, far below the <5% observability overhead budget.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json;

/// One tracked heavy hitter: an estimated count and its maximum
/// overcount (`estimate − error ≤ true ≤ estimate`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The tracked key (a term, or a normalized query shape).
    pub key: String,
    /// Estimated occurrence count (never an undercount).
    pub count: u64,
    /// Maximum overestimation absorbed when this key claimed an
    /// evicted counter; 0 means the count is exact.
    pub error: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    count: u64,
    error: u64,
}

/// A SpaceSaving heavy-hitter sketch over string keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    entries: HashMap<String, Slot>,
    total: u64,
}

impl SpaceSaving {
    /// A sketch tracking at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpaceSaving {
            capacity,
            entries: HashMap::with_capacity(capacity),
            total: 0,
        }
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently tracked (≤ capacity — the eviction
    /// bound).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total weight observed (including evicted keys).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observe one occurrence of `key`.
    pub fn observe(&mut self, key: &str) {
        self.observe_n(key, 1);
    }

    /// Observe `n` occurrences of `key`. When the sketch is full and
    /// `key` is untracked, the minimum counter is evicted and `key`
    /// inherits its count as error — the SpaceSaving step.
    pub fn observe_n(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        self.total += n;
        if let Some(slot) = self.entries.get_mut(key) {
            slot.count += n;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries
                .insert(key.to_string(), Slot { count: n, error: 0 });
            return;
        }
        // Evict the minimum counter. Ties break on the largest key so
        // the outcome is a pure function of the tracked set, not of
        // hash-map iteration order.
        let (min_key, min_count) = self
            .entries
            .iter()
            .map(|(k, s)| (k, s.count))
            .min_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(k, c)| (k.clone(), c))
            .expect("sketch is full, so non-empty");
        self.entries.remove(&min_key);
        self.entries.insert(
            key.to_string(),
            Slot {
                count: min_count + n,
                error: min_count,
            },
        );
    }

    /// Estimated `(count, error)` for a tracked key; `None` means the
    /// key's true count is at most the smallest tracked count.
    pub fn estimate(&self, key: &str) -> Option<(u64, u64)> {
        self.entries.get(key).map(|s| (s.count, s.error))
    }

    /// The top `n` keys by estimated count, descending; ties break on
    /// lexicographic key order so output is deterministic.
    pub fn top(&self, n: usize) -> Vec<HeavyHitter> {
        let mut all: Vec<HeavyHitter> = self
            .entries
            .iter()
            .map(|(k, s)| HeavyHitter {
                key: k.clone(),
                count: s.count,
                error: s.error,
            })
            .collect();
        all.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
        all.truncate(n);
        all
    }

    /// Merge another sketch into this one: counts and errors sum
    /// key-wise, then the union is re-truncated to capacity keeping
    /// the largest counts (ties on key order). Kept keys still
    /// overcount, because a sum of per-sketch overcounts overcounts
    /// the summed true frequency.
    pub fn merge_from(&mut self, other: &SpaceSaving) {
        self.total += other.total;
        for (key, slot) in &other.entries {
            match self.entries.get_mut(key) {
                Some(mine) => {
                    mine.count += slot.count;
                    mine.error += slot.error;
                }
                None => {
                    self.entries.insert(key.clone(), *slot);
                }
            }
        }
        if self.entries.len() > self.capacity {
            let mut all: Vec<(String, Slot)> = self.entries.drain().collect();
            all.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
            all.truncate(self.capacity);
            self.entries.extend(all);
        }
    }
}

/// A sliding window of [`SpaceSaving`] sketches: the front window
/// absorbs observations, older windows are read-only, rotation drops
/// the oldest.
#[derive(Debug, Clone)]
pub struct WindowedSketch {
    capacity: usize,
    max_windows: usize,
    /// Front = current window, back = oldest retained window.
    windows: VecDeque<SpaceSaving>,
    /// Total rotations ever — tells readers how stale the back is.
    rotations: u64,
}

impl WindowedSketch {
    /// A window stack of `max_windows` sketches (minimum 1), each with
    /// `capacity` counters.
    pub fn new(capacity: usize, max_windows: usize) -> Self {
        let mut windows = VecDeque::new();
        windows.push_front(SpaceSaving::new(capacity));
        WindowedSketch {
            capacity,
            max_windows: max_windows.max(1),
            windows,
            rotations: 0,
        }
    }

    /// Observe one occurrence in the current window.
    pub fn observe(&mut self, key: &str) {
        self.windows
            .front_mut()
            .expect("at least one window")
            .observe(key);
    }

    /// Start a fresh current window, dropping the oldest once more
    /// than `max_windows` are retained.
    pub fn rotate(&mut self) {
        self.windows.push_front(SpaceSaving::new(self.capacity));
        while self.windows.len() > self.max_windows {
            self.windows.pop_back();
        }
        self.rotations += 1;
    }

    /// Number of retained windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Total rotations since construction.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Total weight across all retained windows.
    pub fn total(&self) -> u64 {
        self.windows.iter().map(SpaceSaving::total).sum()
    }

    /// All retained windows folded into one sketch, oldest merged
    /// first — a deterministic fold, so two readers always agree.
    pub fn merged(&self) -> SpaceSaving {
        let mut out = SpaceSaving::new(self.capacity);
        for window in self.windows.iter().rev() {
            out.merge_from(window);
        }
        out
    }
}

/// A k-minimum-values distinct-count estimator: retain the `k`
/// smallest 64-bit key hashes; with the k-th smallest at `m`, the
/// estimate is `(k−1) · 2⁶⁴ / m`. Exact below `k` distinct keys,
/// ~`1/√k` relative error above.
#[derive(Debug, Clone)]
pub struct Kmv {
    k: usize,
    hashes: BTreeSet<u64>,
}

impl Kmv {
    /// An estimator retaining the `k` smallest hashes (minimum 16).
    pub fn new(k: usize) -> Self {
        Kmv {
            k: k.max(16),
            hashes: BTreeSet::new(),
        }
    }

    /// Observe a key (idempotent per distinct key).
    pub fn observe(&mut self, key: &str) {
        let h = fnv1a64(key);
        self.hashes.insert(h);
        while self.hashes.len() > self.k {
            let max = *self.hashes.iter().next_back().expect("non-empty");
            self.hashes.remove(&max);
        }
    }

    /// Estimated number of distinct keys observed.
    pub fn estimate(&self) -> f64 {
        if self.hashes.len() < self.k {
            return self.hashes.len() as f64;
        }
        let kth = *self.hashes.iter().next_back().expect("k > 0") as f64;
        if kth == 0.0 {
            return self.hashes.len() as f64;
        }
        (self.k as f64 - 1.0) * (u64::MAX as f64) / kth
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, uniform enough for KMV.
fn fnv1a64(key: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in key.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The normalized *shape* of a query: its analyzed terms sorted and
/// deduplicated, joined by spaces. `"patient height"` and
/// `"height patient height"` share one shape, so the shape sketch
/// groups retries and reorderings of the same information need.
pub fn query_shape(terms: &[String]) -> String {
    let mut sorted: Vec<&str> = terms.iter().map(String::as_str).collect();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.join(" ")
}

/// Configuration for [`WorkloadStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Counters per sketch (terms, shapes, zero-result shapes).
    pub sketch_capacity: usize,
    /// Retained windows per sketch.
    pub windows: usize,
    /// Wall-clock length of one window.
    pub window_len: Duration,
    /// Hashes retained by the distinct-term estimator.
    pub distinct_k: usize,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            sketch_capacity: 64,
            windows: 4,
            window_len: Duration::from_secs(60),
            distinct_k: 256,
        }
    }
}

#[derive(Debug)]
struct WorkloadState {
    terms: WindowedSketch,
    shapes: WindowedSketch,
    zero_shapes: WindowedSketch,
    distinct: Kmv,
    window_started: Instant,
}

/// Engine-facing workload aggregate: per-query term/shape/zero-result
/// sketches behind one mutex, plus lock-free totals.
#[derive(Debug)]
pub struct WorkloadStats {
    config: WorkloadConfig,
    state: Mutex<WorkloadState>,
    total_queries: AtomicU64,
    zero_result_queries: AtomicU64,
}

/// A point-in-time view of the workload plane, ready to render.
#[derive(Debug, Clone)]
pub struct WorkloadSnapshot {
    /// Queries recorded since engine start.
    pub total_queries: u64,
    /// Queries that returned zero results since engine start.
    pub zero_result_queries: u64,
    /// Estimated distinct terms seen since engine start (KMV).
    pub distinct_terms_estimate: f64,
    /// Sketch counters per window.
    pub sketch_capacity: usize,
    /// Windows retained (including the active one).
    pub windows_retained: usize,
    /// Configured window length.
    pub window_len: Duration,
    /// Window rotations since engine start.
    pub rotations: u64,
    /// Top query terms across the retained windows.
    pub top_terms: Vec<HeavyHitter>,
    /// Top normalized query shapes across the retained windows.
    pub top_shapes: Vec<HeavyHitter>,
    /// Top zero-result query shapes across the retained windows.
    pub top_zero_shapes: Vec<HeavyHitter>,
}

impl WorkloadStats {
    /// A fresh workload aggregate.
    pub fn new(config: WorkloadConfig) -> Self {
        let state = WorkloadState {
            terms: WindowedSketch::new(config.sketch_capacity, config.windows),
            shapes: WindowedSketch::new(config.sketch_capacity, config.windows),
            zero_shapes: WindowedSketch::new(config.sketch_capacity, config.windows),
            distinct: Kmv::new(config.distinct_k),
            window_started: Instant::now(),
        };
        WorkloadStats {
            config,
            state: Mutex::new(state),
            total_queries: AtomicU64::new(0),
            zero_result_queries: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Record one completed search: its analyzed terms and whether it
    /// returned zero results. The critical section is a few hash-map
    /// probes per term — negligible next to a search.
    pub fn record_query(&self, terms: &[String], zero_results: bool) {
        self.total_queries.fetch_add(1, Ordering::Relaxed);
        if zero_results {
            self.zero_result_queries.fetch_add(1, Ordering::Relaxed);
        }
        let shape = query_shape(terms);
        let mut state = self.state.lock().expect("workload lock");
        if state.window_started.elapsed() >= self.config.window_len {
            state.terms.rotate();
            state.shapes.rotate();
            state.zero_shapes.rotate();
            state.window_started = Instant::now();
        }
        for term in terms {
            state.terms.observe(term);
            state.distinct.observe(term);
        }
        if !shape.is_empty() {
            state.shapes.observe(&shape);
            if zero_results {
                state.zero_shapes.observe(&shape);
            }
        }
    }

    /// Queries recorded since engine start.
    pub fn total_queries(&self) -> u64 {
        self.total_queries.load(Ordering::Relaxed)
    }

    /// Zero-result queries recorded since engine start.
    pub fn zero_result_queries(&self) -> u64 {
        self.zero_result_queries.load(Ordering::Relaxed)
    }

    /// Estimated distinct terms observed since engine start.
    pub fn distinct_terms_estimate(&self) -> f64 {
        self.state
            .lock()
            .expect("workload lock")
            .distinct
            .estimate()
    }

    /// Snapshot the plane: totals plus the top `top_n` entries of each
    /// sketch, windows merged.
    pub fn snapshot(&self, top_n: usize) -> WorkloadSnapshot {
        let state = self.state.lock().expect("workload lock");
        WorkloadSnapshot {
            total_queries: self.total_queries.load(Ordering::Relaxed),
            zero_result_queries: self.zero_result_queries.load(Ordering::Relaxed),
            distinct_terms_estimate: state.distinct.estimate(),
            sketch_capacity: self.config.sketch_capacity,
            windows_retained: state.terms.window_count(),
            window_len: self.config.window_len,
            rotations: state.terms.rotations(),
            top_terms: state.terms.merged().top(top_n),
            top_shapes: state.shapes.merged().top(top_n),
            top_zero_shapes: state.zero_shapes.merged().top(top_n),
        }
    }
}

impl WorkloadSnapshot {
    /// Render as the `/debug/workload` JSON document.
    pub fn to_json(&self) -> String {
        fn hitters(list: &[HeavyHitter]) -> String {
            let items: Vec<String> = list
                .iter()
                .map(|h| {
                    format!(
                        "{{\"key\":\"{}\",\"count\":{},\"error\":{}}}",
                        json::escape(&h.key),
                        h.count,
                        h.error
                    )
                })
                .collect();
            format!("[{}]", items.join(","))
        }
        let zero_rate = if self.total_queries > 0 {
            self.zero_result_queries as f64 / self.total_queries as f64
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"total_queries\":{},\"zero_result_queries\":{},",
                "\"zero_result_rate\":{},\"distinct_terms_estimate\":{},",
                "\"sketch\":{{\"capacity\":{},\"windows_retained\":{},",
                "\"window_seconds\":{},\"rotations\":{}}},",
                "\"top_terms\":{},\"top_shapes\":{},\"top_zero_result_shapes\":{}}}"
            ),
            self.total_queries,
            self.zero_result_queries,
            json::number(zero_rate),
            json::number(self.distinct_terms_estimate),
            self.sketch_capacity,
            self.windows_retained,
            self.window_len.as_secs(),
            self.rotations,
            hitters(&self.top_terms),
            hitters(&self.top_shapes),
            hitters(&self.top_zero_shapes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exact_counts_below_capacity() {
        let mut sketch = SpaceSaving::new(8);
        for _ in 0..5 {
            sketch.observe("patient");
        }
        sketch.observe_n("height", 3);
        assert_eq!(sketch.estimate("patient"), Some((5, 0)));
        assert_eq!(sketch.estimate("height"), Some((3, 0)));
        assert_eq!(sketch.total(), 8);
        let top = sketch.top(10);
        assert_eq!(top[0].key, "patient");
        assert_eq!(top[1].key, "height");
    }

    #[test]
    fn eviction_never_exceeds_capacity_and_overcounts() {
        let mut sketch = SpaceSaving::new(4);
        let mut exact: HashMap<String, u64> = HashMap::new();
        // 26 distinct keys through 4 counters: constant eviction.
        for round in 0..50u64 {
            for c in b'a'..=b'z' {
                let key = ((c as char).to_string()).repeat(1 + (round % 2) as usize);
                sketch.observe(&key);
                *exact.entry(key).or_default() += 1;
            }
        }
        assert!(sketch.len() <= 4);
        let total = sketch.total();
        for hitter in sketch.top(4) {
            let true_count = exact[&hitter.key];
            assert!(hitter.count >= true_count, "estimates never undercount");
            assert!(
                hitter.count - true_count <= total / 4,
                "overcount within total/k"
            );
        }
    }

    #[test]
    fn merge_is_deterministic_and_commutative() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for (sketch, keys) in [
            (&mut a, ["x", "y", "x", "z", "w", "v"].as_slice()),
            (&mut b, ["y", "y", "u", "x", "t"].as_slice()),
        ] {
            for k in keys {
                sketch.observe(k);
            }
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab.top(10), ba.top(10), "merge is commutative");
        assert_eq!(ab.total(), a.total() + b.total());
        let mut again = a.clone();
        again.merge_from(&b);
        assert_eq!(ab.top(10), again.top(10), "merge is deterministic");
    }

    #[test]
    fn windows_rotate_and_forget() {
        let mut w = WindowedSketch::new(8, 2);
        w.observe("old");
        w.rotate();
        w.observe("mid");
        assert_eq!(w.merged().estimate("old"), Some((1, 0)), "still retained");
        w.rotate();
        w.observe("new");
        // Three windows created, two retained: "old" is forgotten.
        assert_eq!(w.window_count(), 2);
        assert_eq!(w.merged().estimate("old"), None);
        assert_eq!(w.merged().estimate("mid"), Some((1, 0)));
        assert_eq!(w.merged().estimate("new"), Some((1, 0)));
        assert_eq!(w.rotations(), 2);
    }

    #[test]
    fn kmv_is_exact_when_small_and_close_when_large() {
        let mut kmv = Kmv::new(64);
        for i in 0..40 {
            kmv.observe(&format!("term-{i}"));
        }
        assert_eq!(kmv.estimate(), 40.0, "exact below k");
        let mut big = Kmv::new(256);
        let n = 10_000;
        for i in 0..n {
            big.observe(&format!("term-{i}"));
            big.observe(&format!("term-{i}")); // duplicates don't count
        }
        let est = big.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.25, "KMV estimate {est} within 25% of {n}");
    }

    #[test]
    fn query_shape_sorts_and_dedups() {
        let terms = vec!["height".into(), "patient".into(), "height".into()];
        assert_eq!(query_shape(&terms), "height patient");
        assert_eq!(query_shape(&[]), "");
    }

    #[test]
    fn workload_stats_record_and_snapshot() {
        let stats = WorkloadStats::new(WorkloadConfig::default());
        let terms = vec!["patient".to_string(), "height".to_string()];
        stats.record_query(&terms, false);
        stats.record_query(&terms, false);
        stats.record_query(&["nonexistent".to_string()], true);
        let snap = stats.snapshot(10);
        assert_eq!(snap.total_queries, 3);
        assert_eq!(snap.zero_result_queries, 1);
        assert_eq!(snap.top_terms[0].count, 2);
        assert_eq!(snap.top_shapes[0].key, "height patient");
        assert_eq!(snap.top_zero_shapes[0].key, "nonexistent");
        assert!(snap.distinct_terms_estimate >= 3.0);
        let json = snap.to_json();
        assert!(json.contains("\"total_queries\":3"), "{json}");
        assert!(json.contains("\"top_zero_result_shapes\""), "{json}");
        assert!(json.contains("\"zero_result_rate\""), "{json}");
        // The document must be machine-consumable, not just grep-able:
        // `doctor` parses it back.
        let doc = crate::json::Json::parse(&json).expect("valid JSON");
        let terms = doc.get("top_terms").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(terms[0].get("key").and_then(|k| k.as_str()), Some("height"));
    }

    #[test]
    fn empty_terms_do_not_pollute_the_shape_sketch() {
        let stats = WorkloadStats::new(WorkloadConfig::default());
        stats.record_query(&[], true);
        let snap = stats.snapshot(10);
        assert_eq!(snap.total_queries, 1);
        assert!(snap.top_shapes.is_empty());
        assert!(snap.top_zero_shapes.is_empty());
    }
}
