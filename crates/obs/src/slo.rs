//! SLO objectives and multi-window burn-rate tracking.
//!
//! An [`SloTracker`] holds two objectives — a p99 latency target and an
//! error budget — and answers "how fast are we spending the budget?"
//! over rolling 5-minute and 1-hour windows, the classic fast/slow
//! burn-rate pair: the 5m window catches sharp regressions quickly, the
//! 1h window confirms sustained ones without flapping.
//!
//! Definitions (per window):
//!
//! * latency burn rate = (fraction of requests slower than the p99
//!   objective) / 1% — at exactly the objective the burn rate is 1.0,
//!   meaning the budget is being consumed exactly as provisioned;
//! * error burn rate = (fraction of requests that failed) / (error
//!   budget fraction).
//!
//! Storage is a fixed ring of per-second slots stamped with the second
//! they describe, so stale slots are skipped rather than zeroed on a
//! timer — recording stays O(1) and lock-held time is tiny.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The service objectives the tracker burns against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// p99 latency objective: at most 1% of requests may take longer.
    pub p99_latency: Duration,
    /// Error budget as a percentage of requests (e.g. `1.0` = 1% of
    /// requests may fail).
    pub error_budget_pct: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            p99_latency: Duration::from_millis(250),
            error_budget_pct: 1.0,
        }
    }
}

/// The two rolling windows: (label, length in seconds).
pub const SLO_WINDOWS: [(&str, u64); 2] = [("5m", 300), ("1h", 3600)];

/// Burn rates above this render as "at cap" — avoids infinities when the
/// budget is zero.
const BURN_CAP: f64 = 1e6;

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Absolute second (since tracker start) this slot describes.
    sec: u64,
    total: u64,
    slow: u64,
    errors: u64,
}

/// Rolling multi-window burn-rate tracker. Cheap to share behind an
/// `Arc`; `record` takes `&self`.
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    t0: Instant,
    slots: Mutex<Vec<Slot>>,
}

/// One window's worth of burn-rate readout.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowBurn {
    /// Window label (`5m`, `1h`).
    pub window: String,
    /// Window length in seconds.
    pub window_secs: u64,
    /// Requests observed in the window.
    pub total: u64,
    /// Requests over the latency objective.
    pub slow: u64,
    /// Failed requests.
    pub errors: u64,
    /// Latency-budget burn rate (1.0 = burning exactly at provision).
    pub latency_burn: f64,
    /// Error-budget burn rate.
    pub error_burn: f64,
}

/// Full tracker readout: the objectives plus one [`WindowBurn`] per
/// rolling window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The latency objective in milliseconds.
    pub p99_objective_ms: u64,
    /// The error budget in percent.
    pub error_budget_pct: f64,
    /// Per-window burn rates, fast window first.
    pub windows: Vec<WindowBurn>,
}

impl SloReport {
    /// True when the fast (first) window is burning budget faster than
    /// provisioned on either axis — the "degraded before down" signal.
    pub fn degraded(&self) -> bool {
        self.windows
            .first()
            .is_some_and(|w| w.latency_burn > 1.0 || w.error_burn > 1.0)
    }

    /// Render as a JSON object for `GET /debug/slo`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"p99_objective_ms\":{},\"error_budget_pct\":{},\"degraded\":{},\"windows\":[",
            self.p99_objective_ms,
            crate::json::number(self.error_budget_pct),
            self.degraded(),
        );
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"window\":\"{}\",\"total\":{},\"slow\":{},\"errors\":{},\"latency_burn\":{},\"error_burn\":{}}}",
                crate::json::escape(&w.window),
                w.total,
                w.slow,
                w.errors,
                crate::json::number(w.latency_burn),
                crate::json::number(w.error_burn),
            );
        }
        out.push_str("]}");
        out
    }
}

impl SloTracker {
    /// A tracker with the given objectives, with both windows empty.
    pub fn new(config: SloConfig) -> SloTracker {
        let len = SLO_WINDOWS.iter().map(|&(_, s)| s).max().unwrap_or(3600) as usize;
        SloTracker {
            config,
            t0: Instant::now(),
            slots: Mutex::new(vec![Slot::default(); len]),
        }
    }

    /// The configured objectives.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Record one finished request.
    pub fn record(&self, latency: Duration, error: bool) {
        self.record_at(self.now_sec(), latency, error);
    }

    /// Current burn rates over every window.
    pub fn report(&self) -> SloReport {
        self.report_at(self.now_sec())
    }

    fn now_sec(&self) -> u64 {
        self.t0.elapsed().as_secs()
    }

    fn record_at(&self, sec: u64, latency: Duration, error: bool) {
        let slow = latency > self.config.p99_latency;
        let mut slots = self.slots.lock().expect("slo lock");
        let len = slots.len() as u64;
        let slot = &mut slots[(sec % len) as usize];
        if slot.sec != sec {
            // The ring has lapped: this slot describes a second that
            // fell out of every window. Reclaim it.
            *slot = Slot {
                sec,
                ..Slot::default()
            };
        }
        slot.total += 1;
        slot.slow += u64::from(slow);
        slot.errors += u64::from(error);
    }

    fn report_at(&self, now_sec: u64) -> SloReport {
        let slots = self.slots.lock().expect("slo lock");
        let windows = SLO_WINDOWS
            .iter()
            .map(|&(label, window_secs)| {
                let oldest = now_sec.saturating_sub(window_secs.saturating_sub(1));
                let (mut total, mut slow, mut errors) = (0u64, 0u64, 0u64);
                for slot in slots.iter() {
                    // `sec == 0` slots are either genuinely second 0 or
                    // never written; both are safe to sum (empty slots
                    // hold zeros).
                    if slot.sec >= oldest && slot.sec <= now_sec {
                        total += slot.total;
                        slow += slot.slow;
                        errors += slot.errors;
                    }
                }
                let latency_burn = burn(slow, total, 0.01);
                let error_burn = burn(errors, total, self.config.error_budget_pct / 100.0);
                WindowBurn {
                    window: label.to_string(),
                    window_secs,
                    total,
                    slow,
                    errors,
                    latency_burn,
                    error_burn,
                }
            })
            .collect();
        SloReport {
            p99_objective_ms: self.config.p99_latency.as_millis() as u64,
            error_budget_pct: self.config.error_budget_pct,
            windows,
        }
    }
}

/// `(bad / total) / budget`, defined as 0 for an empty window and capped
/// (rather than infinite) for a zero budget.
fn burn(bad: u64, total: u64, budget: f64) -> f64 {
    if total == 0 || bad == 0 {
        return 0.0;
    }
    let fraction = bad as f64 / total as f64;
    if budget <= 0.0 {
        return BURN_CAP;
    }
    (fraction / budget).min(BURN_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> SloTracker {
        SloTracker::new(SloConfig {
            p99_latency: Duration::from_millis(100),
            error_budget_pct: 1.0,
        })
    }

    #[test]
    fn empty_tracker_is_healthy() {
        let t = tracker();
        let r = t.report();
        assert!(!r.degraded());
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].window, "5m");
        assert_eq!(r.windows[1].window, "1h");
        assert!(r.windows.iter().all(|w| w.total == 0));
        assert!(r.windows.iter().all(|w| w.latency_burn == 0.0));
    }

    #[test]
    fn burn_rate_of_one_at_exactly_the_budget() {
        let t = tracker();
        // 100 requests, exactly 1 slow → latency burn 1.0 (not over).
        for i in 0..100 {
            let latency = if i == 0 {
                Duration::from_millis(500)
            } else {
                Duration::from_millis(10)
            };
            t.record_at(10, latency, false);
        }
        let r = t.report_at(10);
        assert!((r.windows[0].latency_burn - 1.0).abs() < 1e-9);
        assert!(!r.degraded(), "exactly at budget is not degraded");
        // One more slow request tips it over.
        t.record_at(10, Duration::from_millis(500), false);
        assert!(t.report_at(10).degraded());
    }

    #[test]
    fn error_burn_uses_the_configured_budget() {
        let t = SloTracker::new(SloConfig {
            p99_latency: Duration::from_millis(100),
            error_budget_pct: 10.0,
        });
        for i in 0..100 {
            t.record_at(5, Duration::from_millis(1), i < 5);
        }
        let r = t.report_at(5);
        // 5% errors against a 10% budget: burning at half speed.
        assert!((r.windows[0].error_burn - 0.5).abs() < 1e-9);
        assert!(!r.degraded());
    }

    #[test]
    fn fast_window_forgets_slow_window_remembers() {
        let t = tracker();
        // A burst of errors at second 10…
        for _ in 0..50 {
            t.record_at(10, Duration::from_millis(1), true);
        }
        // …and healthy traffic at second 400 (> 5m later, < 1h later).
        for _ in 0..50 {
            t.record_at(400, Duration::from_millis(1), false);
        }
        let r = t.report_at(400);
        assert_eq!(
            r.windows[0].total, 50,
            "5m window only sees the burst-free tail"
        );
        assert_eq!(r.windows[0].errors, 0);
        assert_eq!(r.windows[1].total, 100, "1h window sees both");
        assert_eq!(r.windows[1].errors, 50);
        assert!(!r.degraded(), "fast window is clean again");
        assert!(r.windows[1].error_burn > 1.0, "slow window still burning");
    }

    #[test]
    fn ring_reclaims_lapped_slots() {
        let t = tracker();
        for _ in 0..10 {
            t.record_at(7, Duration::from_millis(1), true);
        }
        // Same ring slot, one full lap later: old counts must not bleed.
        let lapped = 7 + 3600;
        t.record_at(lapped, Duration::from_millis(1), false);
        let r = t.report_at(lapped);
        assert_eq!(r.windows[1].total, 1);
        assert_eq!(r.windows[1].errors, 0);
    }

    #[test]
    fn zero_budget_caps_rather_than_overflows() {
        let t = SloTracker::new(SloConfig {
            p99_latency: Duration::from_millis(100),
            error_budget_pct: 0.0,
        });
        t.record_at(1, Duration::from_millis(1), true);
        let r = t.report_at(1);
        assert!(r.windows[0].error_burn.is_finite());
        assert!(r.degraded());
    }

    #[test]
    fn report_renders_parseable_json() {
        let t = tracker();
        t.record_at(3, Duration::from_millis(500), true);
        let json_text = t.report_at(3).to_json();
        let v = crate::json::Json::parse(&json_text).expect("valid json");
        assert_eq!(v.get("p99_objective_ms").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
        let windows = v.get("windows").unwrap().as_arr().unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].get("window").unwrap().as_str(), Some("5m"));
        assert_eq!(windows[0].get("total").unwrap().as_u64(), Some(1));
    }
}
