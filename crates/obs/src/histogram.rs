//! Fixed-bucket latency histograms with lock-free observation and
//! optional per-bucket exemplars.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// An exemplar window: within it, only a *worse* (larger) observation
/// replaces a bucket's exemplar; after it, any observation does. Keeps
/// the p99-spike trace id around long enough to scrape, without pinning
/// a stale one forever.
pub const EXEMPLAR_WINDOW: Duration = Duration::from_secs(60);

/// A trace-linked observation attached to one histogram bucket — the
/// OpenMetrics exemplar: "the worst thing this bucket saw recently, and
/// the trace that explains it".
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Trace id of the observation (`/debug/traces/{id}`).
    pub trace_id: String,
    /// The observed value (seconds, for latency histograms).
    pub value: f64,
    /// When it was observed, ms since the Unix epoch.
    pub unix_ms: u64,
}

/// Default latency buckets in seconds — tuned for an interactive search
/// engine: sub-millisecond index probes up to multi-second cold queries.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.000_05, 0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

/// A histogram with fixed upper-bound buckets (plus an implicit `+Inf`
/// bucket), a total count, and a running sum.
///
/// `observe` is wait-free: one linear bucket scan and three relaxed
/// atomic adds (the sum is an `AtomicU64` holding `f64` bits, updated
/// with a CAS loop). Reads produce a consistent-enough
/// [`HistogramSnapshot`] for quantile estimation and rendering.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, strictly increasing, finite.
    bounds: Vec<f64>,
    /// Per-bucket counts (same length as `bounds`, non-cumulative), plus
    /// one trailing slot for the `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    /// Per-bucket exemplar slots (same length as `buckets`). Only
    /// touched by [`Histogram::observe_exemplar`]; plain `observe` stays
    /// wait-free.
    exemplars: Vec<Mutex<Option<Exemplar>>>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given finite upper bounds (must be strictly
    /// increasing and non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..=bounds.len()).map(|_| Mutex::new(None)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// A histogram with the standard [`LATENCY_BUCKETS`].
    pub fn latency() -> Self {
        Histogram::new(LATENCY_BUCKETS)
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let ix = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut old = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// Record a wall-clock duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Record one observation and offer it as the exemplar for its
    /// bucket. Within [`EXEMPLAR_WINDOW`] the worst (largest)
    /// observation wins; once the held exemplar ages out, any
    /// observation replaces it.
    pub fn observe_exemplar(&self, value: f64, trace_id: &str) {
        self.observe(value);
        if trace_id.is_empty() {
            return;
        }
        let ix = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        let now_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let mut slot = self.exemplars[ix].lock().expect("exemplar lock");
        let replace = match &*slot {
            None => true,
            Some(held) => {
                value >= held.value
                    || now_ms.saturating_sub(held.unix_ms) > EXEMPLAR_WINDOW.as_millis() as u64
            }
        };
        if replace {
            *slot = Some(Exemplar {
                trace_id: trace_id.to_string(),
                value,
                unix_ms: now_ms,
            });
        }
    }

    /// Record a duration with its trace id as the exemplar candidate.
    pub fn observe_duration_exemplar(&self, d: Duration, trace_id: &str) {
        self.observe_exemplar(d.as_secs_f64(), trace_id);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// A point-in-time copy for quantile readout and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                .map(|e| e.lock().expect("exemplar lock").clone())
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Convenience: quantile straight off a fresh snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time histogram copy.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; the last entry is the `+Inf`
    /// bucket.
    pub counts: Vec<u64>,
    /// Per-bucket exemplars (same length as `counts`); `None` where no
    /// exemplar-carrying observation landed.
    pub exemplars: Vec<Option<Exemplar>>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimate quantile `q` (in `[0, 1]`) by linear interpolation within
    /// the bucket containing the target rank — the same estimator as
    /// Prometheus's `histogram_quantile`. Returns 0 when empty;
    /// observations beyond the last finite bound clamp to that bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += c;
            if (cumulative as f64) >= rank && c > 0 {
                // Values past the last finite bound are clamped to it.
                if i >= self.bounds.len() {
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let within = (rank - prev as f64) / c as f64;
                return lower + (upper - lower) * within.clamp(0.0, 1.0);
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Cumulative count at or below each finite bound, plus the total as
    /// the trailing `+Inf` entry — the shape Prometheus exposition needs.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for &c in &self.counts {
            acc += c;
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0 (≤1)
        h.observe(1.0); // bucket 0 (≤1, inclusive upper bound)
        h.observe(1.5); // bucket 1 (≤2)
        h.observe(3.0); // bucket 2 (≤4)
        h.observe(99.0); // +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 105.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 10 observations uniformly inside (0, 1]: the whole mass is in
        // the first bucket, so p50 interpolates to its midpoint.
        for _ in 0..10 {
            h.observe(0.7);
        }
        assert!((h.quantile(0.5) - 0.5).abs() < 1e-9);
        assert!((h.quantile(1.0) - 1.0).abs() < 1e-9);

        // Split mass: 5 in (1,2], 5 in (2,4]. p50 sits at the boundary.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..5 {
            h.observe(1.5);
        }
        for _ in 0..5 {
            h.observe(3.0);
        }
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-9);
        // p75 is halfway through the (2,4] bucket: 2 + 0.5·2 = 3.
        assert!((h.quantile(0.75) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_clamps_to_the_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        for _ in 0..4 {
            h.observe(50.0);
        }
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-9);
        assert!((h.quantile(0.99) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn duration_observation() {
        let h = Histogram::latency();
        h.observe_duration(Duration::from_millis(3));
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 0.003).abs() < 1e-9);
    }

    #[test]
    fn concurrent_observes_preserve_count_and_sum() {
        let h = std::sync::Arc::new(Histogram::new(&[0.5, 1.0]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.25);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 1000.0).abs() < 1e-6);
        assert_eq!(h.snapshot().counts[0], 4000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn worst_observation_wins_the_bucket_exemplar() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe_exemplar(2.0, "trace-a");
        h.observe_exemplar(5.0, "trace-b"); // same bucket, worse
        h.observe_exemplar(3.0, "trace-c"); // same bucket, better: loses
        h.observe_exemplar(0.5, "trace-d"); // different bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        let b0 = s.exemplars[0].as_ref().expect("bucket 0 exemplar");
        assert_eq!(b0.trace_id, "trace-d");
        let b1 = s.exemplars[1].as_ref().expect("bucket 1 exemplar");
        assert_eq!(b1.trace_id, "trace-b");
        assert_eq!(b1.value, 5.0);
        assert!(s.exemplars[2].is_none(), "+Inf bucket untouched");
    }

    #[test]
    fn plain_observe_records_no_exemplar() {
        let h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe_exemplar(0.5, ""); // empty trace id: counted, no exemplar
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.exemplars.iter().all(Option::is_none));
    }

    #[test]
    fn overflow_values_exemplar_the_inf_bucket() {
        let h = Histogram::new(&[1.0]);
        h.observe_exemplar(42.0, "spike");
        let s = h.snapshot();
        let inf = s.exemplars[1].as_ref().expect("+Inf exemplar");
        assert_eq!(inf.trace_id, "spike");
        assert!(inf.unix_ms > 0);
    }
}
