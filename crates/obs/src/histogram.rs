//! Fixed-bucket latency histograms with lock-free observation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Default latency buckets in seconds — tuned for an interactive search
/// engine: sub-millisecond index probes up to multi-second cold queries.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.000_05, 0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

/// A histogram with fixed upper-bound buckets (plus an implicit `+Inf`
/// bucket), a total count, and a running sum.
///
/// `observe` is wait-free: one linear bucket scan and three relaxed
/// atomic adds (the sum is an `AtomicU64` holding `f64` bits, updated
/// with a CAS loop). Reads produce a consistent-enough
/// [`HistogramSnapshot`] for quantile estimation and rendering.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, strictly increasing, finite.
    bounds: Vec<f64>,
    /// Per-bucket counts (same length as `bounds`, non-cumulative), plus
    /// one trailing slot for the `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram with the given finite upper bounds (must be strictly
    /// increasing and non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// A histogram with the standard [`LATENCY_BUCKETS`].
    pub fn latency() -> Self {
        Histogram::new(LATENCY_BUCKETS)
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let ix = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut old = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// Record a wall-clock duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// A point-in-time copy for quantile readout and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Convenience: quantile straight off a fresh snapshot.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time histogram copy.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; the last entry is the `+Inf`
    /// bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimate quantile `q` (in `[0, 1]`) by linear interpolation within
    /// the bucket containing the target rank — the same estimator as
    /// Prometheus's `histogram_quantile`. Returns 0 when empty;
    /// observations beyond the last finite bound clamp to that bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cumulative;
            cumulative += c;
            if (cumulative as f64) >= rank && c > 0 {
                // Values past the last finite bound are clamped to it.
                if i >= self.bounds.len() {
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let within = (rank - prev as f64) / c as f64;
                return lower + (upper - lower) * within.clamp(0.0, 1.0);
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Cumulative count at or below each finite bound, plus the total as
    /// the trailing `+Inf` entry — the shape Prometheus exposition needs.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for &c in &self.counts {
            acc += c;
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0 (≤1)
        h.observe(1.0); // bucket 0 (≤1, inclusive upper bound)
        h.observe(1.5); // bucket 1 (≤2)
        h.observe(3.0); // bucket 2 (≤4)
        h.observe(99.0); // +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1, 1]);
        assert_eq!(s.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 105.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 10 observations uniformly inside (0, 1]: the whole mass is in
        // the first bucket, so p50 interpolates to its midpoint.
        for _ in 0..10 {
            h.observe(0.7);
        }
        assert!((h.quantile(0.5) - 0.5).abs() < 1e-9);
        assert!((h.quantile(1.0) - 1.0).abs() < 1e-9);

        // Split mass: 5 in (1,2], 5 in (2,4]. p50 sits at the boundary.
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..5 {
            h.observe(1.5);
        }
        for _ in 0..5 {
            h.observe(3.0);
        }
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-9);
        // p75 is halfway through the (2,4] bucket: 2 + 0.5·2 = 3.
        assert!((h.quantile(0.75) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_clamps_to_the_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        for _ in 0..4 {
            h.observe(50.0);
        }
        assert!((h.quantile(0.5) - 2.0).abs() < 1e-9);
        assert!((h.quantile(0.99) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::latency();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn duration_observation() {
        let h = Histogram::latency();
        h.observe_duration(Duration::from_millis(3));
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 0.003).abs() < 1e-9);
    }

    #[test]
    fn concurrent_observes_preserve_count_and_sum() {
        let h = std::sync::Arc::new(Histogram::new(&[0.5, 1.0]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.observe(0.25);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 1000.0).abs() < 1e-6);
        assert_eq!(h.snapshot().counts[0], 4000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }
}
