//! Per-query resource accounting.
//!
//! A [`ResourceLedger`] answers "what did this one search actually
//! cost?" in units the latency histograms cannot: CPU time actually
//! scheduled (as opposed to wall time spent queued or blocked) and
//! allocator traffic. Each thread that works on a request opens a
//! [`LedgerProbe`] when it starts and reads the delta when it finishes;
//! the engine merges the per-thread deltas into one ledger that travels
//! with the trace — into the root span's annotations, the JSONL event
//! log, the `explain=1` trace, and the `X-Schemr-Cost` response header.
//!
//! CPU time comes from `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` — a
//! direct `extern "C"` call into the libc that std already links, so the
//! crate stays dependency-free. Non-unix targets read 0. Allocation
//! counters come from [`crate::alloc`] and read 0 unless a counting
//! allocator is installed.

use crate::alloc::{thread_alloc_bytes, thread_alloc_count};

/// CPU time consumed by the calling thread, in microseconds.
///
/// Returns 0 on targets without `CLOCK_THREAD_CPUTIME_ID`.
pub fn thread_cpu_us() -> u64 {
    #[cfg(unix)]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = if cfg!(target_os = "macos") { 16 } else { 3 };
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: ts is a valid, writable C-layout timespec.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc == 0 {
            (ts.tv_sec as u64).saturating_mul(1_000_000) + (ts.tv_nsec as u64) / 1_000
        } else {
            0
        }
    }
    #[cfg(not(unix))]
    {
        0
    }
}

/// Wall cost of one `thread_cpu_us()` call on this machine, measured
/// once per process. On bare metal the thread-CPU clock is a few hundred
/// nanoseconds; under syscall-intercepting sandboxes (gVisor, qemu-user,
/// some seccomp setups) it is tens of microseconds because it can never
/// be a vDSO read. Probing policy keys off this so per-query accounting
/// stays cheap everywhere instead of fast on the developer's laptop and
/// 10% of a query in production sandboxes.
pub fn thread_clock_cost() -> std::time::Duration {
    static COST: std::sync::OnceLock<std::time::Duration> = std::sync::OnceLock::new();
    *COST.get_or_init(|| {
        const CALLS: u32 = 16;
        let start = std::time::Instant::now();
        for _ in 0..CALLS {
            std::hint::black_box(thread_cpu_us());
        }
        start.elapsed() / CALLS
    })
}

/// How deeply a query's threads read the thread-CPU clock. Allocation
/// counters are thread-local cell reads and are always collected; only
/// the clock — a real syscall — is rationed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum CpuProbeDepth {
    /// Decide from [`thread_clock_cost`] at engine construction: `Full`
    /// when a clock read is cheap (≤ [`Self::FULL_BUDGET`]), otherwise
    /// `RootOnly`.
    #[default]
    Auto,
    /// Clock reads on the root thread, every phase boundary, and every
    /// parallel match worker — complete attribution.
    Full,
    /// Clock reads on the root thread only (2 per query). Phase spans
    /// and workers still carry allocation deltas, but their `cpu_us`
    /// stays 0 and the query total covers the root thread alone.
    RootOnly,
    /// Never read the clock; `cpu_us` is 0 everywhere.
    Off,
}

impl CpuProbeDepth {
    /// Per-call cost under which `Auto` picks `Full`.
    pub const FULL_BUDGET: std::time::Duration = std::time::Duration::from_micros(3);

    /// Collapse `Auto` against the measured clock cost.
    pub fn resolve(self) -> CpuProbeDepth {
        match self {
            CpuProbeDepth::Auto => {
                if thread_clock_cost() <= Self::FULL_BUDGET {
                    CpuProbeDepth::Full
                } else {
                    CpuProbeDepth::RootOnly
                }
            }
            other => other,
        }
    }
}

/// What one search cost, summed across every thread that worked on it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLedger {
    /// Scheduled CPU time in microseconds (can exceed wall time under
    /// parallel matching).
    pub cpu_us: u64,
    /// Allocation events (alloc/alloc_zeroed/realloc calls).
    pub alloc_count: u64,
    /// Bytes requested from the allocator.
    pub alloc_bytes: u64,
}

impl ResourceLedger {
    /// True when nothing was recorded (e.g. tracing disabled).
    pub fn is_zero(&self) -> bool {
        *self == ResourceLedger::default()
    }

    /// Fold another thread's delta into this ledger.
    pub fn merge(&mut self, other: &ResourceLedger) {
        self.cpu_us += other.cpu_us;
        self.alloc_count += other.alloc_count;
        self.alloc_bytes += other.alloc_bytes;
    }

    /// Compact `k=v;…` form for the `X-Schemr-Cost` response header.
    pub fn header_value(&self, wall_us: u64) -> String {
        format!(
            "wall_us={wall_us};cpu_us={};alloc={};alloc_bytes={}",
            self.cpu_us, self.alloc_count, self.alloc_bytes
        )
    }
}

/// A point-in-time reading of the calling thread's resource counters.
/// Take one at the start of a unit of work; [`LedgerProbe::delta`] at the
/// end yields that thread's contribution to the request ledger.
#[derive(Debug, Clone, Copy)]
pub struct LedgerProbe {
    /// `None` when this probe was opened without CPU accounting — the
    /// delta's `cpu_us` is then 0 by construction, not "really fast".
    cpu_us: Option<u64>,
    alloc_count: u64,
    alloc_bytes: u64,
}

impl LedgerProbe {
    /// Snapshot the calling thread's counters, including the CPU clock.
    pub fn start() -> LedgerProbe {
        Self::start_with_cpu(true)
    }

    /// Snapshot the calling thread's counters; read the CPU clock only
    /// when `cpu` is set. Allocation counters are always read — they are
    /// plain thread-local loads, orders of magnitude cheaper than the
    /// clock syscall that [`CpuProbeDepth`] rations.
    pub fn start_with_cpu(cpu: bool) -> LedgerProbe {
        LedgerProbe {
            cpu_us: cpu.then(thread_cpu_us),
            alloc_count: thread_alloc_count(),
            alloc_bytes: thread_alloc_bytes(),
        }
    }

    /// Resources the calling thread spent since [`LedgerProbe::start`].
    /// Must be read on the same thread that started the probe.
    pub fn delta(&self) -> ResourceLedger {
        ResourceLedger {
            cpu_us: self
                .cpu_us
                .map_or(0, |start| thread_cpu_us().saturating_sub(start)),
            alloc_count: thread_alloc_count().saturating_sub(self.alloc_count),
            alloc_bytes: thread_alloc_bytes().saturating_sub(self.alloc_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_advances_under_load() {
        let before = thread_cpu_us();
        // Burn a little CPU; volatile-ish accumulator defeats constant
        // folding.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        assert!(std::hint::black_box(acc) != 1);
        let after = thread_cpu_us();
        assert!(after >= before);
        #[cfg(unix)]
        assert!(after > before, "2M multiplies must consume CPU time");
    }

    #[test]
    fn cpu_time_is_per_thread() {
        // A sleeping thread accrues (nearly) no CPU while a spinning
        // sibling does — the clock must not be process-wide.
        let spin = std::thread::spawn(|| {
            let p = LedgerProbe::start();
            let mut acc = 0u64;
            for i in 0..4_000_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(acc);
            p.delta().cpu_us
        });
        let idle_probe = LedgerProbe::start();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let idle = idle_probe.delta().cpu_us;
        let spun = spin.join().unwrap();
        #[cfg(unix)]
        assert!(
            spun > idle || spun > 1_000,
            "spinner ({spun}µs) should out-consume sleeper ({idle}µs)"
        );
        let _ = (spun, idle);
    }

    #[test]
    fn ledger_merges_and_renders() {
        let mut total = ResourceLedger::default();
        assert!(total.is_zero());
        total.merge(&ResourceLedger {
            cpu_us: 120,
            alloc_count: 7,
            alloc_bytes: 4096,
        });
        total.merge(&ResourceLedger {
            cpu_us: 80,
            alloc_count: 3,
            alloc_bytes: 1024,
        });
        assert!(!total.is_zero());
        assert_eq!(total.cpu_us, 200);
        assert_eq!(total.alloc_count, 10);
        assert_eq!(total.alloc_bytes, 5120);
        assert_eq!(
            total.header_value(950),
            "wall_us=950;cpu_us=200;alloc=10;alloc_bytes=5120"
        );
    }

    #[test]
    fn probe_delta_never_underflows() {
        let p = LedgerProbe::start();
        let d = p.delta();
        assert!(d.cpu_us < 1_000_000, "fresh probe delta is small: {d:?}");
    }

    #[test]
    fn cpu_free_probe_reads_zero_cpu() {
        let p = LedgerProbe::start_with_cpu(false);
        let mut acc = 0u64;
        for i in 0..1_000_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(acc);
        assert_eq!(p.delta().cpu_us, 0, "no clock read, no cpu delta");
    }

    #[test]
    fn auto_depth_resolves_to_a_concrete_depth() {
        let resolved = CpuProbeDepth::Auto.resolve();
        assert_ne!(resolved, CpuProbeDepth::Auto);
        // Explicit settings pass through untouched.
        assert_eq!(CpuProbeDepth::Full.resolve(), CpuProbeDepth::Full);
        assert_eq!(CpuProbeDepth::Off.resolve(), CpuProbeDepth::Off);
        // The calibration itself is memoized and consistent.
        assert_eq!(thread_clock_cost(), thread_clock_cost());
    }
}
