//! Span-stack sampling profiler.
//!
//! A [`Profiler`] runs one background thread that, at a configurable
//! rate, asks a [`StackSource`] (in practice the [`crate::Tracer`]'s
//! live-trace registry) for every currently-open span stack and folds
//! the answers into flamegraph-compatible aggregates:
//!
//! ```text
//! search;matching;match_chunk 421
//! search;candidate_extraction 57
//! ```
//!
//! Unlike a signal-based profiler there is no frame-pointer walking and
//! no symbolization — the "stacks" are the request span trees the code
//! already maintains, so every sample lands on a named phase and the
//! whole thing stays dependency-free and async-signal-safety-free.
//!
//! Aggregates are cumulative; callers that want a window (the
//! `/debug/profile?ms=N` handler) take a [`ProfileSnapshot`] before and
//! after and diff them with [`ProfileSnapshot::since`].

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default sampling rate. A prime, so the sampler cannot phase-lock
/// with millisecond-aligned periodic work.
pub const DEFAULT_PROFILE_HZ: u32 = 97;

/// Anything that can enumerate the currently-open span stacks, one
/// folded `a;b;c` string per live leaf span. Implemented by
/// [`crate::Tracer`].
pub trait StackSource: Send + Sync {
    fn sample_stacks(&self) -> Vec<String>;
}

/// A point-in-time copy of the profiler's aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// Sampling ticks taken so far (including ticks that saw no live
    /// trace).
    pub ticks: u64,
    /// Folded stack → number of samples in which it was live.
    pub stacks: BTreeMap<String, u64>,
}

impl ProfileSnapshot {
    /// The samples accumulated after `earlier` was taken.
    pub fn since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let stacks = self
            .stacks
            .iter()
            .filter_map(|(name, &n)| {
                let delta = n.saturating_sub(earlier.stacks.get(name).copied().unwrap_or(0));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect();
        ProfileSnapshot {
            ticks: self.ticks.saturating_sub(earlier.ticks),
            stacks,
        }
    }

    /// Total sample weight across all stacks.
    pub fn total_weight(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// Render in folded-stack format (`stack count`, one per line) —
    /// pipe straight into `flamegraph.pl` / speedscope.
    pub fn render_folded(&self) -> String {
        let mut out = String::with_capacity(self.stacks.len() * 48);
        for (stack, count) in &self.stacks {
            let _ = writeln!(out, "{stack} {count}");
        }
        out
    }
}

#[derive(Debug)]
struct Shared {
    stop: AtomicBool,
    ticks: AtomicU64,
    agg: Mutex<BTreeMap<String, u64>>,
}

/// The background sampler. Dropping it stops and joins the thread.
#[derive(Debug)]
pub struct Profiler {
    shared: Arc<Shared>,
    hz: u32,
    handle: Option<JoinHandle<()>>,
}

impl Profiler {
    /// Start sampling `source` at `hz` samples per second (clamped to
    /// 1..=1000).
    pub fn start(source: Arc<dyn StackSource>, hz: u32) -> Profiler {
        let hz = hz.clamp(1, 1000);
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            agg: Mutex::new(BTreeMap::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let period = Duration::from_secs_f64(1.0 / f64::from(hz));
        let handle = std::thread::Builder::new()
            .name("schemr-profiler".into())
            .spawn(move || sampler_loop(source, thread_shared, period))
            .expect("spawn profiler thread");
        Profiler {
            shared,
            hz,
            handle: Some(handle),
        }
    }

    /// The (clamped) sampling rate.
    pub fn hz(&self) -> u32 {
        self.hz
    }

    /// Copy the cumulative aggregates.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            ticks: self.shared.ticks.load(Ordering::Relaxed),
            stacks: self.shared.agg.lock().expect("profiler lock").clone(),
        }
    }

    /// Block for `window`, then return only the samples taken during it
    /// — the `/debug/profile?ms=N` primitive.
    pub fn profile_window(&self, window: Duration) -> ProfileSnapshot {
        let before = self.snapshot();
        std::thread::sleep(window);
        self.snapshot().since(&before)
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn sampler_loop(source: Arc<dyn StackSource>, shared: Arc<Shared>, period: Duration) {
    // Sleep in bounded slices so Drop never waits a full (possibly 1s)
    // period to join. The cap only matters below ~40 Hz — at higher
    // rates the remaining time to the next tick is shorter than the
    // slice, so the loop wakes exactly once per period instead of
    // burning extra context switches (which cost real query latency on
    // small hosts where the sampler shares cores with match workers).
    const SLICE: Duration = Duration::from_millis(25);
    let mut next = Instant::now() + period;
    loop {
        while Instant::now() < next {
            if shared.stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(
                SLICE.min(
                    next.saturating_duration_since(Instant::now())
                        .max(Duration::from_micros(100)),
                ),
            );
        }
        next += period;
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let stacks = source.sample_stacks();
        shared.ticks.fetch_add(1, Ordering::Relaxed);
        if !stacks.is_empty() {
            let mut agg = shared.agg.lock().expect("profiler lock");
            for stack in stacks {
                *agg.entry(stack).or_insert(0) += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSource(Vec<String>);
    impl StackSource for FixedSource {
        fn sample_stacks(&self) -> Vec<String> {
            self.0.clone()
        }
    }

    #[test]
    fn profiler_accumulates_and_windows() {
        let source = Arc::new(FixedSource(vec![
            "search;matching;match_chunk".into(),
            "search;matching;match_chunk".into(),
            "search;candidate_extraction".into(),
        ]));
        let profiler = Profiler::start(source, 200);
        let window = profiler.profile_window(Duration::from_millis(120));
        assert!(window.ticks > 0, "sampler must have ticked");
        assert_eq!(
            window.stacks.get("search;matching;match_chunk").copied(),
            Some(window.ticks * 2),
        );
        assert_eq!(
            window.stacks.get("search;candidate_extraction").copied(),
            Some(window.ticks),
        );
        let folded = window.render_folded();
        assert!(folded.contains("search;matching;match_chunk "), "{folded}");
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn empty_source_yields_no_stacks_but_ticks() {
        let profiler = Profiler::start(Arc::new(FixedSource(vec![])), 500);
        let window = profiler.profile_window(Duration::from_millis(50));
        assert!(window.ticks > 0);
        assert_eq!(window.total_weight(), 0);
        assert_eq!(window.render_folded(), "");
    }

    #[test]
    fn snapshot_diff_is_order_safe() {
        let a = ProfileSnapshot {
            ticks: 10,
            stacks: [("s".to_string(), 4u64)].into_iter().collect(),
        };
        let b = ProfileSnapshot {
            ticks: 25,
            stacks: [("s".to_string(), 9u64), ("t".to_string(), 2u64)]
                .into_iter()
                .collect(),
        };
        let d = b.since(&a);
        assert_eq!(d.ticks, 15);
        assert_eq!(d.stacks.get("s"), Some(&5));
        assert_eq!(d.stacks.get("t"), Some(&2));
        // Diffing the wrong way round saturates instead of panicking.
        let r = a.since(&b);
        assert_eq!(r.ticks, 0);
        assert!(r.stacks.is_empty());
    }

    #[test]
    fn folded_rendering_is_stable_across_insertion_order() {
        // The folded output feeds diff-based tooling (flamegraph diffs,
        // golden files in CI), so two snapshots with the same content
        // must render byte-identically no matter how the aggregates were
        // accumulated.
        let forward = ProfileSnapshot {
            ticks: 9,
            stacks: [
                ("search;candidate_extraction".to_string(), 3u64),
                ("search;matching;match_chunk".to_string(), 5),
                ("search;tightness_scoring".to_string(), 1),
            ]
            .into_iter()
            .collect(),
        };
        let reversed = ProfileSnapshot {
            ticks: 9,
            stacks: [
                ("search;tightness_scoring".to_string(), 1u64),
                ("search;matching;match_chunk".to_string(), 5),
                ("search;candidate_extraction".to_string(), 3),
            ]
            .into_iter()
            .collect(),
        };
        assert_eq!(forward.render_folded(), reversed.render_folded());
        let rendered = forward.render_folded();
        let lines: Vec<&str> = rendered.lines().map(|l| l.trim()).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "folded stacks render in sorted order");
        assert_eq!(
            forward.render_folded(),
            "search;candidate_extraction 3\nsearch;matching;match_chunk 5\nsearch;tightness_scoring 1\n"
        );
    }

    #[test]
    fn identical_workloads_fold_to_identical_stack_names() {
        // Two runs of the same span structure must sample to the same
        // folded names — the profile of a repeated workload should diff
        // clean, with only the counts moving.
        let run = |trace_id: &str| {
            let ctx = Arc::new(crate::TraceContext::new(trace_id.into()));
            let root = ctx.root_span("search");
            let matching = root.child("matching");
            let _w0 = ctx.child_of(matching.index(), "match_chunk");
            let _w1 = ctx.child_of(matching.index(), "match_chunk");
            let mut stacks = ctx.open_stacks();
            stacks.sort_unstable();
            stacks
        };
        let first = run("stable-1");
        let second = run("stable-2");
        assert_eq!(first, second);
        assert_eq!(
            first,
            vec![
                "search;matching;match_chunk".to_string(),
                "search;matching;match_chunk".to_string(),
            ]
        );
    }

    #[test]
    fn drop_joins_promptly_even_at_low_hz() {
        let profiler = Profiler::start(Arc::new(FixedSource(vec![])), 1);
        let t0 = Instant::now();
        drop(profiler);
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "drop must not wait out a full 1 Hz period"
        );
    }
}
