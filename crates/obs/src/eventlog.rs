//! Durable append-only search-history log.
//!
//! One JSONL record per completed search: the normalized query, candidate
//! counts, per-phase timings, and the top-k result IDs with their
//! per-matcher scores. This is the raw material for the ROADMAP's weight
//! learning — a logistic-regression pass over (per-matcher score, was the
//! result clicked/kept) pairs needs exactly these rows — and for
//! `schemr-cli tracelog replay`, which re-executes logged queries against
//! the current engine and diffs the result lists.
//!
//! Records carry a schema version (`"v":1`) so future fields can be added
//! without breaking replay of old logs. Rotation is size-based: when an
//! append would push the current file past `max_bytes`, the file is
//! renamed to `<path>.N` (N increasing, so `.1` is the oldest) and a
//! fresh file is started. Each record is written with a single
//! `write_all` of one complete line under a mutex, so concurrent writers
//! can never interleave partial lines.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::{self, Json};
use crate::memsize::DeepSize;

/// Event-log record schema version written as `"v"` in every line.
pub const EVENT_SCHEMA_VERSION: u64 = 1;

/// One result row inside a [`SearchEvent`]: a ranked hit plus the score
/// each matcher contributed (keyed by matcher name).
#[derive(Debug, Clone, PartialEq)]
pub struct EventResult {
    pub id: String,
    pub score: f64,
    /// `(matcher name, per-matcher strength)` in ensemble order.
    pub matcher_scores: Vec<(String, f64)>,
}

impl DeepSize for EventResult {
    fn deep_size_of_children(&self) -> usize {
        self.id.deep_size_of_children() + self.matcher_scores.deep_size_of_children()
    }
}

impl EventResult {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"score\":{},\"matchers\":{{",
            json::escape(&self.id),
            json::number(self.score),
        );
        for (i, (name, score)) in self.matcher_scores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json::escape(name), json::number(*score));
        }
        out.push_str("}}");
        out
    }

    fn from_json(v: &Json) -> Option<EventResult> {
        let id = v.get("id")?.as_str()?.to_string();
        let score = v.get("score")?.as_f64()?;
        let matcher_scores = v
            .get("matchers")
            .and_then(Json::as_obj)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, val)| Some((k.clone(), val.as_f64()?)))
                    .collect()
            })
            .unwrap_or_default();
        Some(EventResult {
            id,
            score,
            matcher_scores,
        })
    }
}

/// One search-history record (one JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchEvent {
    /// Trace id the record belongs to.
    pub trace_id: String,
    /// Wall-clock time of the search, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Normalized query text.
    pub query: String,
    /// Phase 1 hit count.
    pub candidates_from_index: usize,
    /// Candidates that reached Phase 2/3.
    pub candidates_evaluated: usize,
    /// `(phase name, duration in µs)`.
    pub phase_us: Vec<(String, u64)>,
    /// End-to-end duration in µs.
    pub total_us: u64,
    /// Top-k results with per-matcher scores.
    pub results: Vec<EventResult>,
    /// Scheduled CPU time across the search's threads, µs (ledger;
    /// 0 in records written before the ledger existed).
    pub cpu_us: u64,
    /// Allocation events attributed to the search (ledger).
    pub alloc_count: u64,
    /// Bytes requested from the allocator (ledger).
    pub alloc_bytes: u64,
    /// Free-form `(key, value)` annotations. Empty for ordinary search
    /// records; maintenance records (e.g. `query = "<merge>"`) carry
    /// their before/after measurements here. Serialized only when
    /// non-empty, so ordinary lines are unchanged and old readers that
    /// ignore unknown fields keep parsing.
    pub tags: Vec<(String, String)>,
}

impl SearchEvent {
    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192 + self.results.len() * 64);
        let _ = write!(
            out,
            "{{\"v\":{},\"trace_id\":\"{}\",\"unix_ms\":{},\"query\":\"{}\",\"candidates_from_index\":{},\"candidates_evaluated\":{},\"total_us\":{},\"cpu_us\":{},\"alloc_count\":{},\"alloc_bytes\":{},\"phases\":{{",
            EVENT_SCHEMA_VERSION,
            json::escape(&self.trace_id),
            self.unix_ms,
            json::escape(&self.query),
            self.candidates_from_index,
            self.candidates_evaluated,
            self.total_us,
            self.cpu_us,
            self.alloc_count,
            self.alloc_bytes,
        );
        for (i, (name, us)) in self.phase_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json::escape(name), us);
        }
        out.push_str("},\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&r.to_json());
        }
        out.push(']');
        if !self.tags.is_empty() {
            out.push_str(",\"tags\":{");
            for (i, (key, value)) in self.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json::escape(key), json::escape(value));
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parse one JSONL line back into a record. Returns `None` for lines
    /// that don't parse or miss required fields (replay skips them).
    pub fn from_json_line(line: &str) -> Option<SearchEvent> {
        let v = Json::parse(line.trim()).ok()?;
        // Unknown future versions are still read best-effort; the
        // required fields below are the v1 contract.
        let trace_id = v.get("trace_id")?.as_str()?.to_string();
        let query = v.get("query")?.as_str()?.to_string();
        let unix_ms = v.get("unix_ms").and_then(Json::as_u64).unwrap_or(0);
        let total_us = v.get("total_us").and_then(Json::as_u64).unwrap_or(0);
        let candidates_from_index = v
            .get("candidates_from_index")
            .and_then(Json::as_u64)
            .unwrap_or(0) as usize;
        let candidates_evaluated = v
            .get("candidates_evaluated")
            .and_then(Json::as_u64)
            .unwrap_or(0) as usize;
        let phase_us = v
            .get("phases")
            .and_then(Json::as_obj)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, val)| Some((k.clone(), val.as_u64()?)))
                    .collect()
            })
            .unwrap_or_default();
        let results = v
            .get("results")
            .and_then(Json::as_arr)
            .map(|items| items.iter().filter_map(EventResult::from_json).collect())
            .unwrap_or_default();
        // Ledger fields arrived after v1 shipped; absent in old records.
        let cpu_us = v.get("cpu_us").and_then(Json::as_u64).unwrap_or(0);
        let alloc_count = v.get("alloc_count").and_then(Json::as_u64).unwrap_or(0);
        let alloc_bytes = v.get("alloc_bytes").and_then(Json::as_u64).unwrap_or(0);
        let tags = v
            .get("tags")
            .and_then(Json::as_obj)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, val)| Some((k.clone(), val.as_str()?.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        Some(SearchEvent {
            trace_id,
            unix_ms,
            query,
            candidates_from_index,
            candidates_evaluated,
            phase_us,
            total_us,
            results,
            cpu_us,
            alloc_count,
            alloc_bytes,
            tags,
        })
    }
}

struct LogInner {
    file: File,
    /// Bytes written to the current file so far.
    written: u64,
}

/// Append-only JSONL event log with size-based rotation.
#[derive(Debug)]
pub struct EventLog {
    path: PathBuf,
    max_bytes: u64,
    inner: Mutex<LogInner>,
}

impl std::fmt::Debug for LogInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogInner")
            .field("written", &self.written)
            .finish()
    }
}

impl EventLog {
    /// Open (creating if needed) the log at `path`. `max_bytes` bounds
    /// the size of the active file; a record that would push it past the
    /// bound triggers rotation first. Rotated files never exceed
    /// `max_bytes` plus one record.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<EventLog> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        Ok(EventLog {
            path,
            max_bytes: max_bytes.max(1),
            inner: Mutex::new(LogInner { file, written }),
        })
    }

    /// Path of the active log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written to the active file so far — the figure
    /// `/debug/memory` reports as the log's on-disk residency (rotated
    /// files are bounded separately by `max_bytes` each).
    pub fn written_bytes(&self) -> u64 {
        self.inner.lock().expect("event log lock").written
    }

    /// Append one record as a single line. Returns any I/O error; the
    /// caller (the tracer) treats failures as non-fatal.
    pub fn append(&self, event: &SearchEvent) -> io::Result<()> {
        let mut line = event.to_json();
        line.push('\n');
        let mut guard = self.inner.lock().expect("event log lock");
        let inner = &mut *guard;
        if inner.written > 0 && inner.written + line.len() as u64 > self.max_bytes {
            // Rotate: shift the current file to the next free `.N`.
            let next = self.next_rotation_index();
            let rotated = rotated_path(&self.path, next);
            // Flush before rename so the rotated file is complete.
            inner.file.flush()?;
            std::fs::rename(&self.path, rotated)?;
            inner.file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)?;
            inner.written = 0;
        }
        // One write_all per line: concurrent appends serialize on the
        // mutex, so no reader ever sees a torn line.
        inner.file.write_all(line.as_bytes())?;
        inner.written += line.len() as u64;
        Ok(())
    }

    fn next_rotation_index(&self) -> u64 {
        (1..)
            .find(|&n| !rotated_path(&self.path, n).exists())
            .unwrap_or(1)
    }

    /// All records in chronological order: rotated files `.1 .. .N`
    /// first, then the active file. Unparseable lines are skipped.
    pub fn read_events(&self) -> io::Result<Vec<SearchEvent>> {
        // Flush buffered bytes so readers in the same process see them.
        self.inner.lock().expect("event log lock").file.flush()?;
        read_events_at(&self.path)
    }
}

fn rotated_path(path: &Path, n: u64) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".{n}"));
    PathBuf::from(os)
}

/// Replay reader: read every record for the log at `path` (rotated files
/// in order, then the active file). Standalone so the CLI can read a log
/// without opening it for writing. A path with neither an active file
/// nor rotated siblings is `NotFound`, not an empty log.
pub fn read_events_at(path: &Path) -> io::Result<Vec<SearchEvent>> {
    let mut files: Vec<PathBuf> = Vec::new();
    for n in 1.. {
        let rotated = rotated_path(path, n);
        if rotated.exists() {
            files.push(rotated);
        } else {
            break;
        }
    }
    if path.exists() {
        files.push(path.to_path_buf());
    } else if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no event log at {}", path.display()),
        ));
    }
    let mut events = Vec::new();
    for file in files {
        let reader = BufReader::new(File::open(&file)?);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if let Some(event) = SearchEvent::from_json_line(&line) {
                events.push(event);
            }
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> SearchEvent {
        SearchEvent {
            trace_id: format!("t{i}"),
            unix_ms: 1_000 + i as u64,
            query: format!("customer order {i}"),
            candidates_from_index: 10,
            candidates_evaluated: 5,
            phase_us: vec![
                ("candidate_extraction".into(), 120),
                ("matching".into(), 480),
                ("tightness".into(), 60),
            ],
            total_us: 700,
            results: vec![EventResult {
                id: format!("schema-{i}"),
                score: 0.75,
                matcher_scores: vec![("name".into(), 0.8), ("structure".into(), 0.7)],
            }],
            cpu_us: 650,
            alloc_count: 42,
            alloc_bytes: 16_384,
            tags: Vec::new(),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("schemr-obs-eventlog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_records() {
        let event = sample(3);
        let line = event.to_json();
        assert!(!line.contains("\"tags\""), "empty tags are not serialized");
        let parsed = SearchEvent::from_json_line(&line).expect("parses");
        assert_eq!(parsed, event);
    }

    #[test]
    fn tagged_maintenance_records_round_trip() {
        // The shape `maybe_merge` writes: a `<merge>` query with the
        // before/after measurements as tags and no results.
        let event = SearchEvent {
            trace_id: "merge-r3".into(),
            unix_ms: 2_000,
            query: "<merge>".into(),
            candidates_from_index: 0,
            candidates_evaluated: 0,
            phase_us: vec![("merge".into(), 1_234)],
            total_us: 1_234,
            results: Vec::new(),
            cpu_us: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            tags: vec![
                ("tombstone_ratio_before".into(), "0.400".into()),
                ("tombstone_ratio_after".into(), "0.000".into()),
            ],
        };
        let line = event.to_json();
        assert!(line.contains("\"tags\""), "{line}");
        let parsed = SearchEvent::from_json_line(&line).expect("parses");
        assert_eq!(parsed, event);
        // Readers of pre-tags logs: a line without tags parses to empty.
        assert!(SearchEvent::from_json_line(&sample(0).to_json())
            .unwrap()
            .tags
            .is_empty());
    }

    #[test]
    fn pre_ledger_v1_records_still_parse() {
        // A `"v":1` line exactly as written before the ledger fields
        // existed: it must replay with the ledger defaulted to zero.
        let old = "{\"v\":1,\"trace_id\":\"t9\",\"unix_ms\":1000,\"query\":\"customer order\",\
                   \"candidates_from_index\":10,\"candidates_evaluated\":5,\"total_us\":700,\
                   \"phases\":{\"candidate_extraction\":120,\"matching\":480},\
                   \"results\":[{\"id\":\"s1\",\"score\":0.75,\"matchers\":{\"name\":0.8}}]}";
        let parsed = SearchEvent::from_json_line(old).expect("old records parse");
        assert_eq!(parsed.trace_id, "t9");
        assert_eq!(parsed.total_us, 700);
        assert_eq!(parsed.phase_us.len(), 2);
        assert_eq!(parsed.results[0].id, "s1");
        assert_eq!(parsed.cpu_us, 0);
        assert_eq!(parsed.alloc_count, 0);
        assert_eq!(parsed.alloc_bytes, 0);
    }

    #[test]
    fn old_and_new_records_coexist_in_one_log() {
        let dir = tempdir("mixed");
        let path = dir.join("events.jsonl");
        // Hand-write an old-format line, then append a new-format one.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(
                f,
                "{{\"v\":1,\"trace_id\":\"old\",\"unix_ms\":1,\"query\":\"q\",\"total_us\":5,\"phases\":{{}},\"results\":[]}}"
            )
            .unwrap();
        }
        let log = EventLog::open(&path, 1 << 20).unwrap();
        log.append(&sample(1)).unwrap();
        let events = log.read_events().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].trace_id, "old");
        assert_eq!(events[0].cpu_us, 0);
        assert_eq!(events[1].cpu_us, 650);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn append_then_read_back() {
        let dir = tempdir("rw");
        let log = EventLog::open(dir.join("events.jsonl"), 1 << 20).unwrap();
        for i in 0..4 {
            log.append(&sample(i)).unwrap();
        }
        let events = log.read_events().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].trace_id, "t0");
        assert_eq!(events[3].trace_id, "t3");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn skips_corrupt_lines() {
        let dir = tempdir("corrupt");
        let path = dir.join("events.jsonl");
        let log = EventLog::open(&path, 1 << 20).unwrap();
        log.append(&sample(0)).unwrap();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "{{ not json").unwrap();
        }
        log.append(&sample(1)).unwrap();
        let events = log.read_events().unwrap();
        assert_eq!(events.len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }
}
