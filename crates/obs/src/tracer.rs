//! The `schemr-trace` facade: per-request trace lifecycle management.
//!
//! A [`Tracer`] owns everything a running engine needs for per-request
//! observability: a monotonic trace-id source, the in-memory ring of
//! recent [`CompletedTrace`]s (`/debug/traces`), the slow-query ring
//! (`/debug/slowlog`), and the optional durable [`EventLog`]. The engine
//! calls [`Tracer::begin`] at the top of every search and
//! [`Tracer::finish`] at the bottom; everything else (ring eviction,
//! slowlog admission, event-log append + rotation) happens inside
//! `finish`, off the request's critical path measurements.
//!
//! When tracing is disabled, `begin` returns `None` and the search path
//! pays only that one branch — the <5% overhead budget in the e1 bench
//! compares against exactly this path.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

use crate::eventlog::{EventLog, EventResult, SearchEvent};
use crate::ledger::ResourceLedger;
use crate::profiler::StackSource;
use crate::ring::Ring;
use crate::span::{CompletedTrace, TraceContext};
use crate::workload::{WorkloadConfig, WorkloadStats};

/// Configuration for a [`Tracer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TracerConfig {
    /// Master switch; when false, [`Tracer::begin`] returns `None`.
    pub enabled: bool,
    /// How many completed traces `/debug/traces` retains.
    pub ring_capacity: usize,
    /// How many slow traces `/debug/slowlog` retains.
    pub slowlog_capacity: usize,
    /// Searches at or above this duration enter the slowlog.
    pub slow_threshold: Duration,
    /// Where to append the JSONL event log (`None` disables it).
    pub event_log_path: Option<PathBuf>,
    /// Size bound for the active event-log file before rotation.
    pub event_log_max_bytes: u64,
    /// Span-stack sampling rate for the engine's background profiler
    /// (samples per second; 0 disables the profiler thread).
    pub profile_hz: u32,
    /// How deeply query threads read the thread-CPU clock for the
    /// resource ledger. The default (`Auto`) calibrates against the
    /// measured clock-call cost at engine construction.
    pub cpu_probe: crate::ledger::CpuProbeDepth,
    /// Heavy-hitter workload analytics (`/debug/workload`): counters
    /// per sketch. 0 disables the workload plane even when tracing is
    /// on; it is always off when `enabled` is false, so the obs-off
    /// bench baseline pays nothing for it.
    pub workload_sketch: usize,
    /// Sliding windows retained by each workload sketch.
    pub workload_windows: usize,
    /// Wall-clock length of one workload window.
    pub workload_window: Duration,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            enabled: true,
            ring_capacity: 128,
            slowlog_capacity: 64,
            slow_threshold: Duration::from_millis(250),
            event_log_path: None,
            event_log_max_bytes: 8 << 20,
            profile_hz: crate::profiler::DEFAULT_PROFILE_HZ,
            cpu_probe: crate::ledger::CpuProbeDepth::Auto,
            workload_sketch: WorkloadConfig::default().sketch_capacity,
            workload_windows: WorkloadConfig::default().windows,
            workload_window: WorkloadConfig::default().window_len,
        }
    }
}

impl TracerConfig {
    /// A disabled tracer (the bench baseline).
    pub fn disabled() -> Self {
        TracerConfig {
            enabled: false,
            ..TracerConfig::default()
        }
    }
}

/// What the engine knows about a finished search, handed to
/// [`Tracer::finish`] alongside the span context.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// Normalized query text.
    pub query: String,
    /// Phase 1 hit count.
    pub candidates_from_index: usize,
    /// Candidates scored by Phase 2/3.
    pub candidates_evaluated: usize,
    /// Top-k results with per-matcher strengths.
    pub results: Vec<EventResult>,
    /// What the search cost (CPU, allocations) across its threads.
    pub ledger: ResourceLedger,
}

/// Per-engine trace manager. Cheap to share (`Arc<Tracer>`); all methods
/// take `&self`.
#[derive(Debug)]
pub struct Tracer {
    config: TracerConfig,
    /// Slowlog admission threshold in µs — atomic so `POST
    /// /debug/slowlog` can adjust it at runtime.
    slow_threshold_us: AtomicU64,
    seq: AtomicU64,
    ring: Ring<CompletedTrace>,
    slow: Ring<CompletedTrace>,
    /// In-flight traces, sampled by the span-stack profiler. Weak so an
    /// abandoned context (error path that never reaches `finish`) is
    /// collected instead of sampled forever.
    live: Mutex<Vec<Weak<TraceContext>>>,
    event_log: Option<EventLog>,
    /// Workload analytics plane; present when tracing is enabled with a
    /// non-zero sketch capacity. `Arc` so the server can snapshot it
    /// without holding the engine.
    workload: Option<Arc<WorkloadStats>>,
}

impl Tracer {
    /// Build a tracer. An event log that fails to open is reported to
    /// stderr and dropped rather than failing engine construction —
    /// observability must never take the search path down.
    pub fn new(config: TracerConfig) -> Tracer {
        let event_log = config.event_log_path.as_ref().and_then(|path| {
            match EventLog::open(path, config.event_log_max_bytes) {
                Ok(log) => Some(log),
                Err(err) => {
                    eprintln!("schemr-trace: cannot open event log {path:?}: {err}");
                    None
                }
            }
        });
        let workload = (config.enabled && config.workload_sketch > 0).then(|| {
            Arc::new(WorkloadStats::new(WorkloadConfig {
                sketch_capacity: config.workload_sketch,
                windows: config.workload_windows,
                window_len: config.workload_window,
                ..WorkloadConfig::default()
            }))
        });
        Tracer {
            ring: Ring::new(config.ring_capacity),
            slow: Ring::new(config.slowlog_capacity),
            seq: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
            slow_threshold_us: AtomicU64::new(config.slow_threshold.as_micros() as u64),
            event_log,
            workload,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TracerConfig {
        &self.config
    }

    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Start a trace for one search. `client_id` is an optional
    /// caller-supplied id (e.g. the `X-Schemr-Trace-Id` header); invalid
    /// or absent ids fall back to a generated monotonic `t<seq>` id.
    /// Returns `None` when tracing is disabled. The context is also
    /// registered with the live-trace registry so the sampling profiler
    /// sees it until [`Tracer::finish`] (or the context being dropped).
    pub fn begin(&self, client_id: Option<&str>) -> Option<Arc<TraceContext>> {
        if !self.config.enabled {
            return None;
        }
        let id = match client_id.map(str::trim).filter(|s| valid_trace_id(s)) {
            Some(id) => id.to_string(),
            None => format!("t{}", self.seq.fetch_add(1, Ordering::Relaxed)),
        };
        let ctx = Arc::new(TraceContext::new(id));
        let mut live = self.live.lock().expect("live traces lock");
        live.retain(|w| w.strong_count() > 0);
        live.push(Arc::downgrade(&ctx));
        Some(ctx)
    }

    /// Number of in-flight traces (live registry size).
    pub fn live_count(&self) -> usize {
        self.live
            .lock()
            .expect("live traces lock")
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// The current slowlog admission threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_micros(self.slow_threshold_us.load(Ordering::Relaxed))
    }

    /// Adjust the slowlog admission threshold at runtime (`POST
    /// /debug/slowlog?threshold_ms=N`). Takes effect for the next
    /// `finish`; already-admitted traces stay in the slowlog.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.slow_threshold_us
            .store(threshold.as_micros() as u64, Ordering::Relaxed);
    }

    /// Complete a trace: deregister it from the live registry, publish
    /// it to the recent ring, admit it to the slowlog if over threshold,
    /// and append a [`SearchEvent`] to the event log. Returns the
    /// completed trace.
    pub fn finish(&self, ctx: Arc<TraceContext>, outcome: SearchOutcome) -> Arc<CompletedTrace> {
        {
            let mut live = self.live.lock().expect("live traces lock");
            live.retain(|w| {
                w.upgrade()
                    .is_some_and(|live_ctx| !Arc::ptr_eq(&live_ctx, &ctx))
            });
        }
        let (trace_id, started_unix_ms, total_us, spans) = match Arc::try_unwrap(ctx) {
            Ok(ctx) => ctx.into_parts(),
            // The profiler (or another reader) briefly holds a clone:
            // fall back to the cloning path.
            Err(shared) => shared.parts(),
        };
        let trace = Arc::new(CompletedTrace {
            trace_id,
            started_unix_ms,
            total_us,
            query: outcome.query,
            candidates_from_index: outcome.candidates_from_index,
            candidates_evaluated: outcome.candidates_evaluated,
            results: outcome.results,
            ledger: outcome.ledger,
            spans,
        });
        self.ring.push(Arc::clone(&trace));
        if total_us >= self.slow_threshold_us.load(Ordering::Relaxed) {
            self.slow.push(Arc::clone(&trace));
        }
        if let Some(log) = &self.event_log {
            let event = SearchEvent {
                trace_id: trace.trace_id.clone(),
                unix_ms: trace.started_unix_ms,
                query: trace.query.clone(),
                candidates_from_index: trace.candidates_from_index,
                candidates_evaluated: trace.candidates_evaluated,
                phase_us: trace
                    .spans
                    .iter()
                    .filter(|s| s.parent == Some(0))
                    .map(|s| (s.name.clone(), s.dur_us.unwrap_or(0)))
                    .collect(),
                total_us: trace.total_us,
                results: trace.results.clone(),
                cpu_us: trace.ledger.cpu_us,
                alloc_count: trace.ledger.alloc_count,
                alloc_bytes: trace.ledger.alloc_bytes,
                tags: Vec::new(),
            };
            if let Err(err) = log.append(&event) {
                eprintln!("schemr-trace: event log append failed: {err}");
            }
        }
        trace
    }

    /// Up to `limit` most recent traces, newest first.
    pub fn recent(&self, limit: usize) -> Vec<Arc<CompletedTrace>> {
        self.ring.recent(limit)
    }

    /// Look up a retained trace by id (newest match wins).
    pub fn get(&self, trace_id: &str) -> Option<Arc<CompletedTrace>> {
        self.ring
            .find(|t| t.trace_id == trace_id)
            .or_else(|| self.slow.find(|t| t.trace_id == trace_id))
    }

    /// Up to `limit` most recent slow traces, newest first.
    pub fn slow(&self, limit: usize) -> Vec<Arc<CompletedTrace>> {
        self.slow.recent(limit)
    }

    /// The event log, when configured and healthy.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.event_log.as_ref()
    }

    /// The workload analytics plane, when tracing is enabled with a
    /// non-zero `workload_sketch`. The engine feeds it one call per
    /// search; `/debug/workload` snapshots it.
    pub fn workload(&self) -> Option<&Arc<WorkloadStats>> {
        self.workload.as_ref()
    }

    /// Approximate resident bytes of the trace and slowlog rings —
    /// `/debug/memory`'s view of the in-memory trace plane.
    pub fn ring_bytes(&self) -> (usize, usize) {
        use crate::memsize::DeepSize;
        (self.ring.deep_size_of(), self.slow.deep_size_of())
    }

    /// Retained entries in the (recent, slow) trace rings.
    pub fn ring_lens(&self) -> (usize, usize) {
        (self.ring.len(), self.slow.len())
    }
}

impl StackSource for Tracer {
    /// Folded span stacks of every in-flight trace — the profiler's
    /// sampling feed. One entry per open leaf span; traces with no open
    /// span yet contribute nothing.
    fn sample_stacks(&self) -> Vec<String> {
        let live = self.live.lock().expect("live traces lock");
        let mut stacks = Vec::new();
        for weak in live.iter() {
            if let Some(ctx) = weak.upgrade() {
                stacks.extend(ctx.open_stacks());
            }
        }
        stacks
    }
}

/// Client-supplied trace ids must be short and header/JSON-safe:
/// ASCII alphanumerics plus `- _ . :`, at most 128 bytes.
fn valid_trace_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 128
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(query: &str) -> SearchOutcome {
        SearchOutcome {
            query: query.to_string(),
            candidates_from_index: 7,
            candidates_evaluated: 4,
            results: vec![EventResult {
                id: "schema-1".into(),
                score: 0.9,
                matcher_scores: vec![("name".into(), 0.9)],
            }],
            ledger: ResourceLedger {
                cpu_us: 321,
                alloc_count: 12,
                alloc_bytes: 2048,
            },
        }
    }

    #[test]
    fn disabled_tracer_yields_no_context() {
        let tracer = Tracer::new(TracerConfig::disabled());
        assert!(tracer.begin(None).is_none());
        assert!(tracer.begin(Some("client-id")).is_none());
    }

    #[test]
    fn generated_ids_are_monotonic_and_client_ids_win() {
        let tracer = Tracer::new(TracerConfig::default());
        let a = tracer.begin(None).unwrap();
        let b = tracer.begin(None).unwrap();
        assert_eq!(a.trace_id(), "t0");
        assert_eq!(b.trace_id(), "t1");
        let c = tracer.begin(Some("req-42")).unwrap();
        assert_eq!(c.trace_id(), "req-42");
        // Invalid client ids fall back to generated ones.
        let d = tracer.begin(Some("bad id\nwith newline")).unwrap();
        assert_eq!(d.trace_id(), "t2");
    }

    #[test]
    fn finish_publishes_to_ring_and_lookup() {
        let tracer = Tracer::new(TracerConfig::default());
        let ctx = tracer.begin(Some("lookup-me")).unwrap();
        {
            let root = ctx.root_span("search");
            let _p1 = root.child("candidate_extraction");
        }
        let trace = tracer.finish(ctx, outcome("customer"));
        assert_eq!(trace.trace_id, "lookup-me");
        assert_eq!(tracer.recent(10).len(), 1);
        let found = tracer.get("lookup-me").expect("retrievable");
        assert_eq!(found.query, "customer");
        assert!(tracer.get("missing").is_none());
    }

    #[test]
    fn slowlog_admits_only_over_threshold() {
        let config = TracerConfig {
            slow_threshold: Duration::from_millis(5),
            ..TracerConfig::default()
        };
        let tracer = Tracer::new(config);
        // Fast search: not slow.
        let ctx = tracer.begin(None).unwrap();
        tracer.finish(ctx, outcome("fast"));
        assert!(tracer.slow(10).is_empty());
        // Slow search: sleep past the threshold.
        let ctx = tracer.begin(None).unwrap();
        std::thread::sleep(Duration::from_millis(8));
        let trace = tracer.finish(ctx, outcome("slow"));
        let slow = tracer.slow(10);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, trace.trace_id);
    }

    #[test]
    fn finish_appends_to_event_log() {
        let dir = std::env::temp_dir().join(format!("schemr-obs-tracer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = TracerConfig {
            event_log_path: Some(dir.join("events.jsonl")),
            ..TracerConfig::default()
        };
        let tracer = Tracer::new(config);
        let ctx = tracer.begin(Some("evt-1")).unwrap();
        {
            let root = ctx.root_span("search");
            let _p = root.child("matching");
        }
        tracer.finish(ctx, outcome("order items"));
        let events = tracer.event_log().unwrap().read_events().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, "evt-1");
        assert_eq!(events[0].query, "order items");
        assert_eq!(events[0].phase_us.len(), 1);
        assert_eq!(events[0].phase_us[0].0, "matching");
        assert_eq!(events[0].results[0].id, "schema-1");
        // The ledger travels into the durable record.
        assert_eq!(events[0].cpu_us, 321);
        assert_eq!(events[0].alloc_count, 12);
        assert_eq!(events[0].alloc_bytes, 2048);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn live_registry_tracks_in_flight_traces() {
        let tracer = Tracer::new(TracerConfig::default());
        assert_eq!(tracer.live_count(), 0);
        let ctx = tracer.begin(None).unwrap();
        let root = ctx.root_span("search");
        let _child = root.child("matching");
        assert_eq!(tracer.live_count(), 1);
        let stacks = tracer.sample_stacks();
        assert_eq!(stacks, vec!["search;matching".to_string()]);
        drop(_child);
        drop(root);
        tracer.finish(ctx, outcome("q"));
        assert_eq!(tracer.live_count(), 0);
        assert!(tracer.sample_stacks().is_empty());
    }

    #[test]
    fn abandoned_contexts_fall_out_of_the_registry() {
        let tracer = Tracer::new(TracerConfig::default());
        {
            let _ctx = tracer.begin(None).unwrap();
            assert_eq!(tracer.live_count(), 1);
        } // dropped without finish — e.g. an engine error path
        assert_eq!(tracer.live_count(), 0);
        assert!(tracer.sample_stacks().is_empty());
    }

    #[test]
    fn slow_threshold_is_runtime_adjustable() {
        let tracer = Tracer::new(TracerConfig::default());
        assert_eq!(tracer.slow_threshold(), Duration::from_millis(250));
        // Everything is slow at threshold 0.
        tracer.set_slow_threshold(Duration::ZERO);
        let ctx = tracer.begin(None).unwrap();
        tracer.finish(ctx, outcome("now slow"));
        assert_eq!(tracer.slow(10).len(), 1);
        // Raise it back: fast searches stop being admitted.
        tracer.set_slow_threshold(Duration::from_secs(5));
        assert_eq!(tracer.slow_threshold(), Duration::from_secs(5));
        let ctx = tracer.begin(None).unwrap();
        tracer.finish(ctx, outcome("fast again"));
        assert_eq!(tracer.slow(10).len(), 1, "still only the first trace");
    }

    #[test]
    fn workload_plane_rides_the_tracing_gate() {
        let on = Tracer::new(TracerConfig::default());
        let workload = on.workload().expect("default config has a sketch");
        workload.record_query(&["patient".to_string()], false);
        assert_eq!(workload.total_queries(), 1);
        // Disabled tracing ⇒ no workload plane: the obs-off bench
        // baseline must not pay for it.
        assert!(Tracer::new(TracerConfig::disabled()).workload().is_none());
        // Tracing on but sketch capacity zeroed ⇒ also off.
        let no_sketch = TracerConfig {
            workload_sketch: 0,
            ..TracerConfig::default()
        };
        assert!(Tracer::new(no_sketch).workload().is_none());
    }

    #[test]
    fn ring_accounting_reports_retained_traces() {
        let tracer = Tracer::new(TracerConfig::default());
        let (recent0, _) = tracer.ring_bytes();
        let ctx = tracer.begin(None).unwrap();
        tracer.finish(ctx, outcome("memory"));
        let (recent1, _) = tracer.ring_bytes();
        assert!(recent1 > recent0, "a retained trace adds bytes");
        assert_eq!(tracer.ring_lens().0, 1);
    }

    #[test]
    fn completed_trace_carries_the_ledger() {
        let tracer = Tracer::new(TracerConfig::default());
        let ctx = tracer.begin(None).unwrap();
        let trace = tracer.finish(ctx, outcome("cost"));
        assert_eq!(trace.ledger.cpu_us, 321);
        assert!(
            trace.to_json().contains("\"cpu_us\":321"),
            "{}",
            trace.to_json()
        );
    }
}
