//! Deep memory accounting: a small `DeepSize`-style trait.
//!
//! `/debug/memory` needs to answer "where do the bytes live" across
//! structures that own arbitrary heap graphs — the inverted index, the
//! candidate and match-artifact caches, the trace ring, the event log.
//! [`DeepSize`] splits the question the way the `deepsize` crate does:
//! a value's total footprint is its own `size_of` plus the heap bytes
//! it owns ([`DeepSize::deep_size_of_children`]), so container impls
//! compose without double-counting the inline portion of their
//! elements.
//!
//! The numbers are *estimates*: map impls approximate allocator and
//! table overhead rather than asking the allocator, and shared `Arc`s
//! are counted at every holder (a resident-set view, not a unique-
//! ownership view). That is the right trade for an introspection
//! endpoint — stable, cheap, and within a few percent of reality.

use std::collections::{BTreeMap, HashMap};
use std::mem::size_of;
use std::sync::Arc;

/// Types that can report the heap bytes they own.
pub trait DeepSize {
    /// Heap bytes owned beyond the value's own `size_of` footprint.
    fn deep_size_of_children(&self) -> usize;

    /// Total estimated footprint: shallow size plus owned heap.
    fn deep_size_of(&self) -> usize {
        std::mem::size_of_val(self) + self.deep_size_of_children()
    }
}

macro_rules! impl_flat {
    ($($ty:ty),* $(,)?) => {
        $(impl DeepSize for $ty {
            fn deep_size_of_children(&self) -> usize { 0 }
        })*
    };
}

impl_flat!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char);

impl DeepSize for String {
    fn deep_size_of_children(&self) -> usize {
        self.capacity()
    }
}

impl<T: DeepSize> DeepSize for Vec<T> {
    fn deep_size_of_children(&self) -> usize {
        self.capacity() * size_of::<T>()
            + self
                .iter()
                .map(DeepSize::deep_size_of_children)
                .sum::<usize>()
    }
}

impl<T: DeepSize> DeepSize for Option<T> {
    fn deep_size_of_children(&self) -> usize {
        self.as_ref().map_or(0, DeepSize::deep_size_of_children)
    }
}

impl<T: DeepSize> DeepSize for Box<T> {
    fn deep_size_of_children(&self) -> usize {
        self.as_ref().deep_size_of()
    }
}

impl<T: DeepSize> DeepSize for Arc<T> {
    /// Counted in full at every holder: the resident-set view.
    fn deep_size_of_children(&self) -> usize {
        self.as_ref().deep_size_of()
    }
}

impl<A: DeepSize, B: DeepSize> DeepSize for (A, B) {
    fn deep_size_of_children(&self) -> usize {
        self.0.deep_size_of_children() + self.1.deep_size_of_children()
    }
}

impl<K: DeepSize, V: DeepSize> DeepSize for HashMap<K, V> {
    /// Table slots at capacity plus one control byte per slot
    /// (hashbrown's layout), plus per-entry owned heap.
    fn deep_size_of_children(&self) -> usize {
        self.capacity() * (size_of::<K>() + size_of::<V>() + 1)
            + self
                .iter()
                .map(|(k, v)| k.deep_size_of_children() + v.deep_size_of_children())
                .sum::<usize>()
    }
}

impl<K: DeepSize, V: DeepSize> DeepSize for BTreeMap<K, V> {
    /// B-tree nodes amortize to roughly the entry payload plus a small
    /// per-entry pointer overhead at the default branching factor.
    fn deep_size_of_children(&self) -> usize {
        self.len() * (size_of::<K>() + size_of::<V>() + 2 * size_of::<usize>())
            + self
                .iter()
                .map(|(k, v)| k.deep_size_of_children() + v.deep_size_of_children())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_count_their_capacity() {
        let s = String::with_capacity(64);
        assert_eq!(s.deep_size_of(), size_of::<String>() + 64);
        assert_eq!(42u64.deep_size_of(), 8);
    }

    #[test]
    fn vecs_count_spare_capacity_and_children() {
        let mut v: Vec<String> = Vec::with_capacity(4);
        v.push("abcd".to_string());
        let expected = size_of::<Vec<String>>() + 4 * size_of::<String>() + v[0].capacity();
        assert_eq!(v.deep_size_of(), expected);
    }

    #[test]
    fn maps_scale_with_occupancy() {
        let mut m: HashMap<String, Vec<u32>> = HashMap::new();
        let empty = m.deep_size_of();
        for i in 0..100 {
            m.insert(format!("key-{i}"), vec![i; 8]);
        }
        assert!(m.deep_size_of() > empty + 100 * 8 * size_of::<u32>());
        let mut b: BTreeMap<u64, String> = BTreeMap::new();
        b.insert(1, "x".repeat(100));
        assert!(b.deep_size_of() >= 100);
    }

    #[test]
    fn arc_counts_the_shared_payload() {
        let a = Arc::new("shared".to_string());
        assert!(a.deep_size_of() >= size_of::<String>() + 6);
    }
}
