//! A counting global allocator (zero-dependency).
//!
//! Wraps [`std::alloc::System`] and counts allocation events and bytes,
//! both process-wide and per thread. The per-thread counters are what the
//! per-query resource ledger reads: a search that runs on one request
//! thread (plus scoped Phase 2 workers, each probing its own counters)
//! can attribute allocator traffic to itself even while other requests
//! run concurrently.
//!
//! The type lives here — below every other crate — so there is a single
//! source of truth, but *installing* it is the embedder's choice:
//!
//! * the e1 bench binary declares `#[global_allocator] static A:
//!   CountingAlloc = CountingAlloc;` itself (as it always has), and
//! * building `schemr-obs` with the `obs-alloc` feature installs it for
//!   the whole process of whatever links the crate.
//!
//! When no counting allocator is installed the counters simply stay at
//! zero and ledger allocation fields read 0 — observability never
//! becomes a hard dependency.
//!
//! Counting semantics (kept identical to the original bench allocator):
//! `alloc`, `alloc_zeroed`, and `realloc` each count as one event;
//! `dealloc` is not counted. Bytes are the requested sizes (`realloc`
//! counts the new size).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static PROCESS_COUNT: AtomicU64 = AtomicU64::new(0);
static PROCESS_BYTES: AtomicU64 = AtomicU64::new(0);

// Const-initialized thread-locals: no lazy allocation on first access,
// so reading them from inside the allocator cannot recurse. `try_with`
// tolerates accesses during thread teardown.
thread_local! {
    static THREAD_COUNT: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// The counting allocator. Zero-sized; all state is in statics so the
/// readout functions work no matter which binary installed it.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn record(size: usize) {
        PROCESS_COUNT.fetch_add(1, Ordering::Relaxed);
        PROCESS_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        let _ = THREAD_COUNT.try_with(|c| c.set(c.get() + 1));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + size as u64));
    }
}

// SAFETY: pure pass-through to `System`; the bookkeeping touches only
// atomics and const-init thread-locals, neither of which allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// Allocation events since process start (0 when no counting allocator
/// is installed).
pub fn process_alloc_count() -> u64 {
    PROCESS_COUNT.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator since process start.
pub fn process_alloc_bytes() -> u64 {
    PROCESS_BYTES.load(Ordering::Relaxed)
}

/// Allocation events on the calling thread.
pub fn thread_alloc_count() -> u64 {
    THREAD_COUNT.try_with(Cell::get).unwrap_or(0)
}

/// Bytes requested from the allocator on the calling thread.
pub fn thread_alloc_bytes() -> u64 {
    THREAD_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// With the `obs-alloc` feature, install the counting allocator for the
/// whole process.
#[cfg(feature = "obs-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        let (c0, b0) = (process_alloc_count(), process_alloc_bytes());
        let v: Vec<u8> = Vec::with_capacity(4096);
        drop(v);
        let (c1, b1) = (process_alloc_count(), process_alloc_bytes());
        assert!(c1 >= c0);
        assert!(b1 >= b0);
        // With the allocator installed (`--features obs-alloc`) the Vec
        // above must have been counted.
        if cfg!(feature = "obs-alloc") {
            assert!(c1 > c0, "installed allocator must count events");
            assert!(b1 - b0 >= 4096, "installed allocator must count bytes");
        }
    }

    #[test]
    fn thread_counters_are_thread_local() {
        let before = thread_alloc_count();
        let other = std::thread::spawn(|| {
            let _v: Vec<u8> = Vec::with_capacity(1024);
            thread_alloc_count()
        })
        .join()
        .unwrap();
        if cfg!(feature = "obs-alloc") {
            assert!(other > 0, "spawned thread saw its own allocations");
        }
        // Another thread's traffic never shows up on this thread's
        // counter retroactively (it may have grown from our own work).
        assert!(thread_alloc_count() >= before);
    }
}
