//! Event-log integration tests: rotation at the size boundary, replay
//! across rotated files, and concurrent writers producing no torn lines.

use std::path::PathBuf;
use std::sync::Arc;

use schemr_obs::{read_events_at, EventLog, EventResult, SearchEvent};

/// Unique temp dir, removed on drop.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("schemr-eventlog-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn event(trace_id: &str, query: &str) -> SearchEvent {
    SearchEvent {
        trace_id: trace_id.to_string(),
        unix_ms: 1_700_000_000_000,
        query: query.to_string(),
        candidates_from_index: 5,
        candidates_evaluated: 3,
        phase_us: vec![
            ("candidate_extraction".to_string(), 40),
            ("matching".to_string(), 300),
            ("tightness_scoring".to_string(), 12),
        ],
        total_us: 360,
        cpu_us: 310,
        alloc_count: 42,
        alloc_bytes: 16_384,
        results: vec![EventResult {
            id: "s0".to_string(),
            score: 0.75,
            matcher_scores: vec![("name".to_string(), 0.8), ("context".to_string(), 0.7)],
        }],
        tags: Vec::new(),
    }
}

#[test]
fn rotation_triggers_exactly_at_the_size_boundary() {
    let dir = TempDir::new("boundary");
    let path = dir.path.join("events.log");
    let one_line = {
        let mut l = event("t0", "warm").to_json();
        l.push('\n');
        l.len() as u64
    };

    // Budget for exactly two records: the third append must rotate.
    let log = EventLog::open(&path, 2 * one_line).unwrap();
    log.append(&event("t0", "warm")).unwrap();
    log.append(&event("t1", "warm")).unwrap();
    assert!(
        !path.with_extension("log.1").exists(),
        "two records fit the budget exactly — no rotation yet"
    );
    log.append(&event("t2", "warm")).unwrap();
    let rotated = PathBuf::from(format!("{}.1", path.display()));
    assert!(rotated.exists(), "third record must push out the first two");

    // The rotated file holds the old records, the active file the new one.
    let all = log.read_events().unwrap();
    let ids: Vec<&str> = all.iter().map(|e| e.trace_id.as_str()).collect();
    assert_eq!(ids, ["t0", "t1", "t2"], "chronological across rotation");
    assert!(
        std::fs::metadata(&rotated).unwrap().len() <= 2 * one_line,
        "rotated file respects the budget"
    );
}

#[test]
fn replay_reads_rotated_files_oldest_first() {
    let dir = TempDir::new("replay");
    let path = dir.path.join("events.log");
    let one_line = event("t00", "q").to_json().len() as u64 + 1;

    // One record per file: every append after the first rotates.
    let log = EventLog::open(&path, one_line).unwrap();
    for i in 0..5 {
        log.append(&event(&format!("t{i:02}"), &format!("query {i}")))
            .unwrap();
    }
    // 4 rotated files + the active one.
    for n in 1..=4u64 {
        assert!(
            PathBuf::from(format!("{}.{n}", path.display())).exists(),
            "expected rotation .{n}"
        );
    }

    // The standalone reader (what `tracelog replay` uses) must see every
    // record, oldest first, without an open handle on the log.
    drop(log);
    let events = read_events_at(&path).unwrap();
    let ids: Vec<&str> = events.iter().map(|e| e.trace_id.as_str()).collect();
    assert_eq!(ids, ["t00", "t01", "t02", "t03", "t04"]);
    assert_eq!(events[3].query, "query 3");
    assert_eq!(events[0].results[0].matcher_scores.len(), 2);
}

#[test]
fn concurrent_writers_never_tear_lines() {
    const WRITERS: usize = 8;
    const PER_WRITER: usize = 50;

    let dir = TempDir::new("concurrent");
    let path = dir.path.join("events.log");
    // Small budget so the test also rotates under contention.
    let log = Arc::new(EventLog::open(&path, 4096).unwrap());

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let log = Arc::clone(&log);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_WRITER {
                log.append(&event(&format!("w{w}-{i}"), "concurrent load"))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every line in every file must parse — a torn line would fail
    // from_json_line and drop a record.
    let events = log.read_events().unwrap();
    assert_eq!(events.len(), WRITERS * PER_WRITER, "no record lost or torn");
    let mut raw_lines = 0usize;
    let mut n = 0u64;
    loop {
        let file = if n == 0 {
            path.clone()
        } else {
            PathBuf::from(format!("{}.{n}", path.display()))
        };
        if file.exists() {
            let text = std::fs::read_to_string(&file).unwrap();
            assert!(
                text.ends_with('\n') || text.is_empty(),
                "{file:?} torn tail"
            );
            raw_lines += text.lines().count();
        } else if n > 0 {
            break;
        }
        n += 1;
    }
    assert_eq!(
        raw_lines,
        WRITERS * PER_WRITER,
        "line count matches records"
    );

    // Each writer's own records stay in its submission order.
    for w in 0..WRITERS {
        let mine: Vec<usize> = events
            .iter()
            .filter_map(|e| {
                e.trace_id
                    .strip_prefix(&format!("w{w}-"))
                    .map(|i| i.parse().unwrap())
            })
            .collect();
        assert_eq!(
            mine,
            (0..PER_WRITER).collect::<Vec<_>>(),
            "writer {w} order"
        );
    }
}
