//! Property-based tests for the heavy-hitter workload sketch: the
//! eviction bound, the SpaceSaving frequency-error guarantee, window
//! merge determinism, and a sketch-vs-exact oracle over generated
//! workloads.

use std::collections::HashMap;

use proptest::prelude::*;
use schemr_obs::{SpaceSaving, WindowedSketch};

/// A skewed synthetic stream: key `i` is drawn with weight ∝ 1/(i+1),
/// so a handful of keys dominate — the workload shape the sketch is
/// built for. Generated from proptest-driven choices so every case is
/// a different stream.
fn skewed_stream(picks: &[usize], universe: usize) -> Vec<String> {
    // Map a uniform pick into a Zipf-ish rank: repeated halving sends
    // most picks to low ranks.
    picks
        .iter()
        .map(|&p| {
            let mut rank = 0usize;
            let mut span = universe.max(1);
            let mut x = p % universe.max(1);
            while span > 1 && x >= span / 2 {
                rank += span / 2;
                x -= span / 2;
                span -= span / 2;
                // Re-spread within the tail.
                x = (x * 7 + 3) % span.max(1);
            }
            format!("term-{rank}")
        })
        .collect()
}

fn exact_counts(stream: &[String]) -> HashMap<&str, u64> {
    let mut exact: HashMap<&str, u64> = HashMap::new();
    for key in stream {
        *exact.entry(key).or_default() += 1;
    }
    exact
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eviction bound: the sketch never tracks more than `k` keys, no
    /// matter the stream, and the total is always exact.
    #[test]
    fn eviction_bound_holds(
        picks in proptest::collection::vec(0usize..10_000, 1..400),
        k in 1usize..32,
    ) {
        let stream = skewed_stream(&picks, 200);
        let mut sketch = SpaceSaving::new(k);
        for key in &stream {
            sketch.observe(key);
        }
        prop_assert!(sketch.len() <= k);
        prop_assert_eq!(sketch.total(), stream.len() as u64);
    }

    /// Frequency-error invariant: every tracked key's estimate is an
    /// overcount bounded by `total/k`, both through the reported error
    /// field and against the true count.
    #[test]
    fn frequency_error_is_bounded(
        picks in proptest::collection::vec(0usize..10_000, 1..400),
        k in 2usize..24,
    ) {
        let stream = skewed_stream(&picks, 100);
        let exact = exact_counts(&stream);
        let mut sketch = SpaceSaving::new(k);
        for key in &stream {
            sketch.observe(key);
        }
        let bound = sketch.total() / k as u64;
        for hitter in sketch.top(k) {
            let true_count = exact[hitter.key.as_str()];
            prop_assert!(hitter.count >= true_count, "never undercounts");
            prop_assert!(hitter.count - true_count <= hitter.error, "error field covers the overcount");
            prop_assert!(hitter.error <= bound, "error ≤ total/k");
        }
    }

    /// Window-merge determinism: folding the same windows twice yields
    /// identical output, and pairwise merge is commutative.
    #[test]
    fn window_merge_is_deterministic(
        a_picks in proptest::collection::vec(0usize..10_000, 1..200),
        b_picks in proptest::collection::vec(0usize..10_000, 1..200),
        k in 2usize..16,
    ) {
        let mut windowed = WindowedSketch::new(k, 4);
        for key in skewed_stream(&a_picks, 60) {
            windowed.observe(&key);
        }
        windowed.rotate();
        for key in skewed_stream(&b_picks, 60) {
            windowed.observe(&key);
        }
        let first = windowed.merged();
        let second = windowed.merged();
        prop_assert_eq!(first.top(k), second.top(k), "same fold twice agrees");
        prop_assert_eq!(first.total(), second.total());

        let mut a = SpaceSaving::new(k);
        for key in skewed_stream(&a_picks, 60) {
            a.observe(&key);
        }
        let mut b = SpaceSaving::new(k);
        for key in skewed_stream(&b_picks, 60) {
            b.observe(&key);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        prop_assert_eq!(ab.top(k), ba.top(k), "merge is commutative");
    }

    /// Sketch-vs-exact oracle: on a skewed workload with enough
    /// capacity headroom, the sketch's reported top hitters bracket the
    /// true counts, and every *unambiguously* heavy key (true count
    /// strictly above total/k, where untracked keys cannot hide) is
    /// reported.
    #[test]
    fn sketch_matches_exact_oracle_on_generated_workload(
        picks in proptest::collection::vec(0usize..100_000, 200..600),
    ) {
        let k = 32usize;
        let stream = skewed_stream(&picks, 500);
        let exact = exact_counts(&stream);
        let mut sketch = SpaceSaving::new(k);
        for key in &stream {
            sketch.observe(key);
        }
        let total = stream.len() as u64;
        let threshold = total / k as u64;
        let top_list = sketch.top(k);
        let top: HashMap<&str, (u64, u64)> = top_list
            .iter()
            .map(|h| (h.key.as_str(), (h.count, h.error)))
            .collect();
        for (key, true_count) in &exact {
            if *true_count > threshold {
                let (est, _) = top
                    .get(key)
                    .unwrap_or_else(|| panic!("heavy key {key} ({true_count}/{total}) missing from top-{k}"));
                prop_assert!(*est >= *true_count);
                prop_assert!(est - true_count <= threshold);
            }
        }
    }
}
