//! Renderer edge cases: shapes the unit tests' happy paths skip —
//! empty registries, histograms nobody has observed yet, and label
//! values that abuse the exposition format's escape rules.

use schemr_obs::MetricsRegistry;

#[test]
fn empty_registry_renders_to_an_empty_document() {
    let reg = MetricsRegistry::new();
    assert_eq!(reg.render_prometheus(), "");
}

#[test]
fn zero_observation_histogram_renders_all_buckets_at_zero() {
    let reg = MetricsRegistry::new();
    reg.histogram("schemr_idle_seconds", "Never observed.", &[0.1, 1.0]);
    let text = reg.render_prometheus();
    assert!(
        text.contains("# TYPE schemr_idle_seconds histogram"),
        "{text}"
    );
    assert!(
        text.contains("schemr_idle_seconds_bucket{le=\"0.1\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("schemr_idle_seconds_bucket{le=\"1\"} 0"),
        "{text}"
    );
    assert!(
        text.contains("schemr_idle_seconds_bucket{le=\"+Inf\"} 0"),
        "{text}"
    );
    assert!(text.contains("schemr_idle_seconds_sum 0"), "{text}");
    assert!(text.contains("schemr_idle_seconds_count 0"), "{text}");
}

#[test]
fn zero_observation_histogram_quantiles_are_finite() {
    let reg = MetricsRegistry::new();
    let h = reg.histogram("h", "empty", &[0.5]);
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    // Quantiles over an empty histogram must not panic or go NaN.
    assert!(snap.quantile(0.5).is_finite());
    assert!(snap.quantile(0.99).is_finite());
}

#[test]
fn newline_label_values_stay_on_one_exposition_line() {
    let reg = MetricsRegistry::new();
    reg.counter_with("m_total", "h", &[("q", "line one\nline two")])
        .inc();
    let text = reg.render_prometheus();
    // The raw newline must be escaped, never emitted: every series line
    // in the document must still start with a metric name or comment.
    assert!(
        text.contains("m_total{q=\"line one\\nline two\"} 1"),
        "{text}"
    );
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.starts_with("m_total"),
            "torn exposition line: {line:?}"
        );
    }
}

#[test]
fn backslash_label_values_round_trip_the_escape_rules() {
    let reg = MetricsRegistry::new();
    // A Windows path: backslashes must double, the quote must escape.
    reg.counter_with("m_total", "h", &[("path", r#"C:\logs\"q".jsonl"#)])
        .inc();
    let text = reg.render_prometheus();
    assert!(
        text.contains(r#"m_total{path="C:\\logs\\\"q\".jsonl"} 1"#),
        "{text}"
    );
}

#[test]
fn escape_helpers_cover_the_documented_character_set() {
    assert_eq!(schemr_obs::render::escape_help("a\\b\nc"), "a\\\\b\\nc");
    assert_eq!(
        schemr_obs::render::escape_label_value("a\"b\\c\nd"),
        "a\\\"b\\\\c\\nd"
    );
}
