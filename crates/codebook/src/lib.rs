//! # schemr-codebook
//!
//! The data-type codebook the paper proposes as an OpenII integration:
//! "integrating Schemr's search functionality with a codebook that
//! contains data types like units, date/time, and geographic location,
//! would encourage a deeper standardization of data types alongside schema
//! search results."
//!
//! The codebook recognizes *semantic types* — what an attribute means, not
//! just how it is stored — from element names and declared types:
//! latitudes, currencies, telephone numbers, physical units, and so on.
//! Recognized types feed three consumers:
//!
//! * [`annotate`] — per-element annotations shown alongside search
//!   results (and exportable with the schema),
//! * [`CodebookMatcher`] — an extra ensemble member that scores semantic-
//!   type agreement, catching matches name similarity misses (`lat` vs
//!   `y_coord`: both [`SemanticType::Latitude`]),
//! * standardization reports — which units/representations a repository
//!   mixes ([`standardization_report`]).

mod matcher;
mod recognize;
mod types;

pub use matcher::CodebookMatcher;
pub use recognize::{annotate, recognize, Annotation};
pub use types::{SemanticType, UnitKind};

use schemr_model::Schema;
use std::collections::BTreeMap;

/// How many elements of each semantic type a schema carries — the
/// standardization view of a repository.
pub fn standardization_report(schemas: &[&Schema]) -> BTreeMap<SemanticType, usize> {
    let mut counts = BTreeMap::new();
    for schema in schemas {
        for ann in annotate(schema) {
            *counts.entry(ann.semantic_type).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    #[test]
    fn report_counts_types_across_schemas() {
        let a = SchemaBuilder::new("a")
            .entity("site", |e| {
                e.attr("latitude", DataType::Real)
                    .attr("longitude", DataType::Real)
            })
            .build_unchecked();
        let b = SchemaBuilder::new("b")
            .entity("station", |e| e.attr("lat", DataType::Real))
            .build_unchecked();
        let report = standardization_report(&[&a, &b]);
        assert_eq!(report.get(&SemanticType::Latitude), Some(&2));
        assert_eq!(report.get(&SemanticType::Longitude), Some(&1));
    }
}
