//! Rule-based semantic-type recognition from element names and declared
//! types.

use schemr_model::{DataType, ElementId, ElementKind, Schema};
use schemr_text::Analyzer;

use crate::types::{SemanticType, UnitKind};

/// One recognized annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// The annotated element.
    pub element: ElementId,
    /// What the codebook recognized.
    pub semantic_type: SemanticType,
}

/// Recognize the semantic type of a single attribute from its name tokens
/// and declared data type.
pub fn recognize(name: &str, data_type: DataType) -> Option<SemanticType> {
    // The name pipeline expands abbreviations (lat → latitude is NOT in the
    // dictionary, but ht → height is) and stems; match on both stemmed and
    // raw lowercase tokens for robustness.
    let analyzer = Analyzer::for_names();
    let tokens = analyzer.analyze(name);
    let has = |words: &[&str]| tokens.iter().any(|t| words.contains(&t.as_str()));

    // Geographic.
    if has(&["latitud", "lat"]) {
        return Some(SemanticType::Latitude);
    }
    if has(&["longitud", "lon", "lng"]) {
        return Some(SemanticType::Longitude);
    }
    if has(&["elev", "altitud", "elevat"]) {
        return Some(SemanticType::Elevation);
    }
    // Contact / identity.
    if has(&["email", "mail"]) && !has(&["address"]) {
        return Some(SemanticType::Email);
    }
    if has(&["telephon", "phone", "fax", "mobil"]) {
        return Some(SemanticType::Phone);
    }
    if has(&["url", "websit", "homepag", "link"]) {
        return Some(SemanticType::Url);
    }
    if has(&["zipcod", "zip", "postal", "postcod"]) {
        return Some(SemanticType::PostalCode);
    }
    if has(&["countri", "nation"]) {
        return Some(SemanticType::Country);
    }
    if has(&["street", "address", "residenc"]) {
        return Some(SemanticType::StreetAddress);
    }
    if has(&["gender", "sex"]) {
        return Some(SemanticType::Gender);
    }
    if has(&["birth", "dob", "birthdai", "born"]) {
        return Some(SemanticType::BirthDate);
    }
    if has(&["surnam", "forenam"]) || (has(&["name"]) && has(&["first", "last", "middl", "full"])) {
        return Some(SemanticType::PersonName);
    }
    // Money / ratios.
    if has(&[
        "price", "cost", "amount", "salari", "wage", "fee", "revenu", "balanc", "total",
    ]) && (data_type.is_numeric() || data_type == DataType::Unknown)
    {
        return Some(SemanticType::Currency);
    }
    if has(&["percent", "pct", "ratio", "rate"]) && data_type.is_numeric() {
        return Some(SemanticType::Percentage);
    }
    // Quantities with units.
    if has(&["height", "length", "width", "depth", "distanc", "statur"]) {
        return Some(SemanticType::Quantity(UnitKind::Length));
    }
    if has(&["weight", "mass"]) {
        return Some(SemanticType::Quantity(UnitKind::Mass));
    }
    if has(&["temperatur", "celsiu", "fahrenheit"]) {
        return Some(SemanticType::Quantity(UnitKind::Temperature));
    }
    if has(&["durat", "elaps"]) {
        return Some(SemanticType::Quantity(UnitKind::Duration));
    }
    if has(&["area", "acreag", "hectar"]) {
        return Some(SemanticType::Quantity(UnitKind::Area));
    }
    if has(&["volum", "capac"]) && data_type.is_numeric() {
        return Some(SemanticType::Quantity(UnitKind::Volume));
    }
    // Counts and keys.
    if has(&["count", "quantiti", "qty", "number", "num"]) && data_type != DataType::Text {
        return Some(SemanticType::Count);
    }
    if has(&["identifi", "id", "key", "uuid", "guid"]) {
        return Some(SemanticType::Identifier);
    }
    // Fall back on the declared type for temporal columns.
    if data_type.is_temporal() || has(&["date", "time", "timestamp", "creat", "updat"]) {
        return Some(SemanticType::DateTime);
    }
    None
}

/// Annotate every attribute of a schema the codebook recognizes.
pub fn annotate(schema: &Schema) -> Vec<Annotation> {
    schema
        .ids()
        .filter(|&id| schema.element(id).kind == ElementKind::Attribute)
        .filter_map(|id| {
            let el = schema.element(id);
            recognize(&el.name, el.data_type).map(|semantic_type| Annotation {
                element: id,
                semantic_type,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geographic_names_in_any_convention() {
        for n in ["latitude", "lat", "site_latitude", "Lat"] {
            assert_eq!(
                recognize(n, DataType::Real),
                Some(SemanticType::Latitude),
                "{n}"
            );
        }
        assert_eq!(
            recognize("lon", DataType::Real),
            Some(SemanticType::Longitude)
        );
        assert_eq!(
            recognize("lng", DataType::Real),
            Some(SemanticType::Longitude)
        );
    }

    #[test]
    fn units_from_measurement_nouns() {
        assert_eq!(
            recognize("patient_height", DataType::Real),
            Some(SemanticType::Quantity(UnitKind::Length))
        );
        assert_eq!(
            recognize("ht", DataType::Real),
            Some(SemanticType::Quantity(UnitKind::Length)),
            "abbreviation expansion should fire"
        );
        assert_eq!(
            recognize("body_weight", DataType::Real),
            Some(SemanticType::Quantity(UnitKind::Mass))
        );
        assert_eq!(
            recognize("water_temperature", DataType::Real),
            Some(SemanticType::Quantity(UnitKind::Temperature))
        );
    }

    #[test]
    fn money_needs_a_numericish_type() {
        assert_eq!(
            recognize("total_price", DataType::Decimal),
            Some(SemanticType::Currency)
        );
        assert_eq!(recognize("price_notes", DataType::Text), None);
    }

    #[test]
    fn identity_and_contact() {
        assert_eq!(
            recognize("customer_id", DataType::Integer),
            Some(SemanticType::Identifier)
        );
        assert_eq!(
            recognize("email", DataType::Text),
            Some(SemanticType::Email)
        );
        assert_eq!(
            recognize("home_phone", DataType::Text),
            Some(SemanticType::Phone)
        );
        assert_eq!(
            recognize("zip", DataType::Text),
            Some(SemanticType::PostalCode)
        );
        assert_eq!(
            recognize("gender", DataType::Text),
            Some(SemanticType::Gender)
        );
        assert_eq!(recognize("sex", DataType::Text), Some(SemanticType::Gender));
        assert_eq!(
            recognize("dob", DataType::Date),
            Some(SemanticType::BirthDate)
        );
        assert_eq!(
            recognize("first_name", DataType::Text),
            Some(SemanticType::PersonName)
        );
    }

    #[test]
    fn temporal_fallback_uses_the_declared_type() {
        assert_eq!(
            recognize("admitted", DataType::DateTime),
            Some(SemanticType::DateTime)
        );
        assert_eq!(
            recognize("created", DataType::Unknown),
            Some(SemanticType::DateTime)
        );
    }

    #[test]
    fn unknown_names_stay_unannotated() {
        assert_eq!(recognize("flavor", DataType::Text), None);
        assert_eq!(recognize("xyzzy", DataType::Real), None);
    }

    #[test]
    fn annotate_covers_only_recognizable_attributes() {
        let schema = schemr_model::SchemaBuilder::new("site")
            .entity("station", |e| {
                e.attr("latitude", DataType::Real)
                    .attr("longitude", DataType::Real)
                    .attr("flavor", DataType::Text)
            })
            .build_unchecked();
        let anns = annotate(&schema);
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].semantic_type, SemanticType::Latitude);
        assert_eq!(anns[1].semantic_type, SemanticType::Longitude);
        // The entity itself is never annotated.
        assert!(anns.iter().all(|a| a.element != schema.entities()[0]));
    }
}
