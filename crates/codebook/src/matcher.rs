//! The codebook matcher: an extra ensemble member scoring semantic-type
//! agreement.
//!
//! Name similarity misses pairs like `lat` / `y_coordinate` or `dob` /
//! `born_on`; a shared codebook type catches them. Conversely, a strong
//! name match between a `latitude` and a `longitude` column is suspicious
//! — the codebook scores those down through family partial credit.

use schemr_match::{Matcher, SimilarityMatrix};
use schemr_model::{ElementKind, QueryGraph, QueryTerm, Schema};

use crate::recognize::recognize;
use crate::types::SemanticType;

/// Semantic-type agreement matcher.
#[derive(Debug, Default)]
pub struct CodebookMatcher;

impl CodebookMatcher {
    /// New matcher.
    pub fn new() -> Self {
        CodebookMatcher
    }

    /// Recognize a query term's semantic type. Fragment attributes use
    /// their declared type; keywords use [`schemr_model::DataType::Unknown`].
    fn term_type(term: &QueryTerm, query: &QueryGraph) -> Option<SemanticType> {
        let data_type = match (term.fragment, term.element) {
            (Some(f), Some(e)) => {
                let el = query.fragments()[f].element(e);
                if el.kind != ElementKind::Attribute {
                    return None;
                }
                el.data_type
            }
            _ => schemr_model::DataType::Unknown,
        };
        recognize(&term.text, data_type)
    }
}

impl Matcher for CodebookMatcher {
    fn name(&self) -> &'static str {
        "codebook"
    }

    fn abstains(&self) -> bool {
        true
    }

    fn score(
        &self,
        terms: &[QueryTerm],
        query: &QueryGraph,
        candidate: &Schema,
    ) -> SimilarityMatrix {
        let mut m = SimilarityMatrix::zeros(terms.len(), candidate.len());
        let term_types: Vec<Option<SemanticType>> =
            terms.iter().map(|t| Self::term_type(t, query)).collect();
        if term_types.iter().all(Option::is_none) {
            return m;
        }
        for (col, id) in candidate.ids().enumerate() {
            let el = candidate.element(id);
            if el.kind != ElementKind::Attribute {
                continue;
            }
            let Some(cand_type) = recognize(&el.name, el.data_type) else {
                continue;
            };
            for (row, term_type) in term_types.iter().enumerate() {
                if let Some(tt) = term_type {
                    let s = tt.similarity(cand_type);
                    if s > 0.0 {
                        m.set(row, col, s);
                    }
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{DataType, SchemaBuilder};

    fn keyword_terms(words: &[&str]) -> (QueryGraph, Vec<QueryTerm>) {
        let mut q = QueryGraph::new();
        for w in words {
            q.add_keyword(*w);
        }
        let t = q.terms();
        (q, t)
    }

    #[test]
    fn catches_pairs_name_similarity_misses() {
        // `dob` vs `born`: almost no n-gram overlap, same semantic type.
        let (q, terms) = keyword_terms(&["dob"]);
        let candidate = SchemaBuilder::new("c")
            .entity("person", |e| e.attr("born", DataType::Date))
            .build_unchecked();
        let m = CodebookMatcher::new().score(&terms, &q, &candidate);
        assert_eq!(m.get(0, 1), 1.0);
        // And the name matcher indeed misses it.
        let nm = schemr_match::NameMatcher::new();
        assert!(nm.similarity("dob", "born") < 0.5);
    }

    #[test]
    fn family_partial_credit() {
        let (q, terms) = keyword_terms(&["latitude"]);
        let candidate = SchemaBuilder::new("c")
            .entity("site", |e| {
                e.attr("lat", DataType::Real).attr("lon", DataType::Real)
            })
            .build_unchecked();
        let m = CodebookMatcher::new().score(&terms, &q, &candidate);
        assert_eq!(m.get(0, 1), 1.0); // latitude × lat
        assert_eq!(m.get(0, 2), 0.5); // latitude × lon: same geo family
    }

    #[test]
    fn unrecognized_terms_produce_zero_rows() {
        let (q, terms) = keyword_terms(&["flavor"]);
        let candidate = SchemaBuilder::new("c")
            .entity("site", |e| e.attr("lat", DataType::Real))
            .build_unchecked();
        let m = CodebookMatcher::new().score(&terms, &q, &candidate);
        assert_eq!(m.row_max(0), 0.0);
    }

    #[test]
    fn fragment_terms_use_declared_types() {
        let mut q = QueryGraph::new();
        q.add_fragment(
            SchemaBuilder::new("f")
                .entity("order", |e| e.attr("total", DataType::Decimal))
                .build_unchecked(),
        );
        let terms = q.terms();
        let candidate = SchemaBuilder::new("c")
            .entity("invoice", |e| e.attr("amount", DataType::Decimal))
            .build_unchecked();
        let m = CodebookMatcher::new().score(&terms, &q, &candidate);
        // total(Decimal) and amount(Decimal) both recognize as Currency.
        assert_eq!(m.get(1, 1), 1.0);
        // Entity rows are zero.
        assert_eq!(m.row_max(0), 0.0);
    }
}
