//! Semantic types: what attribute values *mean*.

use serde::{Deserialize, Serialize};

/// Kinds of physical units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnitKind {
    /// Lengths and heights (m, cm, ft, …).
    Length,
    /// Masses and weights (kg, lb, …).
    Mass,
    /// Temperatures (°C, °F, K).
    Temperature,
    /// Durations (s, min, h, days).
    Duration,
    /// Areas (m², ha, acres).
    Area,
    /// Volumes (l, ml, gal).
    Volume,
}

/// A semantic data type from the codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SemanticType {
    /// Geographic latitude in degrees.
    Latitude,
    /// Geographic longitude in degrees.
    Longitude,
    /// Elevation / altitude.
    Elevation,
    /// A calendar date or timestamp.
    DateTime,
    /// A person's date of birth (more specific than DateTime).
    BirthDate,
    /// A monetary amount.
    Currency,
    /// A percentage / ratio in 0..100.
    Percentage,
    /// A surrogate or natural key.
    Identifier,
    /// An email address.
    Email,
    /// A telephone number.
    Phone,
    /// A postal / ZIP code.
    PostalCode,
    /// A country or region name/code.
    Country,
    /// A person's gender/sex.
    Gender,
    /// A personal name.
    PersonName,
    /// A street address.
    StreetAddress,
    /// A URL.
    Url,
    /// A physical quantity with a unit.
    Quantity(UnitKind),
    /// A count of things (dimensionless integer).
    Count,
}

impl SemanticType {
    /// Short label for reports and GraphML annotations.
    pub fn label(&self) -> &'static str {
        match self {
            SemanticType::Latitude => "latitude",
            SemanticType::Longitude => "longitude",
            SemanticType::Elevation => "elevation",
            SemanticType::DateTime => "datetime",
            SemanticType::BirthDate => "birthdate",
            SemanticType::Currency => "currency",
            SemanticType::Percentage => "percentage",
            SemanticType::Identifier => "identifier",
            SemanticType::Email => "email",
            SemanticType::Phone => "phone",
            SemanticType::PostalCode => "postal-code",
            SemanticType::Country => "country",
            SemanticType::Gender => "gender",
            SemanticType::PersonName => "person-name",
            SemanticType::StreetAddress => "street-address",
            SemanticType::Url => "url",
            SemanticType::Quantity(UnitKind::Length) => "quantity:length",
            SemanticType::Quantity(UnitKind::Mass) => "quantity:mass",
            SemanticType::Quantity(UnitKind::Temperature) => "quantity:temperature",
            SemanticType::Quantity(UnitKind::Duration) => "quantity:duration",
            SemanticType::Quantity(UnitKind::Area) => "quantity:area",
            SemanticType::Quantity(UnitKind::Volume) => "quantity:volume",
            SemanticType::Count => "count",
        }
    }

    /// Similarity of two semantic types in `[0, 1]` — the codebook
    /// matcher's kernel. Exact match is 1; related types (both geographic,
    /// both temporal, both quantities) score partial credit.
    pub fn similarity(self, other: SemanticType) -> f64 {
        use SemanticType::*;
        if self == other {
            return 1.0;
        }
        let geo = |t: SemanticType| matches!(t, Latitude | Longitude | Elevation);
        let temporal = |t: SemanticType| matches!(t, DateTime | BirthDate);
        let contact = |t: SemanticType| matches!(t, Email | Phone | Url);
        let place = |t: SemanticType| matches!(t, PostalCode | Country | StreetAddress);
        let quantity = |t: SemanticType| matches!(t, Quantity(_) | Count | Percentage);
        for family in [geo, temporal, contact, place, quantity] {
            if family(self) && family(other) {
                return 0.5;
            }
        }
        0.0
    }
}

impl std::fmt::Display for SemanticType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similarity_is_reflexive_and_symmetric() {
        let all = [
            SemanticType::Latitude,
            SemanticType::DateTime,
            SemanticType::Currency,
            SemanticType::Quantity(UnitKind::Mass),
            SemanticType::Gender,
        ];
        for &a in &all {
            assert_eq!(a.similarity(a), 1.0);
            for &b in &all {
                assert_eq!(a.similarity(b), b.similarity(a));
            }
        }
    }

    #[test]
    fn family_credit() {
        assert_eq!(
            SemanticType::Latitude.similarity(SemanticType::Longitude),
            0.5
        );
        assert_eq!(
            SemanticType::DateTime.similarity(SemanticType::BirthDate),
            0.5
        );
        assert_eq!(
            SemanticType::Quantity(UnitKind::Mass).similarity(SemanticType::Count),
            0.5
        );
        assert_eq!(SemanticType::Gender.similarity(SemanticType::Currency), 0.0);
    }

    #[test]
    fn labels_are_unique() {
        let types = [
            SemanticType::Latitude,
            SemanticType::Longitude,
            SemanticType::Elevation,
            SemanticType::DateTime,
            SemanticType::BirthDate,
            SemanticType::Currency,
            SemanticType::Percentage,
            SemanticType::Identifier,
            SemanticType::Email,
            SemanticType::Phone,
            SemanticType::PostalCode,
            SemanticType::Country,
            SemanticType::Gender,
            SemanticType::PersonName,
            SemanticType::StreetAddress,
            SemanticType::Url,
            SemanticType::Quantity(UnitKind::Length),
            SemanticType::Quantity(UnitKind::Mass),
            SemanticType::Quantity(UnitKind::Temperature),
            SemanticType::Quantity(UnitKind::Duration),
            SemanticType::Quantity(UnitKind::Area),
            SemanticType::Quantity(UnitKind::Volume),
            SemanticType::Count,
        ];
        let labels: std::collections::HashSet<_> = types.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), types.len());
    }
}
