//! DDL pretty-printer: schema graph → `CREATE TABLE` script.
//!
//! The repository's export path and the round-trip tests use this: a schema
//! imported from DDL, printed, and re-parsed must describe the same graph.

use schemr_model::{DataType, ElementKind, Schema};

/// Render a SQL type for a model data type.
fn render_type(ty: DataType) -> &'static str {
    match ty {
        DataType::Integer => "INTEGER",
        DataType::Real => "REAL",
        DataType::Decimal => "DECIMAL",
        DataType::Text => "TEXT",
        DataType::Boolean => "BOOLEAN",
        DataType::Date => "DATE",
        DataType::Time => "TIME",
        DataType::DateTime => "TIMESTAMP",
        DataType::Binary => "BLOB",
        DataType::Unknown => "TEXT",
    }
}

/// Quote an identifier when it isn't a plain `[A-Za-z_][A-Za-z0-9_]*` word.
fn quote_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()));
    if plain {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Print a schema as a DDL script: one `CREATE TABLE` per entity, with
/// table-level `FOREIGN KEY` clauses and `COMMENT` strings for documented
/// attributes. Group elements flatten into their owning entity, mirroring
/// how the XSD reader would interpret the result.
pub fn print_ddl(schema: &Schema) -> String {
    let mut out = String::new();
    for entity in schema.entities() {
        // Only print top-level entities as tables; nested entities become
        // their own tables too (relational flattening of tree schemas).
        let name = &schema.element(entity).name;
        out.push_str(&format!("CREATE TABLE {} (\n", quote_ident(name)));
        let mut lines = Vec::new();
        // Attributes of this entity, including those under groups.
        let mut stack: Vec<_> = schema.children(entity).into_iter().collect();
        let mut attrs = Vec::new();
        while let Some(id) = stack.pop() {
            match schema.element(id).kind {
                ElementKind::Attribute => attrs.push(id),
                ElementKind::Group => stack.extend(schema.children(id)),
                ElementKind::Entity => {} // nested entity prints separately
            }
        }
        attrs.sort(); // insertion order
        for attr in attrs {
            let el = schema.element(attr);
            let mut line = format!("  {} {}", quote_ident(&el.name), render_type(el.data_type));
            if let Some(doc) = &el.doc {
                line.push_str(&format!(" COMMENT '{}'", doc.replace('\'', "''")));
            }
            lines.push(line);
        }
        for fk in schema
            .foreign_keys()
            .iter()
            .filter(|fk| fk.from_entity == entity)
        {
            let cols: Vec<String> = fk
                .from_attrs
                .iter()
                .map(|a| quote_ident(&schema.element(*a).name))
                .collect();
            let to_cols: Vec<String> = fk
                .to_attrs
                .iter()
                .map(|a| quote_ident(&schema.element(*a).name))
                .collect();
            let mut line = format!(
                "  FOREIGN KEY ({}) REFERENCES {}",
                cols.join(", "),
                quote_ident(&schema.element(fk.to_entity).name)
            );
            if !to_cols.is_empty() {
                line.push_str(&format!(" ({})", to_cols.join(", ")));
            }
            if fk.from_attrs.is_empty() {
                // FK with no column detail (e.g. from XSD keyref): skip —
                // it has no DDL rendering.
                continue;
            }
            lines.push(line);
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n);\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse_ddl;
    use schemr_model::{DataType as DT, SchemaBuilder};

    #[test]
    fn prints_a_simple_table() {
        let s = SchemaBuilder::new("q")
            .entity("patient", |e| {
                e.attr("height", DT::Real).attr("gender", DT::Text)
            })
            .build_unchecked();
        let ddl = print_ddl(&s);
        assert!(ddl.contains("CREATE TABLE patient"));
        assert!(ddl.contains("height REAL"));
        assert!(ddl.contains("gender TEXT"));
    }

    #[test]
    fn round_trips_through_the_parser() {
        let original = SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr("id", DT::Integer)
                    .attr("height", DT::Real)
                    .attr("gender", DT::Text)
            })
            .entity("case", |e| {
                e.attr("id", DT::Integer).attr("patient", DT::Integer)
            })
            .foreign_key("case", &["patient"], "patient", &["id"])
            .build_unchecked();
        let ddl = print_ddl(&original);
        let reparsed = parse_ddl("clinic", &ddl).unwrap();
        assert_eq!(reparsed.entities().len(), 2);
        assert_eq!(reparsed.foreign_keys().len(), 1);
        assert_eq!(reparsed.attributes().len(), 5);
        let fk = &reparsed.foreign_keys()[0];
        assert_eq!(reparsed.element(fk.from_entity).name, "case");
        assert_eq!(reparsed.element(fk.to_entity).name, "patient");
    }

    #[test]
    fn quoting_protects_awkward_names() {
        let s = SchemaBuilder::new("q")
            .entity("first name", |e| e.attr("2nd col", DT::Text))
            .build_unchecked();
        let ddl = print_ddl(&s);
        assert!(ddl.contains("\"first name\""));
        assert!(ddl.contains("\"2nd col\""));
        let reparsed = parse_ddl("q", &ddl).unwrap();
        assert_eq!(reparsed.element(reparsed.attributes()[0]).name, "2nd col");
    }

    #[test]
    fn comments_round_trip() {
        let s = SchemaBuilder::new("q")
            .entity("t", |e| e.attr_doc("ht", DT::Real, "it's height"))
            .build_unchecked();
        let ddl = print_ddl(&s);
        let reparsed = parse_ddl("q", &ddl).unwrap();
        assert_eq!(
            reparsed.element(reparsed.attributes()[0]).doc.as_deref(),
            Some("it's height")
        );
    }
}
