//! A minimal streaming XML pull parser — the substrate beneath the XSD
//! reader and the GraphML round-trip tests.
//!
//! Supports the subset of XML that schema documents use: elements with
//! attributes, text content, comments, processing instructions, CDATA
//! sections, and the five predefined entities. Namespaces are surfaced as
//! raw prefixed names (`xs:element`); the XSD layer strips prefixes itself.
//! DTDs are not supported.

use crate::error::{ParseError, Position};

/// An attribute on a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, possibly prefixed (`xs:type`, `minOccurs`).
    pub name: String,
    /// Decoded attribute value.
    pub value: String,
}

/// One parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="…">` (for self-closing tags an [`Event::End`] follows
    /// immediately).
    Start {
        name: String,
        attributes: Vec<Attribute>,
    },
    /// `</name>`.
    End { name: String },
    /// Decoded character data between tags (whitespace-only runs are
    /// skipped).
    Text(String),
    /// `<!-- … -->` (content verbatim).
    Comment(String),
}

/// Pull parser over an XML document.
pub struct XmlParser<'a> {
    input: &'a [u8],
    at: usize,
    pos: Position,
    /// Stack of open element names, for well-formedness checks.
    open: Vec<String>,
    /// Pending End event for a self-closed tag.
    pending_end: Option<String>,
    /// True once the document element has closed.
    done: bool,
}

impl<'a> XmlParser<'a> {
    /// Parser over `input`. Parsing is incremental; call [`XmlParser::next_event`].
    pub fn new(input: &'a str) -> Self {
        XmlParser {
            input: input.as_bytes(),
            at: 0,
            pos: Position::start(),
            open: Vec::new(),
            pending_end: None,
            done: false,
        }
    }

    /// Parse the whole document into a vector of events (convenience for
    /// tests and small documents).
    pub fn parse_all(input: &str) -> Result<Vec<Event>, ParseError> {
        let mut p = XmlParser::new(input);
        let mut events = Vec::new();
        while let Some(ev) = p.next_event()? {
            events.push(ev);
        }
        Ok(events)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.pos)
    }

    fn peek_byte(&self) -> Option<u8> {
        self.input.get(self.at).copied()
    }

    fn bump_byte(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.at += 1;
        // Positions are tracked per byte; multi-byte chars advance columns
        // once per continuation byte too, which is close enough for error
        // reporting.
        self.pos.advance(b as char);
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek_byte(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump_byte();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.at..].starts_with(s.as_bytes())
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump_byte();
            }
            true
        } else {
            false
        }
    }

    /// Scan until `delim` appears; return the content before it (delim
    /// consumed).
    fn take_until(&mut self, delim: &str) -> Result<String, ParseError> {
        let start = self.at;
        while self.at < self.input.len() {
            if self.starts_with(delim) {
                let content = std::str::from_utf8(&self.input[start..self.at])
                    .map_err(|_| self.err("invalid UTF-8"))?
                    .to_string();
                self.eat_str(delim);
                return Ok(content);
            }
            self.bump_byte();
        }
        Err(self.err(format!("expected `{delim}` before end of input")))
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.at;
        while let Some(b) = self.peek_byte() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, ':' | '_' | '-' | '.') {
                self.bump_byte();
            } else {
                break;
            }
        }
        if self.at == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.at])
            .expect("name bytes are ASCII")
            .to_string())
    }

    fn attribute(&mut self) -> Result<Attribute, ParseError> {
        let name = self.name()?;
        self.skip_whitespace();
        if self.bump_byte() != Some(b'=') {
            return Err(self.err(format!("expected `=` after attribute `{name}`")));
        }
        self.skip_whitespace();
        let quote = self
            .bump_byte()
            .filter(|b| matches!(b, b'"' | b'\''))
            .ok_or_else(|| self.err("expected quoted attribute value"))?;
        let raw = self.take_until(if quote == b'"' { "\"" } else { "'" })?;
        Ok(Attribute {
            name,
            value: decode_entities(&raw, self.pos)?,
        })
    }

    /// The next event, or `None` at end of document.
    pub fn next_event(&mut self) -> Result<Option<Event>, ParseError> {
        if let Some(name) = self.pending_end.take() {
            self.open.pop();
            if self.open.is_empty() {
                self.done = true;
            }
            return Ok(Some(Event::End { name }));
        }
        loop {
            if self.open.is_empty() {
                self.skip_whitespace();
            }
            if self.at >= self.input.len() {
                if !self.open.is_empty() {
                    return Err(self.err(format!(
                        "unclosed element `{}`",
                        self.open.last().expect("nonempty")
                    )));
                }
                if !self.done {
                    return Err(self.err("empty document"));
                }
                return Ok(None);
            }
            if self.done {
                // Only whitespace, comments, and PIs may trail the document
                // element.
                if self.eat_str("<!--") {
                    let c = self.take_until("-->")?;
                    return Ok(Some(Event::Comment(c)));
                }
                if self.eat_str("<?") {
                    self.take_until("?>")?;
                    continue;
                }
                return Err(self.err("content after document element"));
            }
            if self.peek_byte() == Some(b'<') {
                if self.eat_str("<!--") {
                    let c = self.take_until("-->")?;
                    return Ok(Some(Event::Comment(c)));
                }
                if self.eat_str("<![CDATA[") {
                    let c = self.take_until("]]>")?;
                    if self.open.is_empty() {
                        return Err(self.err("CDATA outside document element"));
                    }
                    return Ok(Some(Event::Text(c)));
                }
                if self.eat_str("<?") {
                    self.take_until("?>")?;
                    continue;
                }
                if self.eat_str("<!") {
                    // DOCTYPE or other declaration: skip to `>`.
                    self.take_until(">")?;
                    continue;
                }
                if self.eat_str("</") {
                    let name = self.name()?;
                    self.skip_whitespace();
                    if self.bump_byte() != Some(b'>') {
                        return Err(self.err("expected `>` in end tag"));
                    }
                    match self.open.pop() {
                        Some(expected) if expected == name => {
                            if self.open.is_empty() {
                                self.done = true;
                            }
                            return Ok(Some(Event::End { name }));
                        }
                        Some(expected) => {
                            return Err(self.err(format!(
                                "mismatched end tag: expected `</{expected}>`, found `</{name}>`"
                            )))
                        }
                        None => return Err(self.err(format!("unmatched end tag `</{name}>`"))),
                    }
                }
                // Start tag.
                self.bump_byte(); // consume '<'
                let name = self.name()?;
                let mut attributes = Vec::new();
                loop {
                    self.skip_whitespace();
                    match self.peek_byte() {
                        Some(b'>') => {
                            self.bump_byte();
                            self.open.push(name.clone());
                            return Ok(Some(Event::Start { name, attributes }));
                        }
                        Some(b'/') => {
                            self.bump_byte();
                            if self.bump_byte() != Some(b'>') {
                                return Err(self.err("expected `/>`"));
                            }
                            self.open.push(name.clone());
                            self.pending_end = Some(name.clone());
                            return Ok(Some(Event::Start { name, attributes }));
                        }
                        Some(_) => attributes.push(self.attribute()?),
                        None => return Err(self.err("unexpected end of input in tag")),
                    }
                }
            }
            // Text content.
            let start = self.at;
            while self.at < self.input.len() && self.peek_byte() != Some(b'<') {
                self.bump_byte();
            }
            let raw = std::str::from_utf8(&self.input[start..self.at])
                .map_err(|_| self.err("invalid UTF-8"))?;
            if self.open.is_empty() {
                if raw.trim().is_empty() {
                    continue;
                }
                return Err(self.err("text outside document element"));
            }
            if !raw.trim().is_empty() {
                return Ok(Some(Event::Text(decode_entities(raw.trim(), self.pos)?)));
            }
        }
    }
}

/// Decode the five predefined entities plus numeric character references.
fn decode_entities(s: &str, pos: Position) -> Result<String, ParseError> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let semi = rest
            .find(';')
            .ok_or_else(|| ParseError::new("unterminated entity reference", pos))?;
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                    ParseError::new(format!("bad character reference `&{entity};`"), pos)
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    ParseError::new(format!("invalid character reference `&{entity};`"), pos)
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| {
                    ParseError::new(format!("bad character reference `&{entity};`"), pos)
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    ParseError::new(format!("invalid character reference `&{entity};`"), pos)
                })?);
            }
            _ => return Err(ParseError::new(format!("unknown entity `&{entity};`"), pos)),
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escape text for inclusion in XML character data or attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(input: &str) -> Vec<Event> {
        XmlParser::parse_all(input).unwrap()
    }

    #[test]
    fn parses_elements_and_text() {
        let events = parse("<a><b>hello</b></a>");
        assert_eq!(
            events,
            vec![
                Event::Start {
                    name: "a".into(),
                    attributes: vec![]
                },
                Event::Start {
                    name: "b".into(),
                    attributes: vec![]
                },
                Event::Text("hello".into()),
                Event::End { name: "b".into() },
                Event::End { name: "a".into() },
            ]
        );
    }

    #[test]
    fn self_closing_tags_emit_start_then_end() {
        let events = parse("<a><b x=\"1\"/></a>");
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[1],
            Event::Start {
                name: "b".into(),
                attributes: vec![Attribute {
                    name: "x".into(),
                    value: "1".into()
                }]
            }
        );
        assert_eq!(events[2], Event::End { name: "b".into() });
    }

    #[test]
    fn attributes_with_both_quote_styles_and_entities() {
        let events = parse("<a title='x &amp; y' alt=\"&lt;tag&gt;\"/>");
        let Event::Start { attributes, .. } = &events[0] else {
            panic!()
        };
        assert_eq!(attributes[0].value, "x & y");
        assert_eq!(attributes[1].value, "<tag>");
    }

    #[test]
    fn xml_declaration_doctype_and_comments() {
        let events = parse("<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a/>");
        assert_eq!(events[0], Event::Comment(" hi ".into()));
        assert!(matches!(events[1], Event::Start { .. }));
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let events = parse("<a><![CDATA[<not & parsed>]]></a>");
        assert_eq!(events[1], Event::Text("<not & parsed>".into()));
    }

    #[test]
    fn numeric_character_references() {
        let events = parse("<a>&#65;&#x42;</a>");
        assert_eq!(events[1], Event::Text("AB".into()));
    }

    #[test]
    fn namespaced_names_pass_through() {
        let events = parse("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"/>");
        let Event::Start { name, attributes } = &events[0] else {
            panic!()
        };
        assert_eq!(name, "xs:schema");
        assert_eq!(attributes[0].name, "xmlns:xs");
    }

    #[test]
    fn mismatched_tags_are_rejected() {
        let err = XmlParser::parse_all("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn unclosed_elements_are_rejected() {
        let err = XmlParser::parse_all("<a><b>").unwrap_err();
        assert!(err.message.contains("unclosed"), "{err}");
    }

    #[test]
    fn content_after_document_element_is_rejected() {
        let err = XmlParser::parse_all("<a/><b/>").unwrap_err();
        assert!(err.message.contains("after document element"), "{err}");
    }

    #[test]
    fn trailing_comments_are_allowed() {
        let events = parse("<a/><!-- done -->");
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn empty_document_is_rejected() {
        assert!(XmlParser::parse_all("").is_err());
        assert!(XmlParser::parse_all("   ").is_err());
    }

    #[test]
    fn unknown_entities_are_rejected() {
        assert!(XmlParser::parse_all("<a>&nope;</a>").is_err());
    }

    #[test]
    fn escape_round_trips_through_decode() {
        let original = "a < b & c > 'd' \"e\"";
        let escaped = escape(original);
        let events = parse(&format!("<a>{escaped}</a>"));
        assert_eq!(events[1], Event::Text(original.into()));
    }

    #[test]
    fn whitespace_only_text_is_skipped() {
        let events = parse("<a>\n  <b/>\n</a>");
        assert!(!events.iter().any(|e| matches!(e, Event::Text(_))));
    }
}
