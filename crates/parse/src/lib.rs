//! # schemr-parse
//!
//! From-scratch parsers that turn the formats users actually upload into
//! [`schemr_model::Schema`] graphs.
//!
//! The paper lets a designer specify "a partially designed schema … by
//! uploading a DDL (Data Definition Language) or XSD (XML Schema
//! Definition)". This crate implements:
//!
//! * [`ddl`] — a SQL `CREATE TABLE` lexer + recursive-descent parser
//!   (columns, types, primary keys, inline and table-level foreign keys,
//!   comments),
//! * [`xml`] — a minimal streaming XML pull parser (the substrate for XSD),
//! * [`xsd`] — an XML Schema reader mapping complex types to entities,
//! * [`csv`] — a header-row importer for WebTables-style relational HTML
//!   tables,
//! * [`printer`] / [`xsd_printer`] — DDL and XSD pretty-printers, so
//!   repositories can round-trip schemas back out in either format,
//! * [`sniff_format`] / [`parse_fragment`] — format autodetection used by
//!   the query parser.

pub mod csv;
pub mod ddl;
pub mod printer;
pub mod xml;
pub mod xsd;
pub mod xsd_printer;

mod error;

pub use error::{ParseError, Position};

use schemr_model::Schema;

/// Input formats Schemr accepts for schema fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentFormat {
    /// SQL DDL (`CREATE TABLE …`).
    Ddl,
    /// XML Schema Definition.
    Xsd,
    /// A bare header row (comma-separated attribute names).
    CsvHeader,
}

/// Guess the format of an uploaded fragment from its syntax.
pub fn sniff_format(input: &str) -> FragmentFormat {
    let trimmed = input.trim_start();
    if trimmed.starts_with('<') {
        FragmentFormat::Xsd
    } else {
        let upper = trimmed
            .get(..64.min(trimmed.len()))
            .unwrap_or(trimmed)
            .to_uppercase();
        if upper.contains("CREATE") {
            FragmentFormat::Ddl
        } else {
            FragmentFormat::CsvHeader
        }
    }
}

/// Parse an uploaded fragment, autodetecting DDL vs XSD vs a bare header
/// row.
pub fn parse_fragment(name: &str, input: &str) -> Result<Schema, ParseError> {
    match sniff_format(input) {
        FragmentFormat::Ddl => ddl::parse_ddl(name, input),
        FragmentFormat::Xsd => xsd::parse_xsd(name, input),
        FragmentFormat::CsvHeader => csv::parse_header(name, input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffs_ddl() {
        assert_eq!(sniff_format("CREATE TABLE t (a INT)"), FragmentFormat::Ddl);
        assert_eq!(
            sniff_format("  create table t (a int)"),
            FragmentFormat::Ddl
        );
    }

    #[test]
    fn sniffs_xsd() {
        assert_eq!(
            sniff_format("<?xml version=\"1.0\"?><xs:schema/>"),
            FragmentFormat::Xsd
        );
        assert_eq!(sniff_format("  <xs:schema/>"), FragmentFormat::Xsd);
    }

    #[test]
    fn sniffs_header_row() {
        assert_eq!(
            sniff_format("patient, height, gender"),
            FragmentFormat::CsvHeader
        );
    }

    #[test]
    fn sniff_handles_short_input_on_char_boundaries() {
        assert_eq!(sniff_format("é"), FragmentFormat::CsvHeader);
        assert_eq!(sniff_format(""), FragmentFormat::CsvHeader);
    }

    #[test]
    fn parse_fragment_dispatches() {
        let ddl = parse_fragment("q", "CREATE TABLE patient (height REAL)").unwrap();
        assert_eq!(ddl.entities().len(), 1);
        let csv = parse_fragment("q", "a,b,c").unwrap();
        assert_eq!(csv.attributes().len(), 3);
    }
}
