//! Parse errors with source positions.

/// A line/column position in the input (both 1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    pub line: u32,
    pub column: u32,
}

impl Position {
    /// The start of the input.
    pub fn start() -> Self {
        Position { line: 1, column: 1 }
    }

    /// Advance over one character.
    pub fn advance(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced by any of the fragment parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the input the problem was detected.
    pub position: Position,
}

impl ParseError {
    /// A new error at `position`.
    pub fn new(message: impl Into<String>, position: Position) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }

    /// A new error with no better position than the start of input.
    pub fn at_start(message: impl Into<String>) -> Self {
        ParseError::new(message, Position::start())
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_advances_through_newlines() {
        let mut p = Position::start();
        for c in "ab\nc".chars() {
            p.advance(c);
        }
        assert_eq!(p, Position { line: 2, column: 2 });
    }

    #[test]
    fn error_display_includes_position() {
        let e = ParseError::new("unexpected `)`", Position { line: 3, column: 7 });
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected `)`");
    }
}
