//! The DDL lexer.

use crate::error::{ParseError, Position};

/// Lexical token classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Bare identifier or keyword (`CREATE`, `patient`). Keywords are
    /// recognized case-insensitively by the parser, not the lexer.
    Ident(String),
    /// Quoted identifier: `"x"`, `` `x` ``, or `[x]`. The payload is the
    /// unquoted text.
    QuotedIdent(String),
    /// Single-quoted string literal, with `''` escapes decoded.
    StringLit(String),
    /// Numeric literal (kept as text; DDL only uses them for lengths).
    Number(String),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    /// Any other single punctuation character (`=`, `<`, …), kept so CHECK
    /// expressions can be skipped token-by-token.
    Punct(char),
    /// End of input.
    Eof,
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub position: Position,
}

/// Lex a DDL script. Comments (`-- …` and `/* … */`) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut pos = Position::start();

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                pos.advance(c);
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let start = pos;
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '-' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    // Line comment.
                    while let Some(&n) = chars.peek() {
                        bump!();
                        if n == '\n' {
                            break;
                        }
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct('-'),
                        position: start,
                    });
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'*') {
                    bump!();
                    let mut prev = '\0';
                    let mut closed = false;
                    while let Some(n) = bump!() {
                        if prev == '*' && n == '/' {
                            closed = true;
                            break;
                        }
                        prev = n;
                    }
                    if !closed {
                        return Err(ParseError::new("unterminated block comment", start));
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Punct('/'),
                        position: start,
                    });
                }
            }
            '\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('\'') => {
                            // '' is an escaped quote.
                            if chars.peek() == Some(&'\'') {
                                bump!();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(ParseError::new("unterminated string literal", start)),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    position: start,
                });
            }
            '"' | '`' => {
                let quote = c;
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some(n) if n == quote => break,
                        Some(n) => s.push(n),
                        None => {
                            return Err(ParseError::new("unterminated quoted identifier", start))
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(s),
                    position: start,
                });
            }
            '[' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some(']') => break,
                        Some(n) => s.push(n),
                        None => {
                            return Err(ParseError::new("unterminated quoted identifier", start))
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(s),
                    position: start,
                });
            }
            '(' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
            }
            ')' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
            }
            ',' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
            }
            ';' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    position: start,
                });
            }
            '.' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    position: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_digit() || n == '.' {
                        s.push(n);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number(s),
                    position: start,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&n) = chars.peek() {
                    if n.is_alphanumeric() || n == '_' || n == '$' {
                        s.push(n);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    position: start,
                });
            }
            other => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Punct(other),
                    position: start,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: pos,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_basic_create_table() {
        use TokenKind::*;
        assert_eq!(
            kinds("CREATE TABLE t (a INT);"),
            vec![
                Ident("CREATE".into()),
                Ident("TABLE".into()),
                Ident("t".into()),
                LParen,
                Ident("a".into()),
                Ident("INT".into()),
                RParen,
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let ks = kinds("-- hello\nCREATE /* inline */ TABLE t (a INT)");
        assert_eq!(ks.len(), 8); // CREATE TABLE t ( a INT ) EOF
    }

    #[test]
    fn quoted_identifier_styles() {
        use TokenKind::*;
        assert_eq!(
            kinds("\"first name\" `last-name` [full name]"),
            vec![
                QuotedIdent("first name".into()),
                QuotedIdent("last-name".into()),
                QuotedIdent("full name".into()),
                Eof
            ]
        );
    }

    #[test]
    fn string_literals_decode_doubled_quotes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::StringLit("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_including_decimals() {
        assert_eq!(
            kinds("10 2.5"),
            vec![
                TokenKind::Number("10".into()),
                TokenKind::Number("2.5".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("'oops").unwrap_err();
        assert!(err.message.contains("unterminated string"));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let err = tokenize("/* oops").unwrap_err();
        assert!(err.message.contains("block comment"));
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("CREATE\nTABLE").unwrap();
        assert_eq!(toks[0].position, Position { line: 1, column: 1 });
        assert_eq!(toks[1].position, Position { line: 2, column: 1 });
    }

    #[test]
    fn lone_dash_is_punct() {
        assert_eq!(
            kinds("a - b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct('-'),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}
