//! Recursive-descent parser over the DDL token stream.

use schemr_model::{DataType, Schema, SchemaBuilder};

use super::lexer::{tokenize, Token, TokenKind};
use crate::error::{ParseError, Position};

/// Parse a DDL script (one or more `CREATE TABLE` statements) into a schema
/// named `schema_name`.
pub fn parse_ddl(schema_name: &str, input: &str) -> Result<Schema, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, at: 0 };
    let tables = parser.script()?;
    assemble(schema_name, tables)
}

struct ColumnDef {
    name: String,
    data_type: DataType,
    doc: Option<String>,
}

struct FkDef {
    from_cols: Vec<String>,
    to_table: String,
    to_cols: Vec<String>,
}

struct TableDef {
    name: String,
    columns: Vec<ColumnDef>,
    fks: Vec<FkDef>,
}

/// Map a SQL type name to the model's type lattice.
fn map_type(name: &str) -> DataType {
    match name.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "SMALLINT" | "BIGINT" | "TINYINT" | "MEDIUMINT" | "SERIAL"
        | "BIGSERIAL" | "INT2" | "INT4" | "INT8" => DataType::Integer,
        "REAL" | "FLOAT" | "DOUBLE" | "FLOAT4" | "FLOAT8" => DataType::Real,
        "DECIMAL" | "NUMERIC" | "MONEY" => DataType::Decimal,
        "CHAR" | "VARCHAR" | "NCHAR" | "NVARCHAR" | "TEXT" | "STRING" | "CLOB" | "LONGTEXT"
        | "MEDIUMTEXT" | "CHARACTER" => DataType::Text,
        "BOOL" | "BOOLEAN" | "BIT" => DataType::Boolean,
        "DATE" => DataType::Date,
        "TIME" => DataType::Time,
        "TIMESTAMP" | "DATETIME" | "TIMESTAMPTZ" => DataType::DateTime,
        "BLOB" | "BINARY" | "VARBINARY" | "BYTEA" | "LONGBLOB" => DataType::Binary,
        _ => DataType::Unknown,
    }
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.at].kind
    }

    fn position(&self) -> Position {
        self.tokens[self.at].position
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.at].kind.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        k
    }

    /// Is the current token the keyword `kw` (case-insensitive)?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword `kw` if present; return whether it was.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected `{kw}`, found {:?}", self.peek()),
                self.position(),
            ))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {kind:?}, found {:?}", self.peek()),
                self.position(),
            ))
        }
    }

    /// Identifier (bare or quoted). Keywords are acceptable names here; DDL
    /// in the wild uses `date`, `order`, etc. as column names.
    fn identifier(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::QuotedIdent(s) => Ok(s),
            other => Err(ParseError::new(
                format!("expected identifier, found {other:?}"),
                self.tokens[self.at.saturating_sub(1)].position,
            )),
        }
    }

    /// Possibly-qualified name (`db.schema.table` → `table`).
    fn qualified_name(&mut self) -> Result<String, ParseError> {
        let mut name = self.identifier()?;
        while *self.peek() == TokenKind::Dot {
            self.bump();
            name = self.identifier()?;
        }
        Ok(name)
    }

    fn script(&mut self) -> Result<Vec<TableDef>, ParseError> {
        let mut tables = Vec::new();
        loop {
            while *self.peek() == TokenKind::Semicolon {
                self.bump();
            }
            if *self.peek() == TokenKind::Eof {
                break;
            }
            tables.push(self.create_table()?);
        }
        if tables.is_empty() {
            return Err(ParseError::at_start("no CREATE TABLE statement found"));
        }
        Ok(tables)
    }

    fn create_table(&mut self) -> Result<TableDef, ParseError> {
        self.expect_keyword("CREATE")?;
        // Optional TEMPORARY / TEMP.
        let _ = self.eat_keyword("TEMPORARY") || self.eat_keyword("TEMP");
        self.expect_keyword("TABLE")?;
        if self.eat_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
        }
        let name = self.qualified_name()?;
        self.expect(TokenKind::LParen)?;
        let mut table = TableDef {
            name,
            columns: Vec::new(),
            fks: Vec::new(),
        };
        loop {
            self.table_item(&mut table)?;
            match self.bump() {
                TokenKind::Comma => continue,
                TokenKind::RParen => break,
                other => {
                    return Err(ParseError::new(
                        format!("expected `,` or `)`, found {other:?}"),
                        self.tokens[self.at.saturating_sub(1)].position,
                    ))
                }
            }
        }
        // Table options (ENGINE=…, COMMENT '…') up to `;` or EOF.
        while !matches!(self.peek(), TokenKind::Semicolon | TokenKind::Eof) {
            self.bump();
        }
        Ok(table)
    }

    fn table_item(&mut self, table: &mut TableDef) -> Result<(), ParseError> {
        if self.at_keyword("PRIMARY") || self.at_keyword("UNIQUE") || self.at_keyword("CHECK") {
            self.table_constraint(table)
        } else if self.at_keyword("FOREIGN") {
            self.foreign_key(table)
        } else if self.at_keyword("CONSTRAINT") {
            self.bump();
            let _name = self.identifier()?;
            self.table_item(table)
        } else if (self.at_keyword("KEY") || self.at_keyword("INDEX")) && self.looks_like_index() {
            // MySQL index definitions: KEY name (cols). Disambiguated from a
            // *column* named `key` by requiring a following paren group.
            self.bump();
            if let TokenKind::Ident(_) | TokenKind::QuotedIdent(_) = self.peek() {
                self.bump();
            }
            self.skip_parenthesized()?;
            Ok(())
        } else {
            self.column_def(table)
        }
    }

    /// After a `KEY`/`INDEX` token: does an index definition follow
    /// (`KEY (cols)` or `KEY name (cols)`) rather than a column definition
    /// (`key TEXT`)?
    fn looks_like_index(&self) -> bool {
        let kind_at = |k: usize| self.tokens.get(self.at + k).map(|t| &t.kind);
        match kind_at(1) {
            Some(TokenKind::LParen) => true,
            Some(TokenKind::Ident(_) | TokenKind::QuotedIdent(_)) => {
                matches!(kind_at(2), Some(TokenKind::LParen))
            }
            _ => false,
        }
    }

    /// Skip a balanced parenthesized group.
    fn skip_parenthesized(&mut self) -> Result<(), ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut depth = 1;
        loop {
            match self.bump() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                TokenKind::Eof => {
                    return Err(ParseError::new("unbalanced parentheses", self.position()))
                }
                _ => {}
            }
        }
    }

    fn column_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut cols = vec![self.identifier()?];
        while *self.peek() == TokenKind::Comma {
            self.bump();
            cols.push(self.identifier()?);
        }
        self.expect(TokenKind::RParen)?;
        Ok(cols)
    }

    fn table_constraint(&mut self, table: &mut TableDef) -> Result<(), ParseError> {
        if self.eat_keyword("PRIMARY") {
            self.expect_keyword("KEY")?;
            self.skip_parenthesized()?;
        } else if self.eat_keyword("UNIQUE") {
            // Optional KEY keyword and name (MySQL).
            let _ = self.eat_keyword("KEY") || self.eat_keyword("INDEX");
            if let TokenKind::Ident(_) | TokenKind::QuotedIdent(_) = self.peek() {
                self.bump();
            }
            self.skip_parenthesized()?;
        } else if self.eat_keyword("CHECK") {
            self.skip_parenthesized()?;
        }
        let _ = table; // constraints don't add elements
        Ok(())
    }

    fn foreign_key(&mut self, table: &mut TableDef) -> Result<(), ParseError> {
        self.expect_keyword("FOREIGN")?;
        self.expect_keyword("KEY")?;
        let from_cols = self.column_list()?;
        self.expect_keyword("REFERENCES")?;
        let to_table = self.qualified_name()?;
        let to_cols = if *self.peek() == TokenKind::LParen {
            self.column_list()?
        } else {
            Vec::new()
        };
        // ON DELETE / ON UPDATE actions.
        while self.eat_keyword("ON") {
            self.bump(); // DELETE | UPDATE
            self.bump(); // CASCADE | RESTRICT | SET | NO
            let _ = self.eat_keyword("NULL")
                || self.eat_keyword("DEFAULT")
                || self.eat_keyword("ACTION");
        }
        table.fks.push(FkDef {
            from_cols,
            to_table,
            to_cols,
        });
        Ok(())
    }

    fn column_def(&mut self, table: &mut TableDef) -> Result<(), ParseError> {
        let name = self.identifier()?;
        // Type name may be multi-word (DOUBLE PRECISION, CHARACTER VARYING).
        let type_name = self.identifier()?;
        if (type_name.eq_ignore_ascii_case("DOUBLE") && self.at_keyword("PRECISION"))
            || (type_name.eq_ignore_ascii_case("CHARACTER") && self.at_keyword("VARYING"))
        {
            self.bump();
        }
        // Length arguments: VARCHAR(255), DECIMAL(10, 2).
        if *self.peek() == TokenKind::LParen {
            self.skip_parenthesized()?;
        }
        let mut col = ColumnDef {
            name,
            data_type: map_type(&type_name),
            doc: None,
        };
        // Column constraints until `,` or `)`.
        loop {
            match self.peek().clone() {
                TokenKind::Comma | TokenKind::RParen | TokenKind::Eof => break,
                TokenKind::Ident(kw) if kw.eq_ignore_ascii_case("REFERENCES") => {
                    self.bump();
                    let to_table = self.qualified_name()?;
                    let to_cols = if *self.peek() == TokenKind::LParen {
                        self.column_list()?
                    } else {
                        Vec::new()
                    };
                    table.fks.push(FkDef {
                        from_cols: vec![col.name.clone()],
                        to_table,
                        to_cols,
                    });
                }
                TokenKind::Ident(kw) if kw.eq_ignore_ascii_case("COMMENT") => {
                    self.bump();
                    if let TokenKind::StringLit(s) = self.peek().clone() {
                        self.bump();
                        col.doc = Some(s);
                    }
                }
                TokenKind::Ident(kw) if kw.eq_ignore_ascii_case("DEFAULT") => {
                    self.bump();
                    // Default value: literal, number, ident, or call.
                    self.bump();
                    if *self.peek() == TokenKind::LParen {
                        self.skip_parenthesized()?;
                    }
                }
                TokenKind::Ident(kw) if kw.eq_ignore_ascii_case("CHECK") => {
                    self.bump();
                    self.skip_parenthesized()?;
                }
                _ => {
                    // NOT NULL, PRIMARY KEY, UNIQUE, AUTO_INCREMENT, …
                    self.bump();
                }
            }
        }
        table.columns.push(col);
        Ok(())
    }
}

/// Assemble parsed table definitions into a schema. Foreign keys whose
/// endpoints are not all present (fragments referencing external tables)
/// are dropped.
fn assemble(schema_name: &str, tables: Vec<TableDef>) -> Result<Schema, ParseError> {
    let mut builder = SchemaBuilder::new(schema_name);
    let table_names: std::collections::HashSet<String> =
        tables.iter().map(|t| t.name.clone()).collect();
    let mut column_names: std::collections::HashSet<(String, String)> =
        std::collections::HashSet::new();
    for t in &tables {
        for c in &t.columns {
            column_names.insert((t.name.clone(), c.name.clone()));
        }
    }
    for t in &tables {
        let cols: Vec<(String, DataType, Option<String>)> = t
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.data_type, c.doc.clone()))
            .collect();
        builder = builder.entity(t.name.clone(), move |mut e| {
            for (name, ty, doc) in cols {
                e = match doc {
                    Some(d) => e.attr_doc(name, ty, d),
                    None => e.attr(name, ty),
                };
            }
            e
        });
    }
    for t in &tables {
        for fk in &t.fks {
            if !table_names.contains(&fk.to_table) {
                continue; // fragment references an external table
            }
            let from_ok = fk
                .from_cols
                .iter()
                .all(|c| column_names.contains(&(t.name.clone(), c.clone())));
            let to_ok = fk
                .to_cols
                .iter()
                .all(|c| column_names.contains(&(fk.to_table.clone(), c.clone())));
            if !from_ok || !to_ok {
                continue;
            }
            let from_refs: Vec<&str> = fk.from_cols.iter().map(String::as_str).collect();
            let to_refs: Vec<&str> = fk.to_cols.iter().map(String::as_str).collect();
            builder =
                builder.foreign_key(t.name.clone(), &from_refs, fk.to_table.clone(), &to_refs);
        }
    }
    builder
        .build()
        .map_err(|e| ParseError::at_start(format!("internal: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use schemr_model::{validate, ElementKind};

    #[test]
    fn parses_single_table() {
        let s = parse_ddl("q", "CREATE TABLE patient (height REAL, gender VARCHAR(8))").unwrap();
        assert_eq!(s.entities().len(), 1);
        let e = s.entities()[0];
        assert_eq!(s.element(e).name, "patient");
        let attrs = s.children(e);
        assert_eq!(s.element(attrs[0]).name, "height");
        assert_eq!(s.element(attrs[0]).data_type, DataType::Real);
        assert_eq!(s.element(attrs[1]).data_type, DataType::Text);
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn parses_the_papers_clinic_scenario() {
        let ddl = "
            CREATE TABLE patient (
                id INT PRIMARY KEY,
                height REAL,
                gender VARCHAR(8)
            );
            CREATE TABLE doctor (
                id INT PRIMARY KEY,
                gender VARCHAR(8)
            );
            CREATE TABLE \"case\" (
                id INT PRIMARY KEY,
                patient INT REFERENCES patient(id),
                doctor INT,
                FOREIGN KEY (doctor) REFERENCES doctor(id)
            );
        ";
        let s = parse_ddl("clinic", ddl).unwrap();
        assert_eq!(s.entities().len(), 3);
        assert_eq!(s.foreign_keys().len(), 2);
        assert!(validate(&s).is_empty());
    }

    #[test]
    fn inline_references_without_target_columns() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE a (id INT); CREATE TABLE b (a_id INT REFERENCES a)",
        )
        .unwrap();
        assert_eq!(s.foreign_keys().len(), 1);
        assert!(s.foreign_keys()[0].to_attrs.is_empty());
    }

    #[test]
    fn external_references_are_dropped_for_fragments() {
        let s = parse_ddl("q", "CREATE TABLE visit (pat INT REFERENCES patient(id))").unwrap();
        assert_eq!(s.entities().len(), 1);
        assert!(s.foreign_keys().is_empty());
    }

    #[test]
    fn comments_become_documentation() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE t (ht REAL COMMENT 'height in cm' NOT NULL)",
        )
        .unwrap();
        let attr = s.attributes()[0];
        assert_eq!(s.element(attr).doc.as_deref(), Some("height in cm"));
    }

    #[test]
    fn table_level_constraints_do_not_create_columns() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a), UNIQUE (b), CHECK (a > 0), KEY idx (a, b))",
        )
        .unwrap();
        assert_eq!(s.attributes().len(), 2);
    }

    #[test]
    fn multiword_types_and_defaults() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE t (x DOUBLE PRECISION DEFAULT 0.5, y CHARACTER VARYING(10) DEFAULT 'a', z TIMESTAMP DEFAULT now())",
        )
        .unwrap();
        let attrs = s.attributes();
        assert_eq!(s.element(attrs[0]).data_type, DataType::Real);
        assert_eq!(s.element(attrs[1]).data_type, DataType::Text);
        assert_eq!(s.element(attrs[2]).data_type, DataType::DateTime);
    }

    #[test]
    fn if_not_exists_and_qualified_names() {
        let s = parse_ddl("q", "CREATE TABLE IF NOT EXISTS db.health.patient (id INT)").unwrap();
        assert_eq!(s.element(s.entities()[0]).name, "patient");
    }

    #[test]
    fn quoted_column_names_with_spaces() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE t ([first name] TEXT, \"last name\" TEXT)",
        )
        .unwrap();
        let attrs = s.attributes();
        assert_eq!(s.element(attrs[0]).name, "first name");
        assert_eq!(s.element(attrs[1]).name, "last name");
    }

    #[test]
    fn on_delete_cascade_is_skipped() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE a (id INT); CREATE TABLE b (a_id INT, FOREIGN KEY (a_id) REFERENCES a(id) ON DELETE CASCADE ON UPDATE SET NULL)",
        )
        .unwrap();
        assert_eq!(s.foreign_keys().len(), 1);
    }

    #[test]
    fn composite_foreign_keys() {
        let s = parse_ddl(
            "q",
            "CREATE TABLE a (x INT, y INT); CREATE TABLE b (ax INT, ay INT, FOREIGN KEY (ax, ay) REFERENCES a(x, y))",
        )
        .unwrap();
        let fk = &s.foreign_keys()[0];
        assert_eq!(fk.from_attrs.len(), 2);
        assert_eq!(fk.to_attrs.len(), 2);
    }

    #[test]
    fn empty_script_is_an_error() {
        assert!(parse_ddl("q", "").is_err());
        assert!(parse_ddl("q", "-- just a comment").is_err());
    }

    #[test]
    fn missing_paren_is_an_error_with_position() {
        let err = parse_ddl("q", "CREATE TABLE t a INT").unwrap_err();
        assert!(err.message.contains("LParen"), "{err}");
        assert_eq!(err.position.line, 1);
    }

    #[test]
    fn keywords_can_be_column_names() {
        let s = parse_ddl("q", "CREATE TABLE t (date DATE, order_ INT, key TEXT)").unwrap();
        assert_eq!(s.attributes().len(), 3);
        assert_eq!(s.element(s.attributes()[0]).name, "date");
    }

    #[test]
    fn entity_kind_is_entity_and_columns_are_attributes() {
        let s = parse_ddl("q", "CREATE TABLE t (a INT)").unwrap();
        assert_eq!(s.element(s.entities()[0]).kind, ElementKind::Entity);
        assert_eq!(s.element(s.attributes()[0]).kind, ElementKind::Attribute);
    }
}
