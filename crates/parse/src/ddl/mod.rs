//! SQL DDL parsing: `CREATE TABLE` scripts → schema graphs.
//!
//! Supports the dialect-neutral core that schema fragments in the wild are
//! written in: column definitions with types and length arguments, inline
//! and table-level `PRIMARY KEY` / `FOREIGN KEY … REFERENCES` / `UNIQUE` /
//! `CHECK` constraints, quoted identifiers (`"x"`, `` `x` ``, `[x]`),
//! `COMMENT` strings (mapped to element documentation), and `--` / `/* */`
//! comments.
//!
//! Foreign keys whose target table is not defined in the same script (the
//! normal case for a *fragment*) are dropped rather than rejected — a
//! fragment is allowed to be partial.

mod lexer;
mod parser;

pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse_ddl;
