//! XSD pretty-printer: schema graph → XML Schema Definition.
//!
//! The export mirror of [`crate::xsd`]: entities become elements with
//! inline complex types, attributes become simple `xs:element`s,
//! documentation becomes `xs:annotation/xs:documentation`, and foreign
//! keys become `xs:key`/`xs:keyref` pairs. A schema exported here and
//! re-imported through [`crate::xsd::parse_xsd`] describes the same graph.

use schemr_model::{DataType, ElementId, ElementKind, Schema};

use crate::xml::escape;

/// XSD built-in name for a model data type.
fn render_type(ty: DataType) -> &'static str {
    match ty {
        DataType::Integer => "xs:integer",
        DataType::Real => "xs:double",
        DataType::Decimal => "xs:decimal",
        DataType::Text => "xs:string",
        DataType::Boolean => "xs:boolean",
        DataType::Date => "xs:date",
        DataType::Time => "xs:time",
        DataType::DateTime => "xs:dateTime",
        DataType::Binary => "xs:base64Binary",
        DataType::Unknown => "xs:string",
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_doc(out: &mut String, depth: usize, doc: &Option<String>) {
    if let Some(doc) = doc {
        indent(out, depth);
        out.push_str("<xs:annotation><xs:documentation>");
        out.push_str(&escape(doc));
        out.push_str("</xs:documentation></xs:annotation>\n");
    }
}

fn write_element(schema: &Schema, id: ElementId, out: &mut String, depth: usize) {
    let el = schema.element(id);
    match el.kind {
        ElementKind::Attribute => {
            indent(out, depth);
            out.push_str(&format!(
                "<xs:element name=\"{}\" type=\"{}\"",
                escape(&el.name),
                render_type(el.data_type)
            ));
            if el.doc.is_some() {
                out.push_str(">\n");
                write_doc(out, depth + 1, &el.doc);
                indent(out, depth);
                out.push_str("</xs:element>\n");
            } else {
                out.push_str("/>\n");
            }
        }
        ElementKind::Entity | ElementKind::Group => {
            indent(out, depth);
            out.push_str(&format!("<xs:element name=\"{}\">\n", escape(&el.name)));
            write_doc(out, depth + 1, &el.doc);
            indent(out, depth + 1);
            out.push_str("<xs:complexType>\n");
            indent(out, depth + 2);
            out.push_str("<xs:sequence>\n");
            for child in schema.children(id) {
                write_element(schema, child, out, depth + 3);
            }
            indent(out, depth + 2);
            out.push_str("</xs:sequence>\n");
            indent(out, depth + 1);
            out.push_str("</xs:complexType>\n");
            indent(out, depth);
            out.push_str("</xs:element>\n");
        }
    }
}

/// Print a schema as an XSD document.
///
/// Foreign keys are expressed as `xs:key`/`xs:keyref` pairs attached to a
/// synthetic wrapper element when the schema has more than one root (XSD
/// identity constraints need a common ancestor).
pub fn print_xsd(schema: &Schema) -> String {
    let roots = schema.roots();
    let mut out = String::with_capacity(1024);
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n");
    // Foreign keys need a common ancestor for the key/keyref scope, so
    // any schema carrying them exports under a wrapper element.
    let needs_wrapper = !schema.foreign_keys().is_empty();
    if needs_wrapper {
        // Wrap all roots so keyrefs have a shared scope.
        out.push_str(&format!(
            "  <xs:element name=\"{}\">\n    <xs:complexType>\n      <xs:sequence>\n",
            escape(&schema.name)
        ));
        for root in &roots {
            write_element(schema, *root, &mut out, 4);
        }
        out.push_str("      </xs:sequence>\n    </xs:complexType>\n");
        // Key/keyref pairs at wrapper scope, one per FK.
        for (i, fk) in schema.foreign_keys().iter().enumerate() {
            let to_name = &schema.element(fk.to_entity).name;
            let from_name = &schema.element(fk.from_entity).name;
            out.push_str(&format!(
                "    <xs:key name=\"k{i}\"><xs:selector xpath=\".//{}\"/><xs:field xpath=\"@id\"/></xs:key>\n",
                escape(to_name)
            ));
            out.push_str(&format!(
                "    <xs:keyref name=\"r{i}\" refer=\"k{i}\"><xs:selector xpath=\".//{}\"/><xs:field xpath=\"@ref\"/></xs:keyref>\n",
                escape(from_name)
            ));
        }
        out.push_str("  </xs:element>\n");
    } else {
        for root in &roots {
            write_element(schema, *root, &mut out, 1);
        }
    }
    out.push_str("</xs:schema>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xsd::parse_xsd;
    use schemr_model::{validate, SchemaBuilder};

    fn clinic() -> Schema {
        SchemaBuilder::new("clinic")
            .entity("patient", |e| {
                e.attr("height", DataType::Real).attr_doc(
                    "gender",
                    DataType::Text,
                    "administrative gender",
                )
            })
            .entity("visit", |e| {
                e.attr("date", DataType::Date)
                    .attr("patient_id", DataType::Integer)
            })
            .foreign_key("visit", &["patient_id"], "patient", &[])
            .build_unchecked()
    }

    #[test]
    fn exported_xsd_is_wellformed_xml() {
        let xsd = print_xsd(&clinic());
        assert!(crate::xml::XmlParser::parse_all(&xsd).is_ok(), "{xsd}");
        assert!(xsd.contains("xs:schema"));
    }

    #[test]
    fn round_trips_through_the_xsd_reader() {
        let original = clinic();
        let xsd = print_xsd(&original);
        let back = parse_xsd("clinic", &xsd).unwrap();
        assert!(validate(&back).is_empty());
        // The wrapper element adds one entity; all original entities,
        // attributes, and the FK survive.
        let names: Vec<&str> = back
            .entities()
            .iter()
            .map(|&e| back.element(e).name.as_str())
            .collect();
        assert!(names.contains(&"patient"));
        assert!(names.contains(&"visit"));
        assert_eq!(back.attributes().len(), original.attributes().len());
        assert_eq!(back.foreign_keys().len(), 1);
        let fk = &back.foreign_keys()[0];
        assert_eq!(back.element(fk.from_entity).name, "visit");
        assert_eq!(back.element(fk.to_entity).name, "patient");
    }

    #[test]
    fn documentation_round_trips() {
        let xsd = print_xsd(&clinic());
        let back = parse_xsd("clinic", &xsd).unwrap();
        let gender = back
            .attributes()
            .into_iter()
            .find(|&a| back.element(a).name == "gender")
            .unwrap();
        assert_eq!(
            back.element(gender).doc.as_deref(),
            Some("administrative gender")
        );
    }

    #[test]
    fn types_round_trip() {
        let xsd = print_xsd(&clinic());
        let back = parse_xsd("clinic", &xsd).unwrap();
        let find = |name: &str| {
            back.attributes()
                .into_iter()
                .find(|&a| back.element(a).name == name)
                .map(|a| back.element(a).data_type)
                .unwrap()
        };
        assert_eq!(find("height"), DataType::Real);
        assert_eq!(find("date"), DataType::Date);
        assert_eq!(find("patient_id"), DataType::Integer);
    }

    #[test]
    fn single_root_schema_needs_no_wrapper() {
        let s = SchemaBuilder::new("solo")
            .entity("thing", |e| e.attr("x", DataType::Text))
            .build_unchecked();
        let xsd = print_xsd(&s);
        assert!(!xsd.contains("name=\"solo\""));
        let back = parse_xsd("solo", &xsd).unwrap();
        assert_eq!(back.entities().len(), 1);
    }

    #[test]
    fn awkward_names_are_escaped() {
        let mut s = Schema::new("x");
        let e = s.add_root(schemr_model::Element::entity("a&b"));
        s.add_child(e, schemr_model::Element::attribute("c<d", DataType::Text));
        let xsd = print_xsd(&s);
        assert!(crate::xml::XmlParser::parse_all(&xsd).is_ok());
    }
}
