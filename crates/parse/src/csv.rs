//! Header-row import: WebTables-style relational tables.
//!
//! The paper's 30,000-schema repository was distilled from HTML tables on
//! the web [Cafarella et al.]; each such table is just an ordered list of
//! column labels. `parse_header` turns one header row into a one-entity
//! schema, which is exactly how the corpus generator and bulk importers
//! feed WebTables-like data in.

use schemr_model::{DataType, Element, Schema};

use crate::error::ParseError;

/// Parse a comma- (or tab-) separated header row into a one-entity schema.
///
/// The entity takes `name`; each non-empty cell becomes an attribute of
/// unknown type. Surrounding quotes and whitespace are stripped.
pub fn parse_header(name: &str, input: &str) -> Result<Schema, ParseError> {
    let line = input.lines().next().unwrap_or("").trim();
    if line.is_empty() {
        return Err(ParseError::at_start("empty header row"));
    }
    let sep = if line.contains('\t') { '\t' } else { ',' };
    let mut schema = Schema::new(name);
    let entity = schema.add_root(Element::entity(name));
    let mut added = 0usize;
    for cell in line.split(sep) {
        let cell = cell.trim().trim_matches('"').trim();
        if cell.is_empty() {
            continue;
        }
        schema.add_child(entity, Element::attribute(cell, DataType::Unknown));
        added += 1;
    }
    if added == 0 {
        return Err(ParseError::at_start("header row has no usable labels"));
    }
    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated_header() {
        let s = parse_header("observations", "species, count, location, date").unwrap();
        assert_eq!(s.entities().len(), 1);
        let names: Vec<_> = s
            .attributes()
            .into_iter()
            .map(|a| s.element(a).name.clone())
            .collect();
        assert_eq!(names, ["species", "count", "location", "date"]);
    }

    #[test]
    fn tab_separated_wins_when_tabs_present() {
        let s = parse_header("t", "first name\tlast, name\theight").unwrap();
        let names: Vec<_> = s
            .attributes()
            .into_iter()
            .map(|a| s.element(a).name.clone())
            .collect();
        assert_eq!(names, ["first name", "last, name", "height"]);
    }

    #[test]
    fn quotes_and_blank_cells_are_stripped() {
        let s = parse_header("t", "\"a\", , \"b\"").unwrap();
        assert_eq!(s.attributes().len(), 2);
    }

    #[test]
    fn only_first_line_is_read() {
        let s = parse_header("t", "a,b\n1,2\n3,4").unwrap();
        assert_eq!(s.attributes().len(), 2);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_header("t", "").is_err());
        assert!(parse_header("t", " , , ").is_err());
    }
}
